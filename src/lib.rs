//! `bullet-repro` — a full reproduction of *Maintaining High Bandwidth under
//! Dynamic Network Conditions* (Kostić et al., USENIX ATC 2005), the Bullet′
//! paper, as a Rust workspace.
//!
//! This umbrella crate re-exports every workspace member so examples,
//! integration tests and downstream users can reach the whole system through
//! one dependency:
//!
//! * [`bullet_prime`] — the Bullet′ protocol (the paper's contribution);
//! * [`baselines`] — BitTorrent, original Bullet and SplitStream;
//! * [`shotgun`] — the rsync-over-Bullet′ software-update tool;
//! * [`netsim`] — the ModelNet-equivalent network emulator;
//! * [`overlay`] — the control tree and RanSub;
//! * [`dissem_codec`] — blocks, bitmaps, diffs and LT rateless codes;
//! * [`desim`] — the deterministic discrete-event engine;
//! * [`bullet_bench`] — the experiment harness regenerating Figures 4–15;
//! * [`bullet_lab`] — the scenario lab: registry, parallel sweep executor
//!   and the `lab` CLI.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the measured reproduction of every figure.

pub use baselines;
pub use bullet_bench;
pub use bullet_lab;
pub use bullet_prime;
pub use desim;
pub use dissem_codec;
pub use netsim;
pub use overlay;
pub use shotgun;
