//! Criterion micro-benchmarks for the core data structures and algorithms:
//! the LT rateless codes, block bitmaps, RanSub sample merging, the rsync
//! delta codec, the flow-control step and the discrete-event engine.
//!
//! These are wall-clock benchmarks of the *implementation* (the figures
//! measure emulated protocol behaviour, not host CPU time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{Rng, SeedableRng};

use bullet_prime::{OutstandingController, OutstandingPolicy};
use desim::{RngFactory, SimTime, Simulator};
use dissem_codec::{BlockBitmap, BlockId, LtDecoder, LtEncoder};
use overlay::{merge_samples, NodeSummary, Sample};
use shotgun::{apply_delta, generate_delta};

fn bench_lt_codes(c: &mut Criterion) {
    let mut group = c.benchmark_group("lt_codes");
    for &k in &[256u32, 1024] {
        let block = 1024usize;
        let data: Vec<u8> = (0..k as usize * block).map(|i| i as u8).collect();
        group.throughput(Throughput::Bytes(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode_decode", k), &k, |b, &k| {
            b.iter(|| {
                let mut enc = LtEncoder::new(&data, block, 7);
                let mut dec = LtDecoder::new(k, block);
                while !dec.is_complete() {
                    dec.push(&enc.next_block());
                }
                dec.recovered_count()
            })
        });
    }
    group.finish();
}

fn bench_bitmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("bitmap");
    let n = 6400u32; // The paper's 100 MB / 16 KB block count.
    group.bench_function("insert_and_count_6400", |b| {
        b.iter(|| {
            let mut bm = BlockBitmap::new(n);
            for i in (0..n).step_by(3) {
                bm.insert(BlockId(i));
            }
            bm.count()
        })
    });
    let mut a = BlockBitmap::new(n);
    let mut bbm = BlockBitmap::new(n);
    for i in 0..n {
        if i % 2 == 0 {
            a.insert(BlockId(i));
        }
        if i % 3 == 0 {
            bbm.insert(BlockId(i));
        }
    }
    group.bench_function("difference_count_6400", |b| {
        b.iter(|| a.difference_count(&bbm))
    });
    group.finish();
}

fn bench_ransub_merge(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let groups: Vec<Sample> = (0..8)
        .map(|g| Sample {
            entries: (0..10)
                .map(|i| NodeSummary {
                    node: g * 100 + i,
                    have_count: i,
                    has_everything: false,
                })
                .collect(),
            weight: 12,
        })
        .collect();
    c.bench_function("ransub_merge_8x10", |b| {
        b.iter(|| merge_samples(&mut rng, 10, &groups).entries.len())
    });
}

fn bench_rsync_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("rsync_delta");
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let old: Vec<u8> = (0..1_000_000).map(|_| rng.gen()).collect();
    let mut new = old.clone();
    for b in &mut new[400_000..404_096] {
        *b = rng.gen();
    }
    group.throughput(Throughput::Bytes(new.len() as u64));
    group.bench_function("generate_1mb_small_edit", |b| {
        b.iter(|| generate_delta(&old, &new, 4096).ops.len())
    });
    let delta = generate_delta(&old, &new, 4096);
    group.bench_function("apply_1mb", |b| {
        b.iter(|| apply_delta(&old, &delta).unwrap().len())
    });
    group.finish();
}

fn bench_flow_controller(c: &mut Criterion) {
    c.bench_function("flow_controller_100k_updates", |b| {
        b.iter(|| {
            let mut ctl = OutstandingController::new(OutstandingPolicy::Dynamic, 3, 50);
            for i in 0..100_000u32 {
                let wasted = if i % 3 == 0 { -0.01 } else { 0.02 };
                ctl.on_block_received(
                    BlockId(i % 640),
                    i % 7,
                    wasted,
                    500_000.0,
                    16_384.0,
                    ctl.window(),
                );
                if ctl.wants_mark() {
                    ctl.note_requested(BlockId(i % 640 + 1));
                }
            }
            ctl.window()
        })
    });
}

fn bench_event_engine(c: &mut Criterion) {
    c.bench_function("desim_schedule_run_100k", |b| {
        b.iter(|| {
            let mut sim: Simulator<u32> = Simulator::new();
            for i in 0..100_000u32 {
                sim.schedule_at(SimTime::from_nanos(u64::from(i % 9973) * 1000), i);
            }
            let mut count = 0u32;
            sim.run(|_, _, _| {
                count += 1;
                desim::Control::Continue
            });
            count
        })
    });
}

fn bench_end_to_end_dissemination(c: &mut Criterion) {
    use bullet_bench::{run_system, SystemKind};
    use dissem_codec::FileSpec;
    use netsim::topology;

    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    for kind in [SystemKind::BulletPrime, SystemKind::BitTorrent] {
        group.bench_with_input(
            BenchmarkId::new("disseminate_1mb_10nodes", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let rng = RngFactory::new(11);
                    let topo = topology::modelnet_mesh(10, 0.01, &rng);
                    let run = run_system(
                        kind,
                        topo,
                        FileSpec::from_mb_kb(1, 16),
                        &rng,
                        &Vec::new(),
                        desim::SimDuration::from_secs(1800),
                    );
                    run.times.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_lt_codes,
    bench_bitmap,
    bench_ransub_merge,
    bench_rsync_delta,
    bench_flow_controller,
    bench_event_engine,
    bench_end_to_end_dissemination
);
criterion_main!(benches);
