//! A Criterion benchmark that runs a scaled-down version of the paper's
//! headline experiment (Figure 4's four-system comparison) end to end, so
//! `cargo bench` exercises every protocol implementation, the emulator and
//! the harness in one go. Timing here is host CPU time for the simulation,
//! not the emulated download time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bullet_bench::{run_system, SystemKind};
use desim::{RngFactory, SimDuration};
use dissem_codec::FileSpec;
use netsim::topology;

fn bench_fig4_scaled(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_scaled");
    group.sample_size(10);
    for kind in SystemKind::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let rng = RngFactory::new(1);
                    let topo = topology::modelnet_mesh(15, 0.03, &rng);
                    let run = run_system(
                        kind,
                        topo,
                        FileSpec::from_mb_kb(2, 16),
                        &rng,
                        &Vec::new(),
                        SimDuration::from_secs(3600),
                    );
                    assert_eq!(run.unfinished, 0);
                    run.times.iter().sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(figures, bench_fig4_scaled);
criterion_main!(figures);
