//! A counting global allocator shared by the perf-record binaries
//! (`bench_events`, `bench_scale`).
//!
//! Tracks three numbers on top of the system allocator: the cumulative
//! allocation count (a deterministic proxy for per-event overhead), the
//! currently live heap bytes, and the high-water mark of live bytes. The
//! high-water mark stands in for peak RSS in the benchmark records — unlike
//! `/proc/self/status` it exists on every platform, and unlike RSS it is
//! deterministic for a deterministic workload (modulo allocator rounding).
//!
//! The binaries install it with
//!
//! ```ignore
//! #[global_allocator]
//! static GLOBAL: bullet_bench::alloc_track::CountingAlloc = CountingAlloc;
//! ```
//!
//! and read the counters through the free functions below. The counters are
//! process-global; [`reset_peak`] rebases the high-water mark onto the
//! current live size so successive runs in one process report independent
//! peaks (the benchmark binaries are single-threaded, so there is no race
//! between the reset and the next run).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// The counting allocator. Forwards every call to [`System`] and maintains
/// the module's counters.
pub struct CountingAlloc;

impl CountingAlloc {
    fn on_alloc(size: usize) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(size: usize) {
        LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        Self::on_dealloc(layout.size());
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // Count a realloc as one allocation and move the live total by the
        // size delta, whether it grew or shrank.
        Self::on_alloc(new_size);
        Self::on_dealloc(layout.size());
        System.realloc(ptr, layout, new_size)
    }
}

/// Cumulative number of heap allocations since process start.
pub fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Heap bytes currently live (allocated and not yet freed).
pub fn live_bytes() -> u64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// High-water mark of live heap bytes since process start (or since the
/// last [`reset_peak`]).
pub fn peak_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed)
}

/// Rebases the high-water mark onto the current live size, so the next
/// workload's peak is measured above today's floor rather than inheriting a
/// previous run's maximum. Call between back-to-back runs in one process.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    // The test harness does not install the allocator (that would perturb
    // every other test's numbers), so exercise the bookkeeping directly.
    use super::*;

    #[test]
    fn live_and_peak_track_alloc_dealloc_pairs() {
        reset_peak();
        let live0 = live_bytes();
        CountingAlloc::on_alloc(1024);
        CountingAlloc::on_alloc(2048);
        assert_eq!(live_bytes(), live0 + 3072);
        assert!(peak_bytes() >= live0 + 3072);
        CountingAlloc::on_dealloc(2048);
        assert_eq!(live_bytes(), live0 + 1024);
        // The peak survives the free...
        assert!(peak_bytes() >= live0 + 3072);
        // ...until it is explicitly rebased onto the live size.
        reset_peak();
        assert_eq!(peak_bytes(), live_bytes());
        CountingAlloc::on_dealloc(1024);
        assert_eq!(live_bytes(), live0);
    }
}
