//! Shared serde views for the committed perf records.
//!
//! `bench_events` and `bench_scale` used to hand-format their JSON with
//! `format!` templates; every added field meant duplicating brace-escaping
//! and comma bookkeeping in two binaries. These views are plain structs with
//! `#[derive(Serialize)]`, rendered with [`serde_json::to_string_pretty`] —
//! field declaration order is emission order, which the ci.sh extraction
//! patterns (`grep -o '"events_processed": *[0-9]*'`, the `"nodes": N` awk
//! anchor of the scale gate) rely on.
//!
//! Wall-clock fields are rounded before serialization so the committed
//! records stay short and diffs stay readable; deterministic fields are
//! emitted exactly.

use netsim::{MetricsSnapshot, RunReport, ServiceReport};
use serde::Serialize;

/// Rounds to `digits` decimal places (for wall-clock fields committed to the
/// repository — full f64 precision is noise there).
pub fn rounded(x: f64, digits: u32) -> f64 {
    let scale = 10f64.powi(digits as i32);
    (x * scale).round() / scale
}

/// The traced-run identity check of `bench_events` (see ci.sh): the same
/// fixed-seed workload is run a second time with a counting trace sink and
/// the profiler enabled, and must produce a byte-identical canonical
/// [`RunReport`] at bounded wall-clock overhead.
#[derive(Debug, Clone, Serialize)]
pub struct TraceCheck {
    /// Records the counting sink accepted during the traced run.
    pub trace_records: u64,
    /// Wall-clock seconds of the traced run.
    pub trace_wall_clock_secs: f64,
    /// Traced wall-clock divided by untraced wall-clock (ci.sh gates ≤ 1.5).
    pub trace_overhead_ratio: f64,
    /// Whether [`RunReport::canonical`] matched between the traced and
    /// untraced runs (ci.sh fails if false).
    pub canonical_identical: bool,
}

/// The `BENCH_events.json` record: the fixed-seed dynamics-heavy run.
#[derive(Debug, Clone, Serialize)]
pub struct EventsRecord {
    /// Human-readable workload label.
    pub benchmark: &'static str,
    /// RNG seed of the fixed workload.
    pub seed: u64,
    /// Swarm size.
    pub nodes: usize,
    /// Disseminated file size in bytes.
    pub file_bytes: u64,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// Simulator events processed (deterministic, gated ±10%).
    pub events_processed: u64,
    /// Heap allocations during the run (deterministic, informational).
    pub run_allocs: u64,
    /// Live-heap high-water mark in bytes (deterministic, informational).
    pub peak_alloc_bytes: u64,
    /// Wall-clock seconds of the untraced run (machine-dependent, gated
    /// absolutely at 0.72 s).
    pub wall_clock_secs: f64,
    /// Virtual end time of the run in seconds (deterministic).
    pub virtual_end_secs: f64,
    /// `Debug` form of the stop reason (deterministic).
    pub stop_reason: String,
    /// The run's deterministic metrics snapshot (see
    /// `docs/OBSERVABILITY.md`).
    pub metrics: MetricsSnapshot,
    /// The traced-run identity/overhead check.
    pub trace: TraceCheck,
}

/// One swarm-size point of the `BENCH_scale.json` record.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    /// Swarm size of this point (the awk anchor of the ci.sh scale gate —
    /// keep it the first field).
    pub nodes: usize,
    /// Simulator events processed (deterministic).
    pub events_processed: u64,
    /// Events per wall-clock second (machine-dependent, gated at N = 1000).
    pub events_per_sec: f64,
    /// Wall-clock seconds (machine-dependent).
    pub wall_clock_secs: f64,
    /// Live-heap high-water mark in bytes (deterministic).
    pub peak_alloc_bytes: u64,
    /// Virtual end time in seconds (deterministic).
    pub virtual_end_secs: f64,
    /// `Debug` form of the stop reason (must be `AllComplete`).
    pub stop_reason: String,
}

/// The `BENCH_scale.json` record: the fig20 workload per swarm size.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleRecord {
    /// Human-readable workload label.
    pub benchmark: &'static str,
    /// RNG seed of the fixed workload.
    pub seed: u64,
    /// Disseminated file size in bytes.
    pub file_bytes: u64,
    /// Block size in bytes.
    pub block_bytes: u32,
    /// One entry per swarm size, in run order.
    pub points: Vec<ScalePoint>,
}

impl ScalePoint {
    /// Builds a point from a finished run's report and its measured wall
    /// clock, rounding the machine-dependent fields.
    pub fn from_report(nodes: usize, report: &RunReport, wall_secs: f64, peak_bytes: u64) -> Self {
        ScalePoint {
            nodes,
            events_processed: report.events,
            events_per_sec: rounded(report.events as f64 / wall_secs.max(1e-9), 0),
            wall_clock_secs: rounded(wall_secs, 3),
            peak_alloc_bytes: peak_bytes,
            virtual_end_secs: rounded(report.end_time.as_secs_f64(), 6),
            stop_reason: format!("{:?}", report.reason),
        }
    }
}

/// One offered-load point of the `BENCH_service.json` record.
#[derive(Debug, Clone, Serialize)]
pub struct ServicePoint {
    /// Offered load of this point in swarm arrivals per 1000 virtual
    /// seconds (the awk anchor of the ci.sh service gate — keep it the
    /// first field).
    pub offered_per_1000s: f64,
    /// Sustained goodput past the warmup boundary, bits per second
    /// (deterministic, gated ±10% at the top load).
    pub sustained_goodput_bps: f64,
    /// Swarm arrivals materialised within the horizon (deterministic).
    pub arrivals: usize,
    /// Swarms admitted to a segment (deterministic).
    pub admitted: usize,
    /// Swarms completed and reaped (deterministic).
    pub completed: usize,
    /// Swarms still occupying a segment at the horizon (deterministic).
    pub in_flight_at_end: usize,
    /// Swarms still queueing for a segment at the horizon (deterministic).
    pub queued_at_end: usize,
    /// Peak number of concurrently admitted swarms (deterministic).
    pub max_concurrent: usize,
    /// Median completion latency since arrival, seconds (deterministic;
    /// 0 when nothing completed).
    pub p50_latency_secs: f64,
    /// 90th-percentile completion latency since arrival (deterministic;
    /// 0 when nothing completed).
    pub p90_latency_secs: f64,
    /// Simulator events processed (deterministic).
    pub events_processed: u64,
    /// Wall-clock seconds (machine-dependent, informational).
    pub wall_clock_secs: f64,
}

/// The `BENCH_service.json` record: the reduced fixed-seed fig21
/// offered-load sweep (one open-system service run per load point).
#[derive(Debug, Clone, Serialize)]
pub struct ServiceRecord {
    /// Human-readable workload label.
    pub benchmark: &'static str,
    /// RNG seed of the fixed workload.
    pub seed: u64,
    /// Slot-pool size shared by every point.
    pub pool_nodes: usize,
    /// Service horizon in virtual seconds.
    pub horizon_secs: f64,
    /// One entry per offered-load point, ascending.
    pub points: Vec<ServicePoint>,
}

impl ServicePoint {
    /// Builds a point from a finished service run's report and its measured
    /// wall clock, rounding the noisy fields.
    pub fn from_report(offered_per_1000s: f64, report: &ServiceReport, wall_secs: f64) -> Self {
        ServicePoint {
            offered_per_1000s,
            sustained_goodput_bps: rounded(report.sustained_goodput_bps, 1),
            arrivals: report.arrivals,
            admitted: report.admitted,
            completed: report.completed,
            in_flight_at_end: report.in_flight_at_end,
            queued_at_end: report.queued_at_end,
            max_concurrent: report.max_concurrent,
            p50_latency_secs: rounded(report.latency_quantile(0.5).unwrap_or(0.0), 3),
            p90_latency_secs: rounded(report.latency_quantile(0.9).unwrap_or(0.0), 3),
            events_processed: report.events,
            wall_clock_secs: rounded(wall_secs, 3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_record_keeps_the_ci_extraction_shape() {
        let record = ServiceRecord {
            benchmark: "test",
            seed: 1,
            pool_nodes: 48,
            horizon_secs: 1200.0,
            points: vec![ServicePoint {
                offered_per_1000s: 128.0,
                sustained_goodput_bps: 12081234.5,
                arrivals: 229,
                admitted: 171,
                completed: 167,
                in_flight_at_end: 4,
                queued_at_end: 58,
                max_concurrent: 4,
                p50_latency_secs: 207.5,
                p90_latency_secs: 418.5,
                events_processed: 1128352,
                wall_clock_secs: 6.333,
            }],
        };
        let json = serde_json::to_string_pretty(&record).unwrap();
        // The ci.sh service gate extracts the LAST sustained_goodput_bps
        // line (the top-load point); verify the `"key": value` shape.
        assert!(
            json.contains(r#""sustained_goodput_bps": 12081234.5"#),
            "{json}"
        );
        // The anchor field leads its point.
        let anchor = json.find(r#""offered_per_1000s": 128.0"#).unwrap();
        let goodput = json.find(r#""sustained_goodput_bps":"#).unwrap();
        assert!(anchor < goodput);
    }

    #[test]
    fn scale_record_keeps_the_ci_extraction_shape() {
        let record = ScaleRecord {
            benchmark: "test",
            seed: 1,
            file_bytes: 2,
            block_bytes: 3,
            points: vec![ScalePoint {
                nodes: 1000,
                events_processed: 42,
                events_per_sec: 226000.0,
                wall_clock_secs: 0.123,
                peak_alloc_bytes: 7,
                virtual_end_secs: 99.5,
                stop_reason: "AllComplete".to_string(),
            }],
        };
        let json = serde_json::to_string_pretty(&record).unwrap();
        // The awk anchor of the ci.sh scale gate: a line ending exactly in
        // `"nodes": 1000,` followed (later) by an `"events_per_sec"` line.
        assert!(
            json.lines().any(|l| l.trim() == r#""nodes": 1000,"#),
            "{json}"
        );
        let nodes_pos = json.find(r#""nodes": 1000,"#).unwrap();
        let eps_pos = json.find(r#""events_per_sec":"#).unwrap();
        assert!(nodes_pos < eps_pos);
        // The grep patterns of the events gate tolerate any digits after the
        // colon+space; verify the basic `"key": value` shape holds.
        assert!(json.contains(r#""events_processed": 42"#), "{json}");
    }

    #[test]
    fn rounding_truncates_committed_noise() {
        assert_eq!(rounded(0.123456, 3), 0.123);
        assert_eq!(rounded(226123.7, 0), 226124.0);
    }
}
