//! One function per figure of the paper's evaluation (§4).
//!
//! Each function assembles the topology, workload and protocol variants of
//! the corresponding figure, runs them on the emulator and returns a
//! [`Figure`] whose series carry the same legends the paper uses. The
//! `figNN` binaries are thin wrappers around these functions, so integration
//! tests and examples can call them directly.
//!
//! Default workloads are reduced (≈1/10 of the paper's byte volume, 40
//! instead of 100 nodes) so the whole suite runs in minutes; `--full`
//! restores the paper's sizes. `docs/EXPERIMENTS.md` is the scenario book:
//! one entry per figure with its paper mapping, sweep and expected result.

use desim::{RngFactory, SimDuration, SimTime};
use dissem_codec::FileSpec;
use netsim::dynamics::{crash_wave_schedule, cross_traffic_square_wave, flash_crowd_schedule};
use netsim::units::{mbps, to_mbps};
use netsim::{
    run_service, topology, ArrivalGen, ChangeSchedule, NodeEvent, NodeId, ServiceConfig,
    ServiceReport, SwarmShape, SwarmSource,
};

use bullet_prime::{
    build_service_runner, Config, FlashShape, OutstandingPolicy, PeerSetPolicy, RequestStrategy,
    ServiceSwarms,
};
use shotgun::{
    parallel_rsync_times, planetlab_client_bandwidths, simulate_shotgun, RsyncModelParams,
};

use crate::bounds;
use crate::cdf::{improvement_at, Figure, Series};
use crate::opts::CommonOpts;
use crate::systems::{
    cascade_schedule, paper_dynamic_schedule, run_bullet_prime_churn, run_bullet_prime_cross,
    run_bullet_prime_with, run_concurrent_meshes, run_system, SystemKind,
};

fn limit(opts: &CommonOpts) -> SimDuration {
    SimDuration::from_secs_f64(opts.time_limit)
}

/// Shared core of Figs 4 and 5: the four systems plus (for Fig 4) the two
/// analytic bounds, on the standard lossy ModelNet mesh.
fn overall_comparison(opts: &CommonOpts, dynamic: bool) -> Figure {
    let nodes = opts.nodes_or(60, 100);
    let file = FileSpec::new(opts.file_bytes_or(20.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);

    let (id, title) = if dynamic {
        (
            "Figure 5",
            "download time CDF under synthetic bandwidth changes and random losses",
        )
    } else {
        (
            "Figure 4",
            "download time CDF under random network packet losses",
        )
    };
    let mut fig = Figure::new(
        id,
        format!("{title} ({nodes} nodes, {} blocks)", file.num_blocks()),
    );

    if !dynamic {
        let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
        fig.push(Series::cdf(
            "Physical Link Speed Possible",
            &bounds::physical_limit(&topo, file),
        ));
        fig.push(Series::cdf(
            "MACEDON TCP feasible + startup",
            &bounds::tcp_feasible(&topo, file, 10.0),
        ));
    }

    let schedule: ChangeSchedule = if dynamic {
        paper_dynamic_schedule(nodes, opts.time_limit, &rng)
    } else {
        Vec::new()
    };

    for kind in SystemKind::all() {
        let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
        let run = run_system(kind, topo, file, &rng, &schedule, limit(opts));
        let mut series = Series::cdf(kind.label(), &run.times);
        if run.unfinished > 0 {
            series.label = format!("{} ({} unfinished)", series.label, run.unfinished);
        }
        fig.push(series);
    }

    // Headline numbers the paper quotes in §4.2.
    let find = |fig: &Figure, name: &str| {
        fig.series
            .iter()
            .find(|s| s.label.starts_with(name))
            .cloned()
            .expect("series present")
    };
    let ours = find(&fig, "BulletPrime");
    let mut best_other_median = f64::INFINITY;
    let mut best_other_slowest = f64::INFINITY;
    for name in ["Bullet", "BitTorrent", "SplitStream"] {
        let s = fig
            .series
            .iter()
            .find(|s| s.label.starts_with(name) && !s.label.starts_with("BulletPrime"))
            .expect("series present");
        best_other_median = best_other_median.min(s.quantile(0.5));
        best_other_slowest = best_other_slowest.min(s.max_x());
    }
    fig.note(format!(
        "BulletPrime median {:.1}s vs best other {:.1}s ({:.0}% faster); slowest {:.1}s vs {:.1}s ({:.0}% faster)",
        ours.quantile(0.5),
        best_other_median,
        100.0 * (best_other_median - ours.quantile(0.5)) / best_other_median,
        ours.max_x(),
        best_other_slowest,
        100.0 * (best_other_slowest - ours.max_x()) / best_other_slowest,
    ));
    fig.note(if dynamic {
        "paper: BulletPrime faster by 32%-70% under dynamic conditions".to_string()
    } else {
        "paper: BulletPrime ~25% faster overall; slowest receiver 37% faster".to_string()
    });
    fig
}

/// Figure 4: overall comparison under static random losses.
pub fn fig04(opts: &CommonOpts) -> Figure {
    overall_comparison(opts, false)
}

/// Figure 5: overall comparison under the synthetic bandwidth-change scenario.
pub fn fig05(opts: &CommonOpts) -> Figure {
    overall_comparison(opts, true)
}

/// Figure 5w (beyond the paper): one cell of the snapshot/fork warm-up
/// study. Bullet′ joins and transfers for
/// [`FIG05W_WARMUP_SECS`](crate::warmup::FIG05W_WARMUP_SECS) virtual
/// seconds, then the "paper" dynamics variant (the §4.1 correlated
/// bandwidth decreases) applies for the rest of the run. Run standalone
/// this is an ordinary uninterrupted simulation; under `lab sweep`/`lab
/// bench` the scenario's warm-up hooks (see [`crate::warmup`]) let the
/// executor simulate the shared warm-up once per seed and fork the "calm" /
/// "paper" / "storm" variants from the checkpoint.
pub fn fig05w(opts: &CommonOpts) -> Figure {
    crate::warmup::fig05w_fresh(opts, "paper")
}

/// Figure 5ts (beyond the paper): the Figure-5 dynamic scenario observed
/// *while it runs*. A run-time probe samples every receiver on a virtual-time
/// tick (`--tick`, default 2 s) and the figure plots goodput over time —
/// mean, 10th and 90th percentile across the active receivers — plus the mean
/// duplicate-block percentage and mean sender-set size. This is the
/// bandwidth-over-time view end-of-run CDFs cannot show: the correlated
/// bandwidth cuts land every 20 s and the curves show Bullet′ re-converging
/// after each one.
pub fn fig05ts(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes_or(60, 100);
    let file = FileSpec::new(opts.file_bytes_or(20.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let tick = opts.tick.unwrap_or(2.0);

    let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
    let schedule = paper_dynamic_schedule(nodes, opts.time_limit, &rng);
    let cfg = Config::new(file);
    let (run, report, _) = crate::systems::run_bullet_prime_timeseries(
        topo,
        &cfg,
        &rng,
        &schedule,
        limit(opts),
        SimDuration::from_secs_f64(tick),
    );
    let series = report
        .timeseries
        .expect("run_bullet_prime_timeseries installs a probe");

    let mut fig = Figure::new(
        "Figure 5ts",
        format!(
            "per-receiver goodput over time under synthetic bandwidth changes \
             ({nodes} nodes, {:.0} s tick)",
            tick
        ),
    );
    fig.x_label = "time (s)".into();
    fig.y_label = "goodput (Mbps)".into();
    let to_mbps = |bps: f64| bps / 1e6;
    fig.push(Series::xy(
        "mean receiver goodput (Mbps)",
        series.mean_over_active(1, |n| to_mbps(n.goodput_bps)),
    ));
    fig.push(Series::xy(
        "p10 receiver goodput (Mbps)",
        series.quantile_over_active(1, 0.10, |n| to_mbps(n.goodput_bps)),
    ));
    fig.push(Series::xy(
        "p90 receiver goodput (Mbps)",
        series.quantile_over_active(1, 0.90, |n| to_mbps(n.goodput_bps)),
    ));
    fig.push(Series::xy(
        "mean duplicate blocks (%)",
        series.mean_over_active(1, |n| n.duplicate_ratio * 100.0),
    ));
    fig.push(Series::xy(
        "mean sender-set size",
        series.mean_over_active(1, |n| n.senders as f64),
    ));

    let mean = &fig.series[0];
    let peak = mean.points.iter().map(|&(_, y)| y).fold(0.0, f64::max);
    fig.note(format!(
        "{} samples at a {tick:.0} s tick; peak mean goodput {peak:.2} Mbps; median download {:.1} s",
        series.samples.len(),
        Series::cdf("tmp", &run.times).quantile(0.5),
    ));
    fig.note(
        "probe series: goodput differenced per tick from cumulative useful bytes; \
         duplicate ratio and peer-set sizes sampled instantaneously"
            .to_string(),
    );
    fig
}

/// Figure 6: impact of the request strategy.
pub fn fig06(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes_or(40, 100);
    let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let mut fig = Figure::new(
        "Figure 6",
        format!("request strategies under random losses ({nodes} nodes)"),
    );
    let strategies = [
        (
            "BulletPrime rarest random request strategy",
            RequestStrategy::RarestRandom,
        ),
        (
            "BulletPrime random request strategy",
            RequestStrategy::Random,
        ),
        (
            "BulletPrime rarest request strategy",
            RequestStrategy::Rarest,
        ),
        (
            "BulletPrime first request strategy",
            RequestStrategy::FirstEncountered,
        ),
    ];
    for (label, strategy) in strategies {
        let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
        let mut cfg = Config::new(file);
        cfg.request_strategy = strategy;
        let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, &Vec::new(), limit(opts));
        fig.push(Series::cdf(label, &run.times));
    }
    let rr = fig.series[0].clone();
    let first = fig.series[3].clone();
    fig.note(format!(
        "rarest-random median {:.1}s vs first-encountered {:.1}s ({:.0}% faster); paper: first-encountered performs worst",
        rr.quantile(0.5),
        first.quantile(0.5),
        100.0 * improvement_at(&rr, &first, 0.5)
    ));
    fig
}

/// Shared core of Figs 7–9: fixed peer-set sizes vs the dynamic policy.
fn peer_sizing(
    opts: &CommonOpts,
    id: &str,
    title: &str,
    mk_topology: impl Fn(&RngFactory, usize) -> netsim::Topology,
    file: FileSpec,
    sizes: &[usize],
    schedule: &ChangeSchedule,
) -> Figure {
    let nodes = opts.nodes_or(40, 100);
    let rng = RngFactory::new(opts.seed);
    let mut fig = Figure::new(id, format!("{title} ({nodes} nodes)"));
    for &k in sizes {
        let topo = mk_topology(&rng, nodes);
        let mut cfg = Config::new(file);
        cfg.peer_policy = PeerSetPolicy::Fixed(k);
        let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, schedule, limit(opts));
        fig.push(Series::cdf(
            format!("BulletPrime, {k} senders, {k} receivers"),
            &run.times,
        ));
    }
    let topo = mk_topology(&rng, nodes);
    let cfg = Config::new(file);
    let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, schedule, limit(opts));
    fig.push(Series::cdf(
        "BulletPrime, dyn. #senders,#receivers",
        &run.times,
    ));

    let dynamic = fig.series.last().cloned().expect("just pushed");
    let best_static = fig.series[..fig.series.len() - 1]
        .iter()
        .map(|s| s.quantile(0.5))
        .fold(f64::INFINITY, f64::min);
    fig.note(format!(
        "dynamic median {:.1}s vs best static {:.1}s; paper: no static size wins everywhere, dynamic tracks the best",
        dynamic.quantile(0.5),
        best_static
    ));
    fig
}

/// Figure 7: peer-set sizes under random losses.
pub fn fig07(opts: &CommonOpts) -> Figure {
    let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(16));
    peer_sizing(
        opts,
        "Figure 7",
        "static peer-set sizes 6/10/14 vs dynamic under random losses",
        |rng, n| topology::modelnet_mesh(n, 0.03, rng),
        file,
        &[6, 10, 14],
        &Vec::new(),
    )
}

/// Figure 8: peer-set sizes under the synthetic bandwidth-change scenario.
pub fn fig08(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes_or(40, 100);
    let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let schedule = paper_dynamic_schedule(nodes, opts.time_limit, &rng);
    peer_sizing(
        opts,
        "Figure 8",
        "static peer-set sizes 6/10/14 vs dynamic under bandwidth changes and losses",
        |rng, n| topology::modelnet_mesh(n, 0.03, rng),
        file,
        &[6, 10, 14],
        &schedule,
    )
}

/// Figure 9: peer-set sizes on the constrained-access topology (no losses).
pub fn fig09(opts: &CommonOpts) -> Figure {
    let file = FileSpec::new(opts.file_bytes_or(4.0, 10.0), opts.block_bytes_or(16));
    peer_sizing(
        opts,
        "Figure 9",
        "static peer-set sizes 10/14 vs dynamic with 800 Kbps access links, no losses",
        |_rng, n| topology::constrained_access(n),
        file,
        &[10, 14],
        &Vec::new(),
    )
}

/// Shared core of Figs 10–12: fixed outstanding-request windows vs dynamic.
#[allow(clippy::too_many_arguments)] // one slot per experiment knob; a builder would obscure the 1:1 mapping to the figures
fn outstanding_sizing(
    opts: &CommonOpts,
    id: &str,
    title: &str,
    topo_builder: impl Fn(&RngFactory, usize) -> netsim::Topology,
    nodes: usize,
    file: FileSpec,
    windows: &[u32],
    schedule: &ChangeSchedule,
) -> Figure {
    let rng = RngFactory::new(opts.seed);
    let mut fig = Figure::new(id, format!("{title} ({nodes} nodes)"));
    // The paper runs this study with up to 5 senders per node so the
    // per-connection window, not the peer count, is the variable under test.
    let peers = PeerSetPolicy::Fixed(5);
    for &w in windows {
        let topo = topo_builder(&rng, nodes);
        let mut cfg = Config::new(file);
        cfg.min_peers = 5;
        cfg.peer_policy = peers;
        cfg.outstanding_policy = OutstandingPolicy::Fixed(w);
        let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, schedule, limit(opts));
        fig.push(Series::cdf(
            format!("BulletPrime , {w:<4} outst"),
            &run.times,
        ));
    }
    let topo = topo_builder(&rng, nodes);
    let mut cfg = Config::new(file);
    cfg.min_peers = 5;
    cfg.peer_policy = peers;
    let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, schedule, limit(opts));
    fig.push(Series::cdf("BulletPrime , dyn  outst", &run.times));

    let dynamic = fig.series.last().cloned().expect("just pushed");
    let best_static = fig.series[..fig.series.len() - 1]
        .iter()
        .map(|s| s.quantile(0.5))
        .fold(f64::INFINITY, f64::min);
    fig.note(format!(
        "dynamic median {:.1}s vs best static median {:.1}s",
        dynamic.quantile(0.5),
        best_static
    ));
    fig
}

/// Figure 10: outstanding-request windows on clean high-BDP links.
pub fn fig10(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes.unwrap_or(25);
    let file = FileSpec::new(opts.file_bytes_or(8.0, 100.0), opts.block_bytes_or(8));
    outstanding_sizing(
        opts,
        "Figure 10",
        "per-peer outstanding blocks, 10 Mbps / 100 ms links, no losses",
        |rng, n| topology::high_bdp_clique(n, 0.0, rng),
        nodes,
        file,
        &[3, 6, 9, 15, 50],
        &Vec::new(),
    )
}

/// Figure 11: outstanding-request windows under random losses.
pub fn fig11(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes.unwrap_or(25);
    let file = FileSpec::new(opts.file_bytes_or(8.0, 100.0), opts.block_bytes_or(8));
    outstanding_sizing(
        opts,
        "Figure 11",
        "per-peer outstanding blocks, 10 Mbps / 100 ms links, 0-1.5% loss",
        |rng, n| topology::high_bdp_clique(n, 0.015, rng),
        nodes,
        file,
        &[3, 6, 15, 50],
        &Vec::new(),
    )
}

/// Figure 12: outstanding-request windows under cascading slowdowns towards a
/// single victim node.
pub fn fig12(opts: &CommonOpts) -> Figure {
    let fast_nodes = 7; // Source + 6 well-connected peers; node 7 is the victim.
    let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(8));
    // The paper degrades one link every 25 s over a ~100 MB download; keep the
    // number of degradations seen during a reduced download the same by
    // scaling the period with the file size.
    let period = 25.0 * (file.file_bytes as f64 / (100.0 * 1024.0 * 1024.0));
    let schedule = cascade_schedule(fast_nodes, period.max(1.0));
    let rng = RngFactory::new(opts.seed);
    let mut fig = Figure::new(
        "Figure 12",
        "outstanding blocks under cascading 100 Kbps degradations of the victim's links",
    );
    for w in [9u32, 15, 50] {
        let topo = topology::cascade_topology(fast_nodes);
        let mut cfg = Config::new(file);
        cfg.outstanding_policy = OutstandingPolicy::Fixed(w);
        cfg.peer_policy = PeerSetPolicy::Fixed(6);
        let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, &schedule, limit(opts));
        fig.push(Series::cdf(format!("BulletPrime , {w} outst"), &run.times));
    }
    let topo = topology::cascade_topology(fast_nodes);
    let mut cfg = Config::new(file);
    cfg.peer_policy = PeerSetPolicy::Fixed(6);
    let (run, _) = run_bullet_prime_with(topo, &cfg, &rng, &schedule, limit(opts));
    fig.push(Series::cdf("BulletPrime , dyn  outst", &run.times));

    let dynamic = fig.series.last().cloned().expect("just pushed");
    let best_static_slowest = fig.series[..fig.series.len() - 1]
        .iter()
        .map(Series::max_x)
        .fold(f64::INFINITY, f64::min);
    fig.note(format!(
        "slowest (victim) node: dynamic {:.1}s vs best static {:.1}s ({:.0}% faster); paper: dynamic beats static by 7-22% for the victim",
        dynamic.max_x(),
        best_static_slowest,
        100.0 * (best_static_slowest - dynamic.max_x()) / best_static_slowest,
    ));
    fig
}

/// Figure 13: average block inter-arrival times (the "last-block problem"
/// analysis) plus the §4.6 overage-vs-encoding-overhead comparison.
pub fn fig13(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes_or(60, 100);
    let file = FileSpec::new(opts.file_bytes_or(20.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
    let cfg = Config::new(file);
    let (_, nodes_out) = run_bullet_prime_with(topo, &cfg, &rng, &Vec::new(), limit(opts));

    // Average the i-th inter-arrival gap across receivers.
    let mut sums: Vec<f64> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut overages = Vec::new();
    let mut completions = Vec::new();
    for node in nodes_out.iter().skip(1) {
        let gaps = node.metrics().inter_arrival_times();
        for (i, g) in gaps.iter().enumerate() {
            if i >= sums.len() {
                sums.resize(i + 1, 0.0);
                counts.resize(i + 1, 0);
            }
            sums[i] += g;
            counts[i] += 1;
        }
        overages.push(node.metrics().last_blocks_overage(20));
        if let Some(c) = node.metrics().completed_at {
            completions.push(c);
        }
    }
    let series: Vec<(f64, f64)> = sums
        .iter()
        .zip(counts.iter())
        .enumerate()
        .filter(|(_, (_, &c))| c > 0)
        .map(|(i, (&s, &c))| ((i + 1) as f64, s / f64::from(c)))
        .collect();

    let mut fig = Figure::new(
        "Figure 13",
        format!("average block inter-arrival time by retrieval order ({nodes} nodes)"),
    );
    fig.x_label = "block number (retrieval order)".into();
    fig.y_label = "inter-arrival time (s)".into();
    fig.push(Series::xy("Average", series));

    let mean_overage = overages.iter().sum::<f64>() / overages.len().max(1) as f64;
    let mean_completion = completions.iter().sum::<f64>() / completions.len().max(1) as f64;
    let encoding_cost = 0.04 * mean_completion;
    fig.note(format!(
        "last-20-block overage {:.2}s vs 4% source-encoding cost {:.2}s — encoding {} clearly beneficial (paper: 8.38s vs 7.60s, not clearly beneficial)",
        mean_overage,
        encoding_cost,
        if mean_overage > encoding_cost { "would be" } else { "is not" }
    ));
    fig
}

/// Figure 14: the wide-area (PlanetLab-like) comparison of all four systems.
pub fn fig14(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes_or(41, 41);
    let file = FileSpec::new(opts.file_bytes_or(10.0, 50.0), opts.block_bytes_or(100));
    let rng = RngFactory::new(opts.seed);
    let mut fig = Figure::new(
        "Figure 14",
        format!("wide-area (PlanetLab-like) comparison, {nodes} sites, 100 KB blocks"),
    );
    for kind in SystemKind::all() {
        let topo = topology::planetlab_like(nodes, &rng);
        let run = run_system(kind, topo, file, &rng, &Vec::new(), limit(opts));
        let mut series = Series::cdf(kind.label(), &run.times);
        if run.unfinished > 0 {
            series.label = format!("{} ({} unfinished)", series.label, run.unfinished);
        }
        fig.push(series);
    }
    let ours = fig.series[0].clone();
    let bt = fig
        .series
        .iter()
        .find(|s| s.label.starts_with("BitTorrent"))
        .cloned()
        .expect("BitTorrent series present");
    fig.note(format!(
        "slowest BulletPrime node {:.0}s vs slowest BitTorrent node {:.0}s (paper: ~400s sooner on a 50MB download)",
        ours.max_x(),
        bt.max_x()
    ));
    fig
}

/// Figure 16 (beyond the paper): Bullet′ under crash churn. A fraction of
/// the receivers crashes — connections reset, no goodbye — at instants spread
/// over the middle of the transfer; the figure shows the completion-time CDF
/// of the *surviving* receivers for 0%/10%/25%/50% crash fractions.
pub fn fig16(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes_or(40, 100);
    let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let mut fig = Figure::new(
        "Figure 16",
        format!("survivor download-time CDF under receiver crash waves ({nodes} nodes)"),
    );

    // Calibrate the crash window off the churn-free run so "mid-transfer"
    // stays mid-transfer at every workload scale.
    let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
    let cfg = Config::new(file);
    let (clean, _) = run_bullet_prime_with(topo, &cfg, &rng, &Vec::new(), limit(opts));
    let median = Series::cdf("tmp", &clean.times).quantile(0.5);
    fig.push(Series::cdf("BulletPrime, no churn", &clean.times));

    for fraction in [0.10, 0.25, 0.50] {
        let window_start = SimTime::from_secs_f64(0.2 * median);
        let window_end = SimTime::from_secs_f64(0.6 * median);
        let churn = crash_wave_schedule(nodes, fraction, window_start, window_end, &rng);
        let crashed = churn.len();
        let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
        let cfg = Config::new(file);
        let (run, report, _) = run_bullet_prime_churn(topo, &cfg, &rng, &churn, limit(opts));
        let mut series = Series::cdf(
            format!(
                "BulletPrime, {:.0}% crash ({crashed} nodes)",
                fraction * 100.0
            ),
            &run.times,
        );
        if run.unfinished > 0 {
            series.label = format!("{} ({} unfinished)", series.label, run.unfinished);
        }
        fig.push(series);
        debug_assert_eq!(
            report.departed.iter().filter(|&&d| d).count(),
            crashed,
            "every scheduled crash must have taken effect"
        );
    }

    let worst = fig.series.last().expect("pushed above");
    fig.note(format!(
        "no-churn median {:.1}s vs 50%-crash survivor median {:.1}s; crashed nodes are excluded from the stop condition and the CDF",
        fig.series[0].quantile(0.5),
        worst.quantile(0.5),
    ));
    fig
}

/// Figure 17 (beyond the paper): a flash crowd. Only the source and a quarter
/// of the receivers are present at t = 0; the rest join in a wave across the
/// middle of the transfer. The CDF shows per-receiver *download duration*
/// (completion time minus join time), so late joiners are comparable to the
/// initial group.
pub fn fig17(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes_or(40, 100);
    let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let mut fig = Figure::new(
        "Figure 17",
        format!("download-duration CDF with a flash-crowd join wave ({nodes} nodes)"),
    );

    // Everyone-from-the-start baseline, which also calibrates the join window.
    let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
    let cfg = Config::new(file);
    let (clean, _) = run_bullet_prime_with(topo, &cfg, &rng, &Vec::new(), limit(opts));
    let median = Series::cdf("tmp", &clean.times).quantile(0.5);
    fig.push(Series::cdf("BulletPrime, all present at t=0", &clean.times));

    let initial = 1 + (nodes - 1) / 4; // source + 25% of the receivers
    let churn = flash_crowd_schedule(
        nodes,
        initial,
        SimTime::from_secs_f64(0.25 * median),
        SimTime::from_secs_f64(0.75 * median),
    );
    let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
    let cfg = Config::new(file);
    let (_, report, _) = run_bullet_prime_churn(topo, &cfg, &rng, &churn, limit(opts));
    let join_time = |node: usize| -> f64 {
        churn
            .iter()
            .find_map(|(at, ev)| match ev {
                NodeEvent::Join(n) if n.index() == node => Some(at.as_secs_f64()),
                _ => None,
            })
            .unwrap_or(0.0)
    };
    let end = report.end_time.as_secs_f64();
    let mut unfinished = 0usize;
    let durations: Vec<f64> = (1..nodes)
        .map(|i| {
            let joined = join_time(i);
            match report.completion_secs[i] {
                Some(c) => c - joined,
                None => {
                    unfinished += 1;
                    end - joined
                }
            }
        })
        .collect();
    let mut series = Series::cdf(
        format!("BulletPrime, flash crowd ({} join late)", nodes - initial),
        &durations,
    );
    if unfinished > 0 {
        series.label = format!("{} ({unfinished} unfinished)", series.label);
    }
    fig.push(series);

    fig.note(format!(
        "all-at-start median {:.1}s vs flash-crowd per-node median {:.1}s (late joiners measured from their join instant)",
        fig.series[0].quantile(0.5),
        fig.series[1].quantile(0.5),
    ));
    fig
}

/// Figure 18 (beyond the paper): two concurrent Bullet′ meshes sharing one
/// core bottleneck. All core paths of a [`topology::shared_core_mesh`] ride a
/// single lossy 2 Mbps link, so *every* byte of overlay traffic — from both
/// meshes — contends there. The figure compares the download-time CDF of a
/// lone mesh on that substrate against two independent meshes (separate
/// sources, trees, RanSub overlays) running concurrently: under max-min fair
/// sharing each mesh converges to roughly half the lone mesh's rate, which
/// the per-path TCP-equation model of earlier revisions could not express at
/// all (disjoint pairs never contended).
pub fn fig18(opts: &CommonOpts) -> Figure {
    let total = opts.nodes_or(32, 64);
    let mesh = (total / 2).max(2);
    let file = FileSpec::new(opts.file_bytes_or(2.0, 10.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let core = mbps(2.0);
    let loss = 0.01;
    let cfg = Config::new(file);

    let mut fig = Figure::new(
        "Figure 18",
        format!(
            "two concurrent {mesh}-node meshes sharing one lossy 2 Mbps core bottleneck \
             ({} blocks each)",
            file.num_blocks()
        ),
    );

    // Baseline: one mesh alone on the shared-core substrate.
    let topo = topology::shared_core_mesh(mesh, core, loss, &rng);
    let (single, _) = run_bullet_prime_with(topo, &cfg, &rng, &Vec::new(), limit(opts));
    let mut series = Series::cdf("single mesh over the shared core", &single.times);
    if single.unfinished > 0 {
        series.label = format!("{} ({} unfinished)", series.label, single.unfinished);
    }
    fig.push(series);

    // Two meshes, same substrate, twice the nodes: groups [mesh, mesh].
    let topo = topology::shared_core_mesh(2 * mesh, core, loss, &rng);
    let runs = run_concurrent_meshes(topo, &cfg, &rng, &[mesh, mesh], limit(opts));
    for (run, name) in runs.iter().zip(["mesh A", "mesh B"]) {
        let mut series = Series::cdf(format!("{name} of two sharing the core"), &run.times);
        if run.unfinished > 0 {
            series.label = format!("{} ({} unfinished)", series.label, run.unfinished);
        }
        fig.push(series);
    }

    let single_median = fig.series[0].quantile(0.5);
    let a_median = fig.series[1].quantile(0.5);
    let b_median = fig.series[2].quantile(0.5);
    fig.note(format!(
        "single-mesh median {single_median:.1}s vs concurrent medians {a_median:.1}s / {b_median:.1}s \
         (x{:.2} / x{:.2}; fluid max-min predicts ~x2 under a saturated shared core)",
        a_median / single_median,
        b_median / single_median,
    ));
    fig.note(format!(
        "both meshes see the same bottleneck: |A - B| medians differ by {:.0}%",
        100.0 * (a_median - b_median).abs() / a_median.max(b_median),
    ));
    fig
}

/// Figure 19 (beyond the paper): a cross-traffic square wave vs Bullet′
/// adaptivity. A single mesh runs over a shared 4 Mbps core while an
/// unresponsive CBR stream occupies half of the core on a square wave
/// (period scaled with the workload). The probe time-series shows the mesh's
/// per-receiver goodput collapsing when the wave switches on and recovering
/// when it ends — the bandwidth-over-time view of dynamic adaptivity that
/// end-of-run CDFs cannot show.
pub fn fig19(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes_or(16, 32);
    let file = FileSpec::new(opts.file_bytes_or(4.0, 20.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let tick = opts.tick.unwrap_or(2.0);
    let core = mbps(4.0);
    let wave_rate = mbps(2.0);
    // One wave boundary every ~20 s on the default workload; scale the
    // period with the file so reduced runs still see several waves.
    let period = (20.0 * file.file_bytes as f64 / (4.0 * 1024.0 * 1024.0)).max(4.0);

    let topo = topology::shared_core_mesh(nodes, core, 0.0, &rng);
    let cross = cross_traffic_square_wave(
        (NodeId(0), NodeId(1)),
        wave_rate,
        SimDuration::from_secs_f64(period),
        SimDuration::from_secs_f64(opts.time_limit),
    );
    let cfg = Config::new(file);
    let (run, report, _) = run_bullet_prime_cross(
        topo,
        &cfg,
        &rng,
        &cross,
        limit(opts),
        SimDuration::from_secs_f64(tick),
    );
    let series = report
        .timeseries
        .expect("run_bullet_prime_cross installs a probe");

    let mut fig = Figure::new(
        "Figure 19",
        format!(
            "per-receiver goodput under a cross-traffic square wave \
             ({nodes} nodes, {period:.0} s period, {tick:.0} s tick)"
        ),
    );
    fig.x_label = "time (s)".into();
    fig.y_label = "goodput / occupancy (Mbps)".into();
    let bps_to_mbps = |bps: f64| bps / 1e6;
    fig.push(Series::xy(
        "mean receiver goodput (Mbps)",
        series.mean_over_active(1, |n| bps_to_mbps(n.goodput_bps)),
    ));
    fig.push(Series::xy(
        "p10 receiver goodput (Mbps)",
        series.quantile_over_active(1, 0.10, |n| bps_to_mbps(n.goodput_bps)),
    ));
    fig.push(Series::xy(
        "p90 receiver goodput (Mbps)",
        series.quantile_over_active(1, 0.90, |n| bps_to_mbps(n.goodput_bps)),
    ));
    // The wave itself, as a step series clipped to the run.
    let end = report.end_time.as_secs_f64();
    let mut wave = vec![(0.0, 0.0)];
    let mut current = 0.0;
    for &(at, ct) in &cross {
        let t = at.as_secs_f64();
        if t > end {
            break;
        }
        wave.push((t, to_mbps(current)));
        current = ct.rate;
        wave.push((t, to_mbps(current)));
    }
    wave.push((end, to_mbps(current)));
    fig.push(Series::xy("cross-traffic occupancy (Mbps)", wave));

    let mean = &fig.series[0];
    let peak = mean.points.iter().map(|&(_, y)| y).fold(0.0, f64::max);
    fig.note(format!(
        "{} samples at a {tick:.0} s tick; peak mean goodput {peak:.2} Mbps; \
         median download {:.1} s ({} unfinished)",
        series.samples.len(),
        Series::cdf("tmp", &run.times).quantile(0.5),
        run.unfinished,
    ));
    fig.note(
        "the CBR wave occupies half the shared core while on; the fluid model \
         returns the capacity to the mesh the instant the wave ends"
            .to_string(),
    );
    fig
}

/// Figure 20 (beyond the paper): the emulator's scaling trajectory. A
/// join-only Bullet′ swarm (everyone present at t = 0, no churn, no link
/// dynamics) downloads a small file over the O(n) uniform-core topology
/// ([`topology::uniform_swarm`]) at N ∈ {1,000, 5,000, 10,000}; `--nodes`
/// collapses the trajectory to that one point. Each point contributes its
/// download-time CDF plus the deterministic events-processed count; the
/// wall-clock throughput goes to stderr (and to `BENCH_scale.json` via the
/// `bench_scale` binary), **not** into the figure, so sweep output stays
/// byte-identical across machines and thread counts.
pub fn fig20(opts: &CommonOpts) -> Figure {
    let file = FileSpec::new(opts.file_bytes_or(2.0, 2.0), opts.block_bytes_or(16));
    let sizes: Vec<usize> = match opts.nodes {
        Some(n) => vec![n],
        None => vec![1_000, 5_000, 10_000],
    };
    let rng = RngFactory::new(opts.seed);
    let mut fig = Figure::new(
        "Figure 20",
        format!(
            "emulator scaling trajectory: join-only swarm on the uniform core \
             ({} blocks, N = {sizes:?})",
            file.num_blocks()
        ),
    );

    let mut events = Vec::with_capacity(sizes.len());
    for &n in &sizes {
        let topo = topology::uniform_swarm(n, &rng);
        let cfg = Config::new(file);
        let started = std::time::Instant::now();
        let mut runner = bullet_prime::build_runner(topo, &cfg, &rng);
        let report = runner.run(limit(opts));
        let wall = started.elapsed().as_secs_f64();

        let end = report.end_time.as_secs_f64();
        let mut unfinished = 0usize;
        let times: Vec<f64> = report
            .completion_secs
            .iter()
            .skip(1) // Node 0 is the source.
            .map(|c| {
                c.unwrap_or_else(|| {
                    unfinished += 1;
                    end
                })
            })
            .collect();
        let mut series = Series::cdf(format!("BulletPrime, N={n}"), &times);
        if unfinished > 0 {
            series.label = format!("{} ({unfinished} unfinished)", series.label);
        }
        fig.push(series);
        events.push((n as f64, report.events as f64));
        fig.note(format!(
            "N={n}: {} events, virtual end {end:.1}s, {unfinished} unfinished",
            report.events
        ));
        eprintln!(
            "fig20 N={n}: {} events in {wall:.2}s wall ({:.0} events/s)",
            report.events,
            report.events as f64 / wall.max(1e-9)
        );
    }
    fig.push(Series::xy("events processed vs swarm size", events));
    fig.note(
        "wall-clock throughput is machine-local and reported on stderr / in \
         BENCH_scale.json; the figure itself is deterministic per seed"
            .to_string(),
    );
    fig
}

/// Figure 15: Shotgun vs N parallel rsync processes.
pub fn fig15(opts: &CommonOpts) -> Figure {
    let nodes = opts.nodes_or(41, 41);
    let update_bytes = opts.file_bytes_or(8.0, 24.0);
    let rng_params = RsyncModelParams::default();
    let replay_rate = rng_params.client_replay;

    let mut fig = Figure::new(
        "Figure 15",
        format!(
            "pushing a {:.0} MB update to {} nodes: Shotgun vs parallel rsync",
            update_bytes as f64 / (1024.0 * 1024.0),
            nodes - 1
        ),
    );
    fig.x_label = "completion time (s)".into();

    let shotgun = simulate_shotgun(
        nodes,
        update_bytes,
        opts.block_bytes_or(100) / 1024,
        replay_rate,
        opts.seed,
    );
    fig.push(Series::cdf(
        "Shotgun (Download Only)",
        &shotgun.download_only,
    ));
    fig.push(Series::cdf(
        "Shotgun (Download + Update)",
        &shotgun.download_plus_update,
    ));

    let clients = planetlab_client_bandwidths(nodes, opts.seed);
    for parallelism in [2usize, 4, 8, 16] {
        let times = parallel_rsync_times(&clients, parallelism, update_bytes, &rng_params);
        fig.push(Series::cdf(format!("{parallelism} parallel rsync"), &times));
    }

    let shotgun_total = fig.series[1].max_x();
    let best_rsync = fig.series[2..]
        .iter()
        .map(Series::max_x)
        .fold(f64::INFINITY, f64::min);
    fig.note(format!(
        "Shotgun download+update completes in {:.0}s vs {:.0}s for the best rsync configuration ({:.0}x faster; paper reports roughly two orders of magnitude)",
        shotgun_total,
        best_rsync,
        best_rsync / shotgun_total.max(1e-9)
    ));
    fig
}

// ---------------------------------------------------------------------------
// Open-system service scenarios (fig21 / fig22): generator-driven continuous
// swarms over a shared contended core, measured by sustained goodput and
// completion-time percentiles instead of a single finish time. The service
// manager itself lives in `netsim::service`; the Bullet′ swarm factory in
// `bullet_prime::service`. `docs/SERVICE_MODE.md` documents the model.
// ---------------------------------------------------------------------------

/// The offered-load points of fig21, in swarm arrivals per 1000 virtual
/// seconds. Ascending, so the knee (segment queueing, core saturation) sits
/// at the tail of every series.
pub const FIG21_LOADS: [f64; 4] = [16.0, 32.0, 64.0, 128.0];

/// Labels of the independent service cells a scenario runs, or `None` if
/// `name` is not an open-system service scenario. `lab serve` parallelises
/// over these cells; each is one [`run_service_point`] call.
pub fn service_points(name: &str) -> Option<Vec<String>> {
    match name {
        "fig21" => Some(
            FIG21_LOADS
                .iter()
                .map(|l| format!("load-{l:.0}-per-1000s"))
                .collect(),
        ),
        "fig22" => Some(vec!["flash-crowd".to_string()]),
        _ => None,
    }
}

/// Runs one service cell of a scenario (`index` into [`service_points`]) and
/// returns its deterministic [`ServiceReport`]. `None` for unknown scenarios
/// or out-of-range indices.
pub fn run_service_point(name: &str, index: usize, opts: &CommonOpts) -> Option<ServiceReport> {
    match name {
        "fig21" => FIG21_LOADS.get(index).map(|&load| fig21_report(load, opts)),
        "fig22" if index == 0 => Some(fig22_report(opts)),
        _ => None,
    }
}

/// The horizon of a service run: `--time-limit` verbatim under `--full`,
/// otherwise capped so the reduced suite stays fast (the closed-system
/// figures stop at AllComplete; an open system runs its whole window).
fn service_horizon(opts: &CommonOpts) -> f64 {
    if opts.full {
        opts.time_limit
    } else {
        opts.time_limit.min(1800.0)
    }
}

/// One fig21 offered-load cell: a slot pool over a shared 16 Mbps core
/// serving Poisson swarm arrivals at `load_per_1000s`, cohort and file sizes
/// drawn per swarm from seeded ranges.
fn fig21_report(load_per_1000s: f64, opts: &CommonOpts) -> ServiceReport {
    let pool = opts.nodes_or(48, 96);
    // Four segments; each arriving swarm claims one for its lifetime, so
    // past four concurrent swarms arrivals queue — the knee's mechanism.
    let slots = (pool / 4).max(2);
    let size_lo = slots.saturating_sub(2).max(2);
    let block = opts.block_bytes_or(16);
    let file_hi = opts.file_bytes_or(2.0, 8.0).max(block as u64);
    let file_lo = (file_hi / 2).max(block as u64);
    let horizon = service_horizon(opts);

    let rng = RngFactory::new(opts.seed);
    let topo = topology::shared_core_mesh(pool, mbps(16.0), 0.0, &rng);
    let core = topo.core_link(NodeId(0), NodeId(1));
    let template = Config::new(FileSpec::new(file_hi, block));
    let mut runner = build_service_runner(topo, &template, &rng);
    let mut source = ServiceSwarms::new(template, &rng, (size_lo, slots), (file_lo, file_hi));
    let cfg = ServiceConfig {
        horizon: SimTime::from_secs_f64(horizon),
        warmup: SimTime::from_secs_f64(0.15 * horizon),
        tick: SimDuration::from_secs_f64(opts.tick.unwrap_or(horizon / 60.0)),
        segment_slots: slots,
        max_arrivals: 256,
        core: Some(core),
    };
    let gen = ArrivalGen::Poisson {
        rate_per_sec: load_per_1000s / 1000.0,
    };
    run_service(&mut runner, &cfg, &gen, &mut source, &rng)
}

/// Figure 21 (beyond the paper): the open-system offered-load sweep. Swarms
/// arrive by a Poisson process over one shared 16 Mbps core, each claiming a
/// segment of the slot pool for its lifetime; the sweep raises the arrival
/// rate until segments and core saturate. Sustained goodput (measured past
/// the warmup boundary) climbs with offered load and then flattens at the
/// service capacity, while completion latency — measured from *arrival*, so
/// segment-queueing delay counts — turns the knee upward.
pub fn fig21(opts: &CommonOpts) -> Figure {
    let pool = opts.nodes_or(48, 96);
    let mut fig = Figure::new(
        "Figure 21",
        format!(
            "open-system offered-load sweep over a shared 16 Mbps core \
             ({pool}-slot pool, {:.0} s horizon)",
            service_horizon(opts)
        ),
    );
    fig.x_label = "offered load (swarm arrivals per 1000 s)".into();
    fig.y_label = "goodput (Mbps) / latency (s)".into();

    let labels = service_points("fig21").expect("fig21 is a service scenario");
    let mut goodput = Vec::new();
    let mut p50 = Vec::new();
    let mut p90 = Vec::new();
    let mut completed = Vec::new();
    let mut backlog = Vec::new();
    for (i, label) in labels.iter().enumerate() {
        let report = run_service_point("fig21", i, opts).expect("index in range");
        let x = FIG21_LOADS[i];
        let horizon = report.horizon_secs;
        goodput.push((x, report.sustained_goodput_bps / 1e6));
        p50.push((x, report.latency_quantile(0.5).unwrap_or(horizon)));
        p90.push((x, report.latency_quantile(0.9).unwrap_or(horizon)));
        completed.push((x, report.completed as f64));
        backlog.push((x, (report.in_flight_at_end + report.queued_at_end) as f64));
        fig.note(format!(
            "{label}: {} arrivals, {} admitted, {} completed, {} in flight + {} queued \
             at the horizon, peak concurrency {}, sustained {:.2} Mbps",
            report.arrivals,
            report.admitted,
            report.completed,
            report.in_flight_at_end,
            report.queued_at_end,
            report.max_concurrent,
            report.sustained_goodput_bps / 1e6,
        ));
    }
    fig.push(Series::xy("sustained goodput (Mbps)", goodput));
    fig.push(Series::xy("p50 completion latency since arrival (s)", p50));
    fig.push(Series::xy("p90 completion latency since arrival (s)", p90));
    fig.push(Series::xy("swarms completed in the window", completed));
    fig.push(Series::xy("backlog at the horizon (swarms)", backlog));
    fig.note(
        "the knee: past the pool's service capacity goodput flattens while \
         arrival-to-completion latency inflates with segment queueing"
            .to_string(),
    );
    fig
}

/// Fig22's swarm source: cohort 0 is the warm swarm (everyone present at
/// admission), every later cohort is a flash crowd (a handful of slots
/// active at admission, the rest joining over a window). `build` is shared —
/// the flash shape only changes *when* slots activate, not what they run.
struct WarmThenFlash {
    warm: ServiceSwarms,
    flash: ServiceSwarms,
}

impl SwarmSource<bullet_prime::BulletPrimeNode> for WarmThenFlash {
    fn shape(&mut self, index: usize) -> SwarmShape {
        if index == 0 {
            self.warm.shape(index)
        } else {
            self.flash.shape(index)
        }
    }

    fn build(&mut self, base: NodeId, shape: &SwarmShape) -> Vec<bullet_prime::BulletPrimeNode> {
        self.warm.build(base, shape)
    }
}

/// The fig22 service run: two half-pool swarms over a shared 16 Mbps core —
/// one warm (arrives at t = 0, fully present), one flash crowd (arrives 30 s
/// in, while the warm swarm is mid-transfer, with 4 slots active and the
/// rest joining uniformly over a 120 s window; ~10³ joiners at `--full`
/// scale).
fn fig22_report(opts: &CommonOpts) -> ServiceReport {
    let pool = opts.nodes_or(32, 2016);
    let slots = (pool / 2).max(2);
    let block = opts.block_bytes_or(16);
    let file = opts.file_bytes_or(4.0, 8.0).max(block as u64);
    let horizon = service_horizon(opts);

    let rng = RngFactory::new(opts.seed);
    let topo = topology::shared_core_mesh(pool, mbps(16.0), 0.0, &rng);
    let core = topo.core_link(NodeId(0), NodeId(1));
    let template = Config::new(FileSpec::new(file, block));
    let mut runner = build_service_runner(topo, &template, &rng);
    let warm = ServiceSwarms::new(template.clone(), &rng, (slots, slots), (file, file));
    let mut flash = ServiceSwarms::new(template, &rng, (slots, slots), (file, file));
    flash.flash = Some(FlashShape {
        initial: 4.min(slots),
        window_secs: 120.0,
    });
    let mut source = WarmThenFlash { warm, flash };
    let cfg = ServiceConfig {
        horizon: SimTime::from_secs_f64(horizon),
        // No warmup: fig22 is about the transient itself, so the goodput
        // window covers the whole horizon including the flash landing.
        warmup: SimTime::ZERO,
        tick: SimDuration::from_secs_f64(opts.tick.unwrap_or(horizon / 90.0)),
        segment_slots: slots,
        max_arrivals: 2,
        core: Some(core),
    };
    let gen = ArrivalGen::Trace(vec![SimTime::ZERO, SimTime::from_secs_f64(30.0)]);
    run_service(&mut runner, &cfg, &gen, &mut source, &rng)
}

/// Figure 22 (beyond the paper): a flash crowd arriving beside a warm swarm.
/// The service samples show the pool-wide goodput and core occupancy as the
/// joiner wave lands mid-transfer of the warm swarm, and the per-cohort
/// percentiles compare the warm swarm's completion latency against the flash
/// crowd's (which includes the join stagger).
pub fn fig22(opts: &CommonOpts) -> Figure {
    let report = fig22_report(opts);
    let pool = opts.nodes_or(32, 2016);
    let mut fig = Figure::new(
        "Figure 22",
        format!(
            "flash crowd vs a warm swarm on a shared 16 Mbps core \
             ({pool}-slot pool, {} joiners in the wave)",
            (pool / 2).max(2).saturating_sub(4.min((pool / 2).max(2))),
        ),
    );
    fig.x_label = "time (s)".into();
    fig.y_label = "goodput (Mbps) / swarms / utilisation (%)".into();

    let mut goodput = Vec::new();
    let mut in_flight = Vec::new();
    let mut utilisation = Vec::new();
    for s in &report.samples {
        goodput.push((s.time_secs, s.goodput_bps / 1e6));
        in_flight.push((s.time_secs, s.in_flight as f64));
        utilisation.push((s.time_secs, s.core_utilisation * 100.0));
    }
    fig.push(Series::xy("service goodput (Mbps)", goodput));
    fig.push(Series::xy("swarms in flight", in_flight));
    fig.push(Series::xy("core-link utilisation (%)", utilisation));

    // Cohort tags start at 1 (0 marks a slot outside any service cohort) and
    // follow admission order, so the warm swarm — admitted at t = 0, before
    // the flash — always carries tag 1, wherever it lands in reap order.
    for c in &report.cohorts {
        let who = if c.cohort == 1 {
            "warm swarm"
        } else {
            "flash crowd"
        };
        fig.note(format!(
            "{who} (cohort {}): {} slots, arrived {:.0}s, completion since arrival \
             p50 {:.1}s / p90 {:.1}s / p99 {:.1}s",
            c.cohort, c.size, c.arrival_secs, c.p50_secs, c.p90_secs, c.p99_secs,
        ));
    }
    if report.completed < report.admitted {
        fig.note(format!(
            "{} of {} swarms still in flight at the {:.0} s horizon",
            report.admitted - report.completed,
            report.admitted,
            report.horizon_secs,
        ));
    }
    fig.note(format!(
        "sustained goodput past warmup: {:.2} Mbps; peak concurrency {}",
        report.sustained_goodput_bps / 1e6,
        report.max_concurrent,
    ));
    fig
}

/// Multi-line human summary of a [`ServiceReport`] — shared by `lab serve`
/// and `diagnose --service`.
pub fn service_summary(report: &ServiceReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "horizon {:.0}s (warmup {:.0}s): {} arrivals, {} admitted, {} completed, \
         {} in flight + {} queued at the horizon",
        report.horizon_secs,
        report.warmup_secs,
        report.arrivals,
        report.admitted,
        report.completed,
        report.in_flight_at_end,
        report.queued_at_end,
    );
    let _ = writeln!(
        out,
        "sustained goodput {:.3} Mbps ({} useful bytes in the measurement window), \
         peak concurrency {}, {} events",
        report.sustained_goodput_bps / 1e6,
        report.steady_useful_bytes,
        report.max_concurrent,
        report.events,
    );
    if let (Some(p50), Some(p90), Some(p99)) = (
        report.latency_quantile(0.5),
        report.latency_quantile(0.9),
        report.latency_quantile(0.99),
    ) {
        let _ = writeln!(
            out,
            "completion latency since arrival: p50 {p50:.1}s / p90 {p90:.1}s / p99 {p99:.1}s"
        );
    }
    let shown = report.cohorts.len().min(12);
    for c in &report.cohorts[..shown] {
        let _ = writeln!(
            out,
            "  cohort {:>3}: {:>3} slots, {:>8} B file, arrived {:>7.1}s, \
             admitted {:>7.1}s, p50 {:>7.1}s, p90 {:>7.1}s",
            c.cohort, c.size, c.file_bytes, c.arrival_secs, c.admit_secs, c.p50_secs, c.p90_secs,
        );
    }
    if report.cohorts.len() > shown {
        let _ = writeln!(out, "  ... {} more cohorts", report.cohorts.len() - shown);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CommonOpts {
        CommonOpts {
            nodes: Some(8),
            file_mb: Some(0.25),
            time_limit: 1800.0,
            ..CommonOpts::default()
        }
    }

    #[test]
    fn service_points_cover_exactly_the_open_system_scenarios() {
        assert_eq!(service_points("fig21").unwrap().len(), FIG21_LOADS.len());
        assert_eq!(service_points("fig22").unwrap().len(), 1);
        assert!(service_points("fig13").is_none());
        assert!(run_service_point("fig21", FIG21_LOADS.len(), &tiny()).is_none());
        assert!(run_service_point("fig13", 0, &tiny()).is_none());
    }

    #[test]
    fn fig21_top_load_reaches_open_system_concurrency() {
        // The acceptance bar: the offered-load sweep's top point must be a
        // genuinely open system — many arrivals over the shared core, with
        // overlapping swarms.
        let opts = CommonOpts {
            nodes: Some(16),
            file_mb: Some(0.25),
            time_limit: 1500.0,
            ..CommonOpts::default()
        };
        let report = run_service_point("fig21", FIG21_LOADS.len() - 1, &opts).unwrap();
        assert!(
            report.admitted >= 8,
            "top load must admit at least 8 swarms: {report:?}"
        );
        assert!(
            report.max_concurrent >= 2,
            "swarms must overlap on the shared core: {report:?}"
        );
        assert!(report.completed > 0, "{report:?}");
        assert!(report.sustained_goodput_bps > 0.0, "{report:?}");
        let summary = service_summary(&report);
        assert!(summary.contains("sustained goodput"));
        assert!(summary.contains("cohort"));
    }

    #[test]
    fn fig22_flash_cohort_shapes_differ_from_the_warm_swarm() {
        let opts = CommonOpts {
            nodes: Some(12),
            file_mb: Some(0.25),
            time_limit: 1800.0,
            ..CommonOpts::default()
        };
        let report = run_service_point("fig22", 0, &opts).unwrap();
        assert_eq!(report.arrivals, 2, "{report:?}");
        assert_eq!(report.admitted, 2, "warm + flash both admitted: {report:?}");
        assert!(!report.samples.is_empty());
        // Cohorts are reported in reap order; the warm swarm is the one
        // admitted first and always carries tag 1.
        let warm = report.cohorts.iter().find(|c| c.cohort == 1).unwrap();
        let flash = report.cohorts.iter().find(|c| c.cohort != 1).unwrap();
        assert_eq!(warm.arrival_secs, 0.0);
        assert!(flash.arrival_secs > 0.0);
        assert_eq!(warm.size, flash.size, "both swarms span half the pool");
    }

    #[test]
    fn fig04_has_bounds_and_all_systems() {
        let fig = fig04(&tiny());
        assert_eq!(fig.series.len(), 6);
        assert!(fig.series[0].label.contains("Physical"));
        assert!(fig
            .series
            .iter()
            .any(|s| s.label.starts_with("BulletPrime")));
        assert!(!fig.notes.is_empty());
        // The physical bound must be the fastest curve.
        let phys = fig.series[0].max_x();
        for s in &fig.series[2..] {
            assert!(s.max_x() >= phys, "{} beat the physical limit", s.label);
        }
    }

    #[test]
    fn fig05ts_produces_time_series_with_probe_samples() {
        let mut opts = tiny();
        opts.tick = Some(1.0);
        let fig = fig05ts(&opts);
        assert_eq!(fig.series.len(), 5);
        let mean = &fig.series[0];
        assert!(mean.points.len() >= 3, "expected several probe samples");
        // Time axis starts at 0 and is strictly increasing on the tick.
        assert_eq!(mean.points[0].0, 0.0);
        for w in mean.points.windows(2) {
            assert!((w[1].0 - w[0].0 - 1.0).abs() < 1e-9, "1 s tick expected");
        }
        // Somebody downloaded something at some point.
        assert!(mean.points.iter().any(|&(_, y)| y > 0.0));
        // All five series share the sampling instants.
        for s in &fig.series[1..] {
            assert_eq!(s.points.len(), mean.points.len());
        }
    }

    #[test]
    fn fig06_covers_all_strategies() {
        let fig = fig06(&tiny());
        assert_eq!(fig.series.len(), 4);
    }

    #[test]
    fn fig10_and_12_have_dynamic_last() {
        let mut opts = tiny();
        opts.file_mb = Some(0.25);
        let f10 = fig10(&opts);
        assert!(f10.series.last().unwrap().label.contains("dyn"));
        let f12 = fig12(&opts);
        assert!(f12.series.last().unwrap().label.contains("dyn"));
        assert_eq!(
            f12.series[0].points.len(),
            7,
            "cascade topology has 7 receivers"
        );
    }

    #[test]
    fn fig13_produces_interarrival_series_and_overage_note() {
        let fig = fig13(&tiny());
        assert_eq!(fig.series.len(), 1);
        assert!(!fig.series[0].points.is_empty());
        assert!(fig.notes[0].contains("overage"));
    }

    #[test]
    fn fig15_orders_shotgun_before_rsync() {
        // Shotgun's advantage needs a non-trivial update size and client count
        // (on a tiny 1 MB push the per-session rsync overhead is negligible).
        let mut opts = tiny();
        opts.nodes = Some(16);
        opts.file_mb = Some(4.0);
        let fig = fig15(&opts);
        assert_eq!(fig.series.len(), 6);
        let shotgun = fig.series[1].max_x();
        let rsync2 = fig.series[2].max_x();
        assert!(
            shotgun < rsync2,
            "Shotgun ({shotgun}) should beat 2-way rsync ({rsync2})"
        );
    }
}
