//! Minimal command-line options shared by every figure binary.
//!
//! The binaries default to a reduced scale (fewer nodes, a smaller file) so
//! the entire figure suite runs in minutes; `--full` switches to the paper's
//! workload sizes. No external argument-parsing crate is used — the option
//! surface is tiny and fixed.

/// Options accepted by every `figNN` binary.
#[derive(Debug, Clone)]
pub struct CommonOpts {
    /// Number of overlay participants (including the source).
    pub nodes: Option<usize>,
    /// File size in MiB.
    pub file_mb: Option<f64>,
    /// Block size in KiB.
    pub block_kb: Option<u32>,
    /// Experiment seed.
    pub seed: u64,
    /// Use the paper's full workload sizes.
    pub full: bool,
    /// Print every CDF point rather than just the summary table.
    pub raw: bool,
    /// Also emit the figure as JSON to this path.
    pub json: Option<String>,
    /// Virtual-time limit in seconds.
    pub time_limit: f64,
    /// Probe sampling tick in virtual seconds (time-series scenarios only).
    pub tick: Option<f64>,
}

impl Default for CommonOpts {
    fn default() -> Self {
        CommonOpts {
            nodes: None,
            file_mb: None,
            block_kb: None,
            seed: 20050410,
            full: false,
            raw: false,
            json: None,
            time_limit: 7200.0,
            tick: None,
        }
    }
}

impl CommonOpts {
    /// Parses options from an iterator of arguments (excluding `argv[0]`).
    ///
    /// # Errors
    ///
    /// Returns a usage string on unknown flags or malformed values.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut opts = CommonOpts::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value_for = |name: &str| -> Result<String, String> {
                it.next()
                    .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
            };
            match arg.as_str() {
                "--nodes" => opts.nodes = Some(parse_num(&value_for("--nodes")?)?),
                "--mb" => opts.file_mb = Some(parse_num(&value_for("--mb")?)?),
                "--block-kb" => opts.block_kb = Some(parse_num(&value_for("--block-kb")?)?),
                "--seed" => opts.seed = parse_num(&value_for("--seed")?)?,
                "--time-limit" => opts.time_limit = parse_num(&value_for("--time-limit")?)?,
                "--tick" => {
                    let tick: f64 = parse_num(&value_for("--tick")?)?;
                    if tick.is_nan() || tick <= 0.0 {
                        return Err(format!("--tick must be positive, got {tick}\n{USAGE}"));
                    }
                    opts.tick = Some(tick);
                }
                "--json" => opts.json = Some(value_for("--json")?),
                "--full" => opts.full = true,
                "--raw" => opts.raw = true,
                "--help" | "-h" => return Err(USAGE.to_string()),
                other => return Err(format!("unknown option {other}\n{USAGE}")),
            }
        }
        Ok(opts)
    }

    /// Parses from the process arguments, exiting with a usage message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// Node count to use given a reduced default and the paper's value.
    pub fn nodes_or(&self, reduced: usize, paper: usize) -> usize {
        self.nodes
            .unwrap_or(if self.full { paper } else { reduced })
    }

    /// File size (bytes) to use given a reduced default and the paper's value
    /// in MiB.
    pub fn file_bytes_or(&self, reduced_mb: f64, paper_mb: f64) -> u64 {
        let mb = self
            .file_mb
            .unwrap_or(if self.full { paper_mb } else { reduced_mb });
        (mb * 1024.0 * 1024.0) as u64
    }

    /// Block size (bytes) to use given the paper's value in KiB.
    pub fn block_bytes_or(&self, paper_kb: u32) -> u32 {
        self.block_kb.unwrap_or(paper_kb) * 1024
    }
}

const USAGE: &str = "usage: figNN [--nodes N] [--mb M] [--block-kb K] [--seed S] \
[--time-limit SECS] [--tick SECS] [--full] [--raw] [--json PATH]";

fn parse_num<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("could not parse '{s}'\n{USAGE}"))
}

/// The whole of a figure binary: parse the shared options from the process
/// arguments, build the figure, emit it. Every `figNN` binary is a one-line
/// wrapper around this (via the `bullet_lab` scenario registry), so the
/// argument surface and output handling cannot drift between figures.
pub fn figure_main(figure: impl FnOnce(&CommonOpts) -> crate::cdf::Figure) {
    let opts = CommonOpts::from_env();
    emit(&figure(&opts), &opts);
}

/// Writes a figure to stdout and optionally to a JSON file, honouring the
/// shared options.
pub fn emit(figure: &crate::cdf::Figure, opts: &CommonOpts) {
    print!("{}", figure.render_text(opts.raw));
    if let Some(path) = &opts.json {
        if let Err(e) = std::fs::write(path, figure.to_json()) {
            eprintln!("failed to write {path}: {e}");
        } else {
            eprintln!("wrote {path}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonOpts, String> {
        CommonOpts::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_reduced_scale() {
        let o = parse(&[]).unwrap();
        assert!(!o.full);
        assert_eq!(o.nodes_or(40, 100), 40);
        assert_eq!(o.file_bytes_or(10.0, 100.0), 10 * 1024 * 1024);
        assert_eq!(o.block_bytes_or(16), 16 * 1024);
    }

    #[test]
    fn full_switches_to_paper_scale() {
        let o = parse(&["--full"]).unwrap();
        assert_eq!(o.nodes_or(40, 100), 100);
        assert_eq!(o.file_bytes_or(10.0, 100.0), 100 * 1024 * 1024);
    }

    #[test]
    fn explicit_values_override_everything() {
        let o = parse(&[
            "--full",
            "--nodes",
            "12",
            "--mb",
            "2.5",
            "--block-kb",
            "8",
            "--seed",
            "9",
        ])
        .unwrap();
        assert_eq!(o.nodes_or(40, 100), 12);
        assert_eq!(o.file_bytes_or(10.0, 100.0), (2.5 * 1024.0 * 1024.0) as u64);
        assert_eq!(o.block_bytes_or(16), 8192);
        assert_eq!(o.seed, 9);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--nodes"]).is_err());
        assert!(parse(&["--nodes", "abc"]).is_err());
    }

    #[test]
    fn tick_must_be_positive() {
        assert_eq!(parse(&["--tick", "2.5"]).unwrap().tick, Some(2.5));
        // Zero, negative and NaN ticks are usage errors, not runner panics.
        assert!(parse(&["--tick", "0"]).is_err());
        assert!(parse(&["--tick", "-1"]).is_err());
        assert!(parse(&["--tick", "NaN"]).is_err());
    }
}
