//! Emits a small JSON performance record (`BENCH_events.json`) for a
//! fixed-seed, dynamics-heavy Figure-5-style run, so successive PRs have a
//! perf trajectory to compare against: the number of simulator events
//! processed is a deterministic proxy for scheduler efficiency, the heap
//! allocation count is a deterministic proxy for per-event overhead, and the
//! wall-clock time tracks real cost on the machine that ran CI.
//!
//! The same workload then runs a **second** time with a counting trace sink
//! and the wall-clock profiler enabled. The record carries (a) whether the
//! traced run's canonical [`netsim::RunReport`] was byte-identical to the
//! untraced one — the observability layer's "tracing perturbs nothing"
//! contract — and (b) the traced/untraced wall-clock ratio, which ci.sh
//! gates at ≤ 1.5×.
//!
//! Usage: `bench_events [--out PATH]` (default `BENCH_events.json` in the
//! current directory). All workload parameters are fixed on purpose — the
//! point is comparability across commits, not configurability.

use std::time::Instant;

use bullet_bench::alloc_track::{self, CountingAlloc};
use bullet_bench::systems::paper_dynamic_schedule;
use bullet_bench::views::{rounded, EventsRecord, TraceCheck};
use bullet_prime::Config;
use desim::{RngFactory, SimDuration};
use dissem_codec::FileSpec;
use netsim::{topology, CountingSink, RunReport};

// Counts heap allocations (a deterministic proxy for the cost of the
// runner's dispatch path — stable to within a few allocations across runs)
// and the live-bytes high-water mark (the portable stand-in for peak RSS).
// Both are informational here; `bench_scale` gates the scaling trajectory.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Fixed workload: the reduced Figure 5 shape (synthetic correlated
/// bandwidth decreases every 20 s on a lossy mesh), which is the most
/// reprice-heavy run in the suite.
const SEED: u64 = 20050410;
const NODES: usize = 30;
const FILE_BYTES: u64 = 16 * 1024 * 1024;
const BLOCK_BYTES: u32 = 16 * 1024;
const TIME_LIMIT_SECS: u64 = 7_200;

/// Runs the fixed workload once, optionally traced + profiled, returning the
/// report, its wall-clock seconds, and the allocation count of the runner
/// build + run (topology and schedule construction excluded, matching the
/// historical `run_allocs` measurement window).
fn run_workload(traced: bool) -> (RunReport, f64, u64) {
    let rng = RngFactory::new(SEED);
    let topo = topology::modelnet_mesh(NODES, 0.03, &rng);
    let cfg = Config::new(FileSpec::new(FILE_BYTES, BLOCK_BYTES));
    let schedule = paper_dynamic_schedule(NODES, TIME_LIMIT_SECS as f64, &rng);

    let started = Instant::now();
    let allocs_before = alloc_track::allocs();
    let mut runner = bullet_prime::build_runner(topo, &cfg, &rng);
    if traced {
        runner.set_trace_sink(Box::new(CountingSink::new()));
        runner.enable_profiling(10.0);
    }
    for (at, batch) in &schedule {
        runner.schedule_link_change(*at, batch.clone());
    }
    let report = runner.run(SimDuration::from_secs(TIME_LIMIT_SECS));
    let wall = started.elapsed().as_secs_f64();
    let allocs = alloc_track::allocs() - allocs_before;
    if traced {
        if let Some(profile) = runner.take_profile() {
            eprintln!("traced-run wall-clock attribution:");
            for line in profile.lines() {
                eprintln!("  {line}");
            }
        }
    }
    (report, wall, allocs)
}

fn main() {
    let mut out_path = String::from("BENCH_events.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown option {other}\nusage: bench_events [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    alloc_track::reset_peak();
    let (report, wall, allocs) = run_workload(false);
    let peak_bytes = alloc_track::peak_bytes();

    // Second run, traced + profiled: same seed, same schedule. Canonical
    // identity between the two reports is the observability layer's
    // perturbs-nothing contract (ci.sh fails on a mismatch); the wall-clock
    // ratio is its overhead contract (ci.sh gates ≤ 1.5×).
    let (traced_report, traced_wall, _) = run_workload(true);
    let canonical_identical = traced_report.canonical() == report.canonical();
    if !canonical_identical {
        eprintln!("WARNING: traced run diverged from the untraced run");
    }

    // `events_processed`, `run_allocs`, `peak_alloc_bytes`,
    // `virtual_end_secs` and `metrics` are deterministic for a given binary;
    // wall-clock fields are whatever the machine that last ran CI measured —
    // committed anyway so perf PRs leave a real time trajectory next to the
    // event counts (compare deltas on one machine, not absolute values
    // across machines).
    let record = EventsRecord {
        benchmark: "fig05-style dynamics-heavy run",
        seed: SEED,
        nodes: NODES,
        file_bytes: FILE_BYTES,
        block_bytes: BLOCK_BYTES,
        events_processed: report.events,
        run_allocs: allocs,
        peak_alloc_bytes: peak_bytes,
        wall_clock_secs: rounded(wall, 3),
        virtual_end_secs: rounded(report.end_time.as_secs_f64(), 6),
        stop_reason: format!("{:?}", report.reason),
        metrics: report.metrics.clone(),
        trace: TraceCheck {
            trace_records: traced_report.trace_records,
            trace_wall_clock_secs: rounded(traced_wall, 3),
            trace_overhead_ratio: rounded(traced_wall / wall.max(1e-9), 3),
            canonical_identical,
        },
    };
    let mut json = serde_json::to_string_pretty(&record).expect("record serializes");
    json.push('\n');
    print!("{json}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
