//! Emits a small JSON performance record (`BENCH_events.json`) for a
//! fixed-seed, dynamics-heavy Figure-5-style run, so successive PRs have a
//! perf trajectory to compare against: the number of simulator events
//! processed is a deterministic proxy for scheduler efficiency, the heap
//! allocation count is a deterministic proxy for per-event overhead, and the
//! wall-clock time tracks real cost on the machine that ran CI.
//!
//! Usage: `bench_events [--out PATH]` (default `BENCH_events.json` in the
//! current directory). All workload parameters are fixed on purpose — the
//! point is comparability across commits, not configurability.

use std::time::Instant;

use bullet_bench::alloc_track::{self, CountingAlloc};
use bullet_bench::systems::paper_dynamic_schedule;
use bullet_prime::Config;
use desim::{RngFactory, SimDuration};
use dissem_codec::FileSpec;
use netsim::topology;

// Counts heap allocations (a deterministic proxy for the cost of the
// runner's dispatch path — stable to within a few allocations across runs)
// and the live-bytes high-water mark (the portable stand-in for peak RSS).
// Both are informational here; `bench_scale` gates the scaling trajectory.
#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Fixed workload: the reduced Figure 5 shape (synthetic correlated
/// bandwidth decreases every 20 s on a lossy mesh), which is the most
/// reprice-heavy run in the suite.
const SEED: u64 = 20050410;
const NODES: usize = 30;
const FILE_BYTES: u64 = 16 * 1024 * 1024;
const BLOCK_BYTES: u32 = 16 * 1024;
const TIME_LIMIT_SECS: u64 = 7_200;

fn main() {
    let mut out_path = String::from("BENCH_events.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown option {other}\nusage: bench_events [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let rng = RngFactory::new(SEED);
    let topo = topology::modelnet_mesh(NODES, 0.03, &rng);
    let cfg = Config::new(FileSpec::new(FILE_BYTES, BLOCK_BYTES));
    let schedule = paper_dynamic_schedule(NODES, TIME_LIMIT_SECS as f64, &rng);

    let started = Instant::now();
    let allocs_before = alloc_track::allocs();
    alloc_track::reset_peak();
    let mut runner = bullet_prime::build_runner(topo, &cfg, &rng);
    for (at, batch) in &schedule {
        runner.schedule_link_change(*at, batch.clone());
    }
    let report = runner.run(SimDuration::from_secs(TIME_LIMIT_SECS));
    let wall = started.elapsed().as_secs_f64();
    let allocs = alloc_track::allocs() - allocs_before;
    let peak_bytes = alloc_track::peak_bytes();

    // `events_processed`, `run_allocs`, `peak_alloc_bytes` and
    // `virtual_end_secs` are deterministic for a given binary;
    // `wall_clock_secs` is whatever the machine that last ran CI measured —
    // committed anyway so perf PRs leave a real time trajectory next to the
    // event counts (compare deltas on one machine, not absolute values
    // across machines).
    let json = format!(
        "{{\n  \"benchmark\": \"fig05-style dynamics-heavy run\",\n  \"seed\": {SEED},\n  \"nodes\": {NODES},\n  \"file_bytes\": {FILE_BYTES},\n  \"block_bytes\": {BLOCK_BYTES},\n  \"events_processed\": {},\n  \"run_allocs\": {allocs},\n  \"peak_alloc_bytes\": {peak_bytes},\n  \"wall_clock_secs\": {wall:.3},\n  \"virtual_end_secs\": {:.6},\n  \"stop_reason\": \"{:?}\"\n}}\n",
        report.events,
        report.end_time.as_secs_f64(),
        report.reason,
    );
    print!("{json}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
