//! Emits the emulator scaling record (`BENCH_scale.json`): the fig20
//! workload — a join-only Bullet′ swarm on the O(n) uniform core — at each
//! swarm size, recording events processed, events per wall-clock second,
//! the live-heap high-water mark (the portable stand-in for peak RSS, see
//! `bullet_bench::alloc_track`) and wall-clock seconds per N.
//!
//! ci.sh gates the N = 1 000 point: a >10% drop in events/sec against the
//! committed baseline fails CI. The larger points are recorded
//! informationally so the trajectory to 10⁴ nodes stays visible without
//! making every regression at scale a hard failure on a noisy machine.
//!
//! Usage: `bench_scale [--nodes N,M,..] [--out PATH]` (defaults: the full
//! 1 000 / 5 000 / 10 000 trajectory, `BENCH_scale.json` in the current
//! directory). The file and block sizes are fixed on purpose — the point is
//! comparability across commits, not configurability.

use std::time::Instant;

use bullet_bench::alloc_track::{self, CountingAlloc};
use bullet_bench::views::{ScalePoint, ScaleRecord};
use bullet_prime::Config;
use desim::{RngFactory, SimDuration};
use dissem_codec::FileSpec;
use netsim::topology;

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Fixed workload: the fig20 shape — 2 MiB file in 16 KiB blocks (128
/// blocks), everyone present from t = 0, no losses beyond the uniform
/// core's, run to completion.
const SEED: u64 = 20050410;
const FILE_BYTES: u64 = 2 * 1024 * 1024;
const BLOCK_BYTES: u32 = 16 * 1024;
const TIME_LIMIT_SECS: u64 = 7_200;

fn main() {
    let mut out_path = String::from("BENCH_scale.json");
    let mut sizes: Vec<usize> = vec![1_000, 5_000, 10_000];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} requires a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out_path = value_for("--out"),
            "--nodes" => {
                sizes = value_for("--nodes")
                    .split(',')
                    .map(|p| {
                        p.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad --nodes entry '{p}'");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            other => {
                eprintln!(
                    "unknown option {other}\nusage: bench_scale [--nodes N,M,..] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut points = Vec::new();
    for &n in &sizes {
        // Each point gets its own factory so the record for a given N never
        // depends on which other Ns ran in the same invocation.
        let rng = RngFactory::new(SEED);
        let topo = topology::uniform_swarm(n, &rng);
        let cfg = Config::new(FileSpec::new(FILE_BYTES, BLOCK_BYTES));
        let started = Instant::now();
        alloc_track::reset_peak();
        let mut runner = bullet_prime::build_runner(topo, &cfg, &rng);
        let report = runner.run(SimDuration::from_secs(TIME_LIMIT_SECS));
        let wall = started.elapsed().as_secs_f64();
        let peak = alloc_track::peak_bytes();
        eprintln!(
            "N={n}: {} events in {wall:.2}s wall ({:.0} events/s, peak heap {:.1} MiB)",
            report.events,
            report.events as f64 / wall.max(1e-9),
            peak as f64 / (1024.0 * 1024.0),
        );
        points.push(ScalePoint::from_report(n, &report, wall, peak));
    }

    // `events_processed`, `peak_alloc_bytes` and `virtual_end_secs` are
    // deterministic for a given binary; `events_per_sec` and
    // `wall_clock_secs` are whatever the machine that last ran CI measured —
    // committed anyway so scale PRs leave a real throughput trajectory
    // (compare deltas on one machine, not absolute values across machines).
    let record = ScaleRecord {
        benchmark: "fig20-style join-only swarm on the uniform core",
        seed: SEED,
        file_bytes: FILE_BYTES,
        block_bytes: BLOCK_BYTES,
        points,
    };
    let mut json = serde_json::to_string_pretty(&record).expect("record serializes");
    json.push('\n');
    print!("{json}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
