//! Measures the rateless-code figures quoted in §2.2 of the paper: the
//! reception overhead of the LT codes, the degree-1 block probability, and
//! the decode progress after receiving exactly `k` encoded blocks.

use dissem_codec::{lt, LtDecoder, LtEncoder, RobustSoliton};
use rand::{Rng, SeedableRng};

fn main() {
    let ks = [1_000u32, 3_200, 6_400];
    let block = 64usize;
    println!(
        "{:>8} {:>12} {:>14} {:>18}",
        "k", "overhead", "p(degree=1)", "progress@k"
    );
    for &k in &ks {
        let trials = 5;
        let mut overhead = 0.0;
        for t in 0..trials {
            overhead += lt::measure_reception_overhead(k, block, 1000 + t);
        }
        overhead /= f64::from(trials as u32);

        let dist = RobustSoliton::new(k, 0.05, 0.05);

        // Decode progress after exactly k received blocks.
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..k as usize * block).map(|_| rng.gen()).collect();
        let mut enc = LtEncoder::new(&data, block, 99);
        let mut dec = LtDecoder::new(k, block);
        for _ in 0..k {
            dec.push(&enc.next_block());
        }
        println!(
            "{:>8} {:>11.1}% {:>14.4} {:>17.1}%",
            k,
            overhead * 100.0,
            dist.degree_one_probability(),
            dec.progress() * 100.0
        );
    }
    println!("paper (§2.2): ~4% encode/decode overhead; ~30% of the file reconstructable at k received blocks; degree-1 probability ~0.01");
}
