//! Regenerates Figure 4 of the paper. Run with `--help` for options.

fn main() {
    let opts = bullet_bench::CommonOpts::from_env();
    let figure = bullet_bench::experiments::fig04(&opts);
    bullet_bench::emit(&figure, &opts);
}
