//! Regenerates the flash-crowd experiment (Figure 17, beyond the paper).
//! Run with `--help` for options.

fn main() {
    let opts = bullet_bench::CommonOpts::from_env();
    let figure = bullet_bench::experiments::fig17(&opts);
    bullet_bench::emit(&figure, &opts);
}
