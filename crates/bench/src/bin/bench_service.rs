//! Emits a small JSON performance record (`BENCH_service.json`) for the
//! reduced fixed-seed fig21 offered-load sweep, so successive PRs have a
//! steady-state trajectory to compare against: the sustained goodput at the
//! top offered load is the open-system figure of merit (ci.sh fails if it
//! regresses by more than 10%), and the admission/queue counters plus the
//! per-load completion percentiles record how the service knee moves.
//!
//! Every field except `wall_clock_secs` is deterministic for a given binary
//! — each point is one seeded `netsim::run_service` simulation.
//!
//! Usage: `bench_service [--out PATH]` (default `BENCH_service.json` in the
//! current directory). All workload parameters are fixed on purpose — the
//! point is comparability across commits, not configurability.

use std::time::Instant;

use bullet_bench::experiments::{run_service_point, FIG21_LOADS};
use bullet_bench::views::{ServicePoint, ServiceRecord};
use bullet_bench::CommonOpts;

/// Fixed workload: the fig21 sweep at a reduced pool and horizon (the
/// scenario's own reduced defaults are sized for figure quality; this record
/// is re-generated on every CI run, so it trims the horizon further).
const SEED: u64 = 20050410;
const POOL_NODES: usize = 48;
const FILE_MB: f64 = 2.0;
const HORIZON_SECS: f64 = 1_200.0;

fn main() {
    let mut out_path = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a value");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown option {other}\nusage: bench_service [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let opts = CommonOpts {
        seed: SEED,
        nodes: Some(POOL_NODES),
        file_mb: Some(FILE_MB),
        time_limit: HORIZON_SECS,
        ..CommonOpts::default()
    };
    let mut points = Vec::new();
    for (i, &load) in FIG21_LOADS.iter().enumerate() {
        let started = Instant::now();
        let report = run_service_point("fig21", i, &opts).expect("fig21 load index");
        let wall = started.elapsed().as_secs_f64();
        eprintln!(
            "load {load}/1000s: {} admitted, {} completed, {:.3} Mbps sustained, {wall:.3}s wall",
            report.admitted,
            report.completed,
            report.sustained_goodput_bps / 1e6,
        );
        points.push(ServicePoint::from_report(load, &report, wall));
    }

    let record = ServiceRecord {
        benchmark: "fig21-style open-system offered-load sweep",
        seed: SEED,
        pool_nodes: POOL_NODES,
        horizon_secs: HORIZON_SECS,
        points,
    };
    let mut json = serde_json::to_string_pretty(&record).expect("record serializes");
    json.push('\n');
    print!("{json}");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path}");
}
