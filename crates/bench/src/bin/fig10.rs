//! Regenerates Figure 10 of the paper. Run with `--help` for options.

fn main() {
    let opts = bullet_bench::CommonOpts::from_env();
    let figure = bullet_bench::experiments::fig10(&opts);
    bullet_bench::emit(&figure, &opts);
}
