//! Diagnostic deep-dive into a single Bullet′ run: per-receiver completion
//! time, peer counts, duplicate fraction and control overhead. Useful when a
//! figure looks off and you want to know *which* mechanism is responsible.
//!
//! With `--service`, diagnoses the open-system service mode instead: one
//! fig21-style run at the top offered load, summarised as the
//! [`ServiceReport`](netsim::ServiceReport) the service manager produced
//! (sustained goodput, admission/queue counters, per-cohort percentiles).

use bullet_bench::experiments::{run_service_point, service_summary, FIG21_LOADS};
use bullet_bench::CommonOpts;
use bullet_prime::Config;
use desim::{RngFactory, SimDuration};
use dissem_codec::FileSpec;
use netsim::{topology, NodeId};

/// The `--service` mode: runs fig21's top-load cell and prints its service
/// summary (the same rendering `lab serve` uses).
fn diagnose_service(opts: &CommonOpts) {
    let index = FIG21_LOADS.len() - 1;
    let load = FIG21_LOADS[index];
    println!("open-system service diagnosis: fig21 at {load} arrivals per 1000 s");
    let report = run_service_point("fig21", index, opts).expect("top load index");
    print!("{}", service_summary(&report));
    if let Some(sample) = report
        .samples
        .iter()
        .max_by(|a, b| a.goodput_bps.total_cmp(&b.goodput_bps))
    {
        println!(
            "busiest tick: t={:.0}s, {:.3} Mbps, {} in flight, {} queued, core {:.0}%",
            sample.time_secs,
            sample.goodput_bps / 1e6,
            sample.in_flight,
            sample.queued,
            sample.core_utilisation * 100.0,
        );
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let service = args.iter().any(|a| a == "--service");
    args.retain(|a| a != "--service");
    let opts = CommonOpts::parse(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if service {
        diagnose_service(&opts);
        return;
    }
    let nodes = opts.nodes_or(40, 100);
    let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
    let cfg = Config::new(file);

    let mut runner = bullet_prime::build_runner(topo, &cfg, &rng);
    let report = runner.run(SimDuration::from_secs_f64(opts.time_limit));

    println!(
        "{:>5} {:>10} {:>8} {:>8} {:>8} {:>9} {:>10} {:>10}",
        "node", "done(s)", "senders", "recvrs", "dup%", "blocks", "ctl_out", "ctl_in"
    );
    let mut rows: Vec<(f64, String)> = Vec::new();
    for i in 1..nodes {
        let id = NodeId(i as u32);
        let node = runner.node(id);
        let m = node.metrics();
        let t = m.completed_at.unwrap_or(f64::NAN);
        let (s, r) = node.peer_counts();
        let traffic = runner.network().traffic(id);
        rows.push((
            t,
            format!(
                "{:>5} {:>10.1} {:>8} {:>8} {:>8.1} {:>9} {:>10} {:>10}",
                i,
                t,
                s,
                r,
                m.duplicate_fraction() * 100.0,
                m.useful_blocks(),
                traffic.control_bytes_out,
                traffic.control_bytes_in
            ),
        ));
    }
    rows.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
    for (_, line) in rows {
        println!("{line}");
    }
    // Arrival-gap forensics for the three slowest receivers.
    let mut by_completion: Vec<NodeId> = (1..nodes as u32).map(NodeId).collect();
    by_completion.sort_by(|a, b| {
        let ta = runner.node(*a).metrics().completed_at.unwrap_or(f64::MAX);
        let tb = runner.node(*b).metrics().completed_at.unwrap_or(f64::MAX);
        f64::total_cmp(&ta, &tb)
    });
    for id in by_completion.iter().rev().take(3) {
        let m = runner.node(*id).metrics();
        let gaps = m.inter_arrival_times();
        let mut biggest: Vec<(usize, f64)> = gaps.iter().copied().enumerate().collect();
        biggest.sort_by(|a, b| f64::total_cmp(&b.1, &a.1));
        let last: Vec<String> = m
            .arrival_times
            .iter()
            .rev()
            .take(5)
            .map(|t| format!("{t:.1}"))
            .collect();
        println!(
            "straggler {}: last arrivals {:?}, biggest gaps {:?}",
            id,
            last,
            &biggest[..biggest.len().min(3)]
        );
    }
    println!(
        "run: {} events, ended at {:.1}s ({:?}), {} receivers unfinished, {} trace records",
        report.events,
        report.end_time.as_secs_f64(),
        report.reason,
        report
            .completion_secs
            .iter()
            .skip(1)
            .filter(|c| c.is_none())
            .count(),
        report.trace_records,
    );
    // The deterministic metrics snapshot: which mechanism was busy. A
    // truncated run (TimeLimit/EventLimit stop reason) is attributed here —
    // e.g. a timer storm shows up as timers_fired dwarfing blocks_delivered,
    // a repricing storm as conn_schedules dwarfing blocks_sent.
    println!("metrics:");
    for &(name, value) in &report.metrics.counters {
        if value > 0 {
            println!("  {name:<24} {value}");
        }
    }
    for &(name, value) in &report.metrics.gauges {
        println!("  {name:<24} {value}");
    }
}
