//! Diagnostic deep-dive into a single Bullet′ run: per-receiver completion
//! time, peer counts, duplicate fraction and control overhead. Useful when a
//! figure looks off and you want to know *which* mechanism is responsible.

use bullet_bench::CommonOpts;
use bullet_prime::Config;
use desim::{RngFactory, SimDuration};
use dissem_codec::FileSpec;
use netsim::{topology, NodeId};

fn main() {
    let opts = CommonOpts::from_env();
    let nodes = opts.nodes_or(40, 100);
    let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
    let cfg = Config::new(file);

    let mut runner = bullet_prime::build_runner(topo, &cfg, &rng);
    let report = runner.run(SimDuration::from_secs_f64(opts.time_limit));

    println!(
        "{:>5} {:>10} {:>8} {:>8} {:>8} {:>9} {:>10} {:>10}",
        "node", "done(s)", "senders", "recvrs", "dup%", "blocks", "ctl_out", "ctl_in"
    );
    let mut rows: Vec<(f64, String)> = Vec::new();
    for i in 1..nodes {
        let id = NodeId(i as u32);
        let node = runner.node(id);
        let m = node.metrics();
        let t = m.completed_at.unwrap_or(f64::NAN);
        let (s, r) = node.peer_counts();
        let traffic = runner.network().traffic(id);
        rows.push((
            t,
            format!(
                "{:>5} {:>10.1} {:>8} {:>8} {:>8.1} {:>9} {:>10} {:>10}",
                i,
                t,
                s,
                r,
                m.duplicate_fraction() * 100.0,
                m.useful_blocks(),
                traffic.control_bytes_out,
                traffic.control_bytes_in
            ),
        ));
    }
    rows.sort_by(|a, b| f64::total_cmp(&a.0, &b.0));
    for (_, line) in rows {
        println!("{line}");
    }
    // Arrival-gap forensics for the three slowest receivers.
    let mut by_completion: Vec<NodeId> = (1..nodes as u32).map(NodeId).collect();
    by_completion.sort_by(|a, b| {
        let ta = runner.node(*a).metrics().completed_at.unwrap_or(f64::MAX);
        let tb = runner.node(*b).metrics().completed_at.unwrap_or(f64::MAX);
        f64::total_cmp(&ta, &tb)
    });
    for id in by_completion.iter().rev().take(3) {
        let m = runner.node(*id).metrics();
        let gaps = m.inter_arrival_times();
        let mut biggest: Vec<(usize, f64)> = gaps.iter().copied().enumerate().collect();
        biggest.sort_by(|a, b| f64::total_cmp(&b.1, &a.1));
        let last: Vec<String> = m
            .arrival_times
            .iter()
            .rev()
            .take(5)
            .map(|t| format!("{t:.1}"))
            .collect();
        println!(
            "straggler {}: last arrivals {:?}, biggest gaps {:?}",
            id,
            last,
            &biggest[..biggest.len().min(3)]
        );
    }
    println!(
        "run: {} events, ended at {:.1}s ({:?}), {} receivers unfinished, {} trace records",
        report.events,
        report.end_time.as_secs_f64(),
        report.reason,
        report
            .completion_secs
            .iter()
            .skip(1)
            .filter(|c| c.is_none())
            .count(),
        report.trace_records,
    );
    // The deterministic metrics snapshot: which mechanism was busy. A
    // truncated run (TimeLimit/EventLimit stop reason) is attributed here —
    // e.g. a timer storm shows up as timers_fired dwarfing blocks_delivered,
    // a repricing storm as conn_schedules dwarfing blocks_sent.
    println!("metrics:");
    for &(name, value) in &report.metrics.counters {
        if value > 0 {
            println!("  {name:<24} {value}");
        }
    }
    for &(name, value) in &report.metrics.gauges {
        println!("  {name:<24} {value}");
    }
}
