//! Regenerates the crash-churn experiment (Figure 16, beyond the paper).
//! Run with `--help` for options.

fn main() {
    let opts = bullet_bench::CommonOpts::from_env();
    let figure = bullet_bench::experiments::fig16(&opts);
    bullet_bench::emit(&figure, &opts);
}
