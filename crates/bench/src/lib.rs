//! `bullet-bench` — the experiment harness that regenerates every figure of
//! the paper's evaluation.
//!
//! * [`cdf`] — series/figure data structures, CDFs, summary statistics;
//! * [`opts`] — the tiny shared command-line surface of the `figNN` binaries;
//! * [`systems`] — uniform runners for Bullet′, Bullet, BitTorrent and
//!   SplitStream over a topology and change schedule;
//! * [`bounds`] — the analytic reference curves of Fig 4;
//! * [`alloc_track`] — the counting global allocator behind the perf
//!   records' allocation counts and peak-heap-bytes figures;
//! * [`views`] — the serde views of the committed `BENCH_events.json` /
//!   `BENCH_scale.json` / `BENCH_service.json` records (field order is what
//!   ci.sh greps);
//! * [`experiments`] — one function per figure (4–15 from the paper, plus
//!   the beyond-the-paper scenarios: 16/17 crash-churn and flash-crowd, 5ts
//!   the probe-driven bandwidth-over-time view of the dynamic scenario, 18
//!   two meshes sharing one core bottleneck, 19 cross traffic vs Bullet′
//!   adaptivity, 21/22 the open-system service mode — see
//!   `docs/SERVICE_MODE.md`). `docs/EXPERIMENTS.md` is the book mapping
//!   every scenario to its paper section, sweep and expected result.
//!
//! The `figNN` binaries live in the `bullet_lab` crate as one-line wrappers
//! over its scenario registry (equivalent to `lab run <name>`); this crate
//! keeps `lt_overhead` (the rateless-code reception overhead quoted in
//! §2.2), `diagnose`, `bench_events` (the fixed-seed scheduler-efficiency
//! record `BENCH_events.json` that ci.sh gates on), `bench_scale` (the
//! `BENCH_scale.json` swarm-scaling trajectory, gated at N = 1 000) and
//! `bench_service` (the `BENCH_service.json` open-system sweep, gated on
//! sustained goodput at the top load). Criterion micro-benchmarks for the
//! core data structures live in `benches/`.

pub mod alloc_track;
pub mod bounds;
pub mod cdf;
pub mod experiments;
pub mod opts;
pub mod systems;
pub mod views;
pub mod warmup;

pub use cdf::{improvement_at, Figure, Series};
pub use opts::{emit, figure_main, CommonOpts};
pub use systems::{
    run_bullet_prime_churn, run_bullet_prime_cross, run_bullet_prime_timeseries,
    run_bullet_prime_with, run_concurrent_meshes, run_system, SystemKind, SystemRun,
};
pub use warmup::{WarmPrefix, FIG05W_VARIANTS, FIG05W_WARMUP_SECS};
