//! Analytic reference curves for Fig 4.
//!
//! The paper plots two non-protocol lines: the download time that would be
//! *physically possible* given each receiver's access-link bandwidth alone,
//! and the best a MACEDON/TCP implementation could hope for once TCP slow
//! start, per-block framing and the overlay's start-up phase are charged.

use dissem_codec::FileSpec;
use netsim::tcp::{idle_transfer_time, TcpPath};
use netsim::Topology;

/// Per-receiver lower bound: file size divided by the receiver's inbound
/// access capacity (no protocol or transport overhead at all).
pub fn physical_limit(topo: &Topology, file: FileSpec) -> Vec<f64> {
    topo.node_ids()
        .skip(1)
        .map(|id| file.file_bytes as f64 / topo.node(id).down)
        .collect()
}

/// Per-receiver estimate of the best an overlay built on TCP could do:
/// the source's push must traverse at least one TCP connection whose
/// bottleneck is the receiver's constrained direction, paying slow start,
/// plus per-block protocol framing and the overlay start-up delay before the
/// first useful byte flows (peer discovery through the first RanSub epoch).
pub fn tcp_feasible(topo: &Topology, file: FileSpec, startup_secs: f64) -> Vec<f64> {
    // 2% framing/header overhead on every block, matching the emulator's
    // control-message accounting order of magnitude.
    let framed_bytes = (file.file_bytes as f64 * 1.02) as u64;
    topo.node_ids()
        .skip(1)
        .map(|id| {
            let down = topo.node(id).down;
            // The best case is a peer whose path bottleneck is our access link;
            // use the median core RTT towards this node for the ramp.
            let rtt = topo.rtt(netsim::NodeId(0), id);
            let path = TcpPath {
                bottleneck: down,
                rtt,
                loss: 0.0,
            };
            startup_secs + idle_transfer_time(&path, framed_bytes).as_secs_f64()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::RngFactory;
    use netsim::topology;

    #[test]
    fn physical_limit_matches_hand_computation() {
        let rng = RngFactory::new(1);
        let topo = topology::modelnet_mesh(5, 0.0, &rng);
        let file = FileSpec::from_mb_kb(100, 16);
        let bounds = physical_limit(&topo, file);
        assert_eq!(bounds.len(), 4);
        // 100 MiB over 6 Mbps = 104857600 / 750000 ≈ 139.8 s — the paper's
        // leftmost curve sits just under 140 s.
        for b in bounds {
            assert!((b - 139.8).abs() < 1.0, "bound {b}");
        }
    }

    #[test]
    fn tcp_feasible_is_slower_than_physical() {
        let rng = RngFactory::new(2);
        let topo = topology::modelnet_mesh(10, 0.0, &rng);
        let file = FileSpec::from_mb_kb(10, 16);
        let phys = physical_limit(&topo, file);
        let tcp = tcp_feasible(&topo, file, 10.0);
        for (p, t) in phys.iter().zip(tcp.iter()) {
            assert!(
                t > p,
                "TCP-feasible ({t}) must exceed the physical limit ({p})"
            );
        }
    }
}
