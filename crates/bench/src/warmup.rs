//! Warm-prefix support: the snapshot/fork side of the sweep executor.
//!
//! The `fig05w` scenario family shares one expensive warm-up — topology
//! construction plus the join phase of a Bullet′ swarm — across several
//! cells that differ only in the dynamics applied *after* the split point.
//! Instead of re-simulating the identical prefix per cell, the lab executor
//! simulates it once per (parameters, seed) group via [`fig05w_prefix`],
//! checkpoints the runner ([`netsim::Runner::checkpoint`]) into a
//! [`WarmPrefix`], and forks every cell of the group from a clone of the
//! snapshot ([`fig05w_fork`]). [`fig05w_fresh`] is the oracle: the same cell
//! simulated uninterrupted from t = 0. The snapshot contract guarantees the
//! two produce byte-identical canonical figures — `lab bench --snapshot`
//! re-checks that equivalence on every CI run.
//!
//! The split point is [`FIG05W_WARMUP_SECS`] virtual seconds: late enough
//! that the mesh has formed and transfers are in flight (the snapshot is
//! taken mid-download, not at a trivial instant), early enough that the
//! shared prefix stays a prefix — every dynamics variant's first scheduled
//! change lands strictly after it.

use bullet_prime::{BulletPrimeNode, Config};
use desim::{RngFactory, SimDuration, SimTime};
use dissem_codec::FileSpec;
use netsim::{topology, ChangeSchedule, Runner, Snapshot};

use crate::cdf::{Figure, Series};
use crate::opts::CommonOpts;

/// Virtual seconds of shared warm-up before the `fig05w` variants diverge.
/// Every variant's first bandwidth change is scheduled strictly after this
/// instant, so the prefix is genuinely common to all cells of a group.
pub const FIG05W_WARMUP_SECS: f64 = 10.0;

/// The `fig05w` dynamics variants, keyed by sweep-point label: no changes
/// after the warm-up, the paper's 20 s correlated-decrease period, and an
/// aggressive 8 s period.
pub const FIG05W_VARIANTS: [&str; 3] = ["calm", "paper", "storm"];

/// One simulated-and-checkpointed warm-up, shared by every cell of a sweep
/// group. Produced by a scenario's `prefix` hook, consumed (via
/// [`Snapshot::clone`]) by its `fork` hook once per cell.
pub struct WarmPrefix {
    /// The checkpoint every cell of the group resumes from.
    pub snap: Snapshot<BulletPrimeNode>,
    /// Virtual seconds of warm-up the snapshot contains.
    pub warmup_secs: f64,
}

/// Builds the `fig05w` runner at t = 0: Bullet′ on the standard lossy
/// ModelNet mesh, with the stats probe installed (so forking exercises probe
/// state too). Returns the runner and the resolved node count.
fn build(opts: &CommonOpts) -> (Runner<BulletPrimeNode>, usize) {
    let nodes = opts.nodes_or(20, 100);
    let file = FileSpec::new(opts.file_bytes_or(4.0, 100.0), opts.block_bytes_or(16));
    let rng = RngFactory::new(opts.seed);
    let topo = topology::modelnet_mesh(nodes, 0.03, &rng);
    let cfg = Config::new(file);
    let mut runner = bullet_prime::build_runner(topo, &cfg, &rng);
    runner.record_timeseries(SimDuration::from_secs_f64(opts.tick.unwrap_or(2.0)));
    (runner, nodes)
}

/// The bandwidth-change schedule of one `fig05w` variant, shifted so every
/// entry lands strictly after the warm-up split point.
///
/// # Panics
///
/// Panics on a label outside [`FIG05W_VARIANTS`] — sweep points and variants
/// are defined together in the scenario registry, so a mismatch is a bug.
fn variant_schedule(
    label: &str,
    nodes: usize,
    opts: &CommonOpts,
    rng: &RngFactory,
) -> ChangeSchedule {
    let period = match label {
        "calm" => return Vec::new(),
        "paper" => 20.0,
        "storm" => 8.0,
        other => panic!("unknown fig05w variant '{other}' (expected one of {FIG05W_VARIANTS:?})"),
    };
    let shift = SimDuration::from_secs_f64(FIG05W_WARMUP_SECS);
    let horizon = (opts.time_limit - FIG05W_WARMUP_SECS).max(0.0);
    netsim::dynamics::correlated_decrease_schedule(
        nodes,
        SimDuration::from_secs_f64(period),
        SimDuration::from_secs_f64(horizon),
        rng,
    )
    .into_iter()
    .map(|(at, batch)| (at + shift, batch))
    .collect()
}

/// Simulates the shared warm-up of one `fig05w` cell group and checkpoints
/// it. The returned prefix is forked (never mutated) by every cell of the
/// group.
pub fn fig05w_prefix(opts: &CommonOpts) -> WarmPrefix {
    let (mut runner, _) = build(opts);
    runner.advance_until(SimTime::from_secs_f64(FIG05W_WARMUP_SECS));
    WarmPrefix {
        snap: runner.checkpoint(),
        warmup_secs: FIG05W_WARMUP_SECS,
    }
}

/// Runs one `fig05w` cell by forking the group's warm prefix: resume a clone
/// of the snapshot, schedule the variant's post-split dynamics, run to the
/// time limit. Canonically byte-identical to [`fig05w_fresh`] with the same
/// options and label.
pub fn fig05w_fork(prefix: &WarmPrefix, opts: &CommonOpts, label: &str) -> Figure {
    let nodes = opts.nodes_or(20, 100);
    let rng = RngFactory::new(opts.seed);
    let mut runner = Runner::resume(prefix.snap.clone());
    for (at, batch) in variant_schedule(label, nodes, opts, &rng) {
        runner.schedule_link_change(at, batch);
    }
    let report = runner.run_until(SimTime::from_secs_f64(opts.time_limit));
    figure(label, nodes, &report)
}

/// Runs one `fig05w` cell uninterrupted from t = 0 — the sharing-off oracle.
/// The warm-up is advanced as a stage (no checkpoint), the variant's
/// dynamics are scheduled at the same quiescent instant the forked path
/// schedules them, and the run continues to the time limit in one runner.
pub fn fig05w_fresh(opts: &CommonOpts, label: &str) -> Figure {
    let (mut runner, nodes) = build(opts);
    let rng = RngFactory::new(opts.seed);
    runner.advance_until(SimTime::from_secs_f64(FIG05W_WARMUP_SECS));
    for (at, batch) in variant_schedule(label, nodes, opts, &rng) {
        runner.schedule_link_change(at, batch);
    }
    let report = runner.run_until(SimTime::from_secs_f64(opts.time_limit));
    figure(label, nodes, &report)
}

/// Renders one variant's report: the receivers' download-time CDF plus the
/// mean-goodput-over-time curve from the probe series (which spans the whole
/// run, warm-up included, on both the forked and the fresh path).
fn figure(label: &str, nodes: usize, report: &netsim::RunReport) -> Figure {
    let end = report.end_time.as_secs_f64();
    let mut unfinished = 0usize;
    let times: Vec<f64> = report
        .completion_secs
        .iter()
        .skip(1) // Node 0 is the source.
        .map(|c| {
            c.unwrap_or_else(|| {
                unfinished += 1;
                end
            })
        })
        .collect();
    let mut fig = Figure::new(
        "Figure 5w",
        format!(
            "download times under '{label}' dynamics after a shared \
             {FIG05W_WARMUP_SECS:.0} s warm-up ({nodes} nodes)"
        ),
    );
    let mut cdf = Series::cdf(format!("BulletPrime [{label}]"), &times);
    if unfinished > 0 {
        cdf.label = format!("{} ({unfinished} unfinished)", cdf.label);
    }
    fig.push(cdf);
    if let Some(series) = &report.timeseries {
        fig.push(Series::xy(
            "mean receiver goodput (Mbps)",
            series.mean_over_active(1, |n| n.goodput_bps / 1e6),
        ));
    }
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CommonOpts {
        CommonOpts {
            nodes: Some(6),
            file_mb: Some(0.25),
            time_limit: 1800.0,
            ..CommonOpts::default()
        }
    }

    #[test]
    fn forked_cell_matches_the_uninterrupted_run() {
        let opts = tiny();
        let prefix = fig05w_prefix(&opts);
        for label in FIG05W_VARIANTS {
            let forked = fig05w_fork(&prefix, &opts, label);
            let fresh = fig05w_fresh(&opts, label);
            assert_eq!(
                format!("{forked:?}"),
                format!("{fresh:?}"),
                "variant '{label}' diverged between fork and fresh"
            );
        }
    }

    #[test]
    fn variants_actually_diverge_after_the_split() {
        let opts = tiny();
        let prefix = fig05w_prefix(&opts);
        let calm = fig05w_fork(&prefix, &opts, "calm");
        let storm = fig05w_fork(&prefix, &opts, "storm");
        assert_ne!(
            format!("{calm:?}"),
            format!("{storm:?}"),
            "calm and storm dynamics produced identical figures — the \
             schedules are not taking effect"
        );
    }

    #[test]
    fn every_variant_schedule_starts_after_the_warmup() {
        let opts = tiny();
        let rng = RngFactory::new(opts.seed);
        for label in FIG05W_VARIANTS {
            let sched = variant_schedule(label, 6, &opts, &rng);
            assert!(
                sched
                    .iter()
                    .all(|(at, _)| at.as_secs_f64() > FIG05W_WARMUP_SECS),
                "variant '{label}' schedules a change inside the shared prefix"
            );
        }
        // The non-calm variants must have something to apply, or the
        // divergence test above tests nothing.
        assert!(!variant_schedule("paper", 6, &opts, &rng).is_empty());
        assert!(!variant_schedule("storm", 6, &opts, &rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown fig05w variant")]
    fn unknown_variant_labels_are_rejected() {
        let rng = RngFactory::new(1);
        variant_schedule("typo", 6, &tiny(), &rng);
    }
}
