//! Uniform wrappers for running each dissemination system on a topology.
//!
//! Every figure needs the same thing: run protocol X on topology T (with an
//! optional bandwidth-change schedule) and collect per-receiver completion
//! times. These helpers keep the per-figure code declarative.

use baselines::{bittorrent, bullet_orig, splitstream, BitTorrentConfig, BitTorrentNode};
use bullet_prime::{BulletPrimeNode, Config};
use desim::{RngFactory, SimDuration, SimTime};
use dissem_codec::FileSpec;
use netsim::{
    ChangeSchedule, CrossSchedule, Network, NodeEvent, NodeId, NodeSchedule, Runner, Topology,
};

/// The systems compared in Figs 4, 5 and 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// The paper's contribution.
    BulletPrime,
    /// Original Bullet (SOSP '03), fixed parameters.
    BulletOriginal,
    /// BitTorrent with a central tracker.
    BitTorrent,
    /// SplitStream-style stripe-tree push.
    SplitStream,
}

impl SystemKind {
    /// Legend label used in the figures (matching the paper's legends).
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::BulletPrime => "BulletPrime",
            SystemKind::BulletOriginal => "Bullet",
            SystemKind::BitTorrent => "BitTorrent",
            SystemKind::SplitStream => "SplitStream",
        }
    }

    /// All four systems in the order the paper lists them.
    pub fn all() -> [SystemKind; 4] {
        [
            SystemKind::BulletPrime,
            SystemKind::BulletOriginal,
            SystemKind::BitTorrent,
            SystemKind::SplitStream,
        ]
    }
}

/// Result of one protocol run.
#[derive(Debug, Clone)]
pub struct SystemRun {
    /// Per-receiver completion times (seconds). Nodes that did not finish
    /// within the time limit are reported at the end-of-run time.
    pub times: Vec<f64>,
    /// Number of receivers that did not finish within the limit.
    pub unfinished: usize,
    /// Virtual end time of the run.
    pub end_time: f64,
}

fn collect_times(report: &netsim::RunReport) -> SystemRun {
    let end = report.end_time.as_secs_f64();
    let mut unfinished = 0;
    let times = report
        .completion_secs
        .iter()
        .enumerate()
        .skip(1) // Node 0 is the source in every system.
        .map(|(_, c)| {
            c.unwrap_or_else(|| {
                unfinished += 1;
                end
            })
        })
        .collect();
    SystemRun {
        times,
        unfinished,
        end_time: end,
    }
}

fn apply_schedule<P: netsim::Protocol>(runner: &mut Runner<P>, schedule: &ChangeSchedule) {
    for (at, batch) in schedule {
        runner.schedule_link_change(*at, batch.clone());
    }
}

/// Like [`collect_times`], but for churn runs: receivers that left or
/// crashed are excluded from the timing series (they can never finish), so
/// the CDF describes the *survivors*.
fn collect_survivor_times(report: &netsim::RunReport) -> SystemRun {
    let end = report.end_time.as_secs_f64();
    let mut unfinished = 0;
    let times = report
        .completion_secs
        .iter()
        .zip(report.departed.iter())
        .skip(1) // Node 0 is the source.
        .filter(|(_, &departed)| !departed)
        .map(|(c, _)| {
            c.unwrap_or_else(|| {
                unfinished += 1;
                end
            })
        })
        .collect();
    SystemRun {
        times,
        unfinished,
        end_time: end,
    }
}

/// Runs Bullet′ under a node-lifecycle (churn) schedule: nodes named in
/// `Join` events start outside the experiment and join when the event fires;
/// `Leave`/`Crash` events remove nodes mid-run. Returns the survivor timing
/// summary, the full runner report (per-node completions + departures), and
/// the protocol nodes.
pub fn run_bullet_prime_churn(
    topo: Topology,
    cfg: &Config,
    rng: &RngFactory,
    churn: &NodeSchedule,
    limit: SimDuration,
) -> (SystemRun, netsim::RunReport, Vec<BulletPrimeNode>) {
    let mut runner = bullet_prime::build_runner(topo, cfg, rng);
    for (at, event) in churn {
        if let NodeEvent::Join(node) = event {
            runner.set_inactive_at_start(*node);
        }
        runner.schedule_node_event(*at, *event);
    }
    let report = runner.run(limit);
    (collect_survivor_times(&report), report, runner.into_nodes())
}

/// Runs Bullet′ with a run-time stats probe sampling every `tick`, returning
/// the timing summary and the full report — whose
/// [`timeseries`](netsim::RunReport::timeseries) carries per-node goodput /
/// duplicate-ratio / peer-set-size samples over virtual time (the `fig05ts`
/// bandwidth-over-time scenario).
pub fn run_bullet_prime_timeseries(
    topo: Topology,
    cfg: &Config,
    rng: &RngFactory,
    schedule: &ChangeSchedule,
    limit: SimDuration,
    tick: SimDuration,
) -> (SystemRun, netsim::RunReport, Vec<BulletPrimeNode>) {
    let mut runner = bullet_prime::build_runner(topo, cfg, rng);
    apply_schedule(&mut runner, schedule);
    runner.record_timeseries(tick);
    let report = runner.run(limit);
    (collect_times(&report), report, runner.into_nodes())
}

/// Runs several **concurrent, independent Bullet′ meshes** on one topology
/// (see [`bullet_prime::build_group_runner`]): `group_sizes` partitions the
/// node ids into contiguous meshes, each with its own source (the group's
/// first id). Returns one [`SystemRun`] per mesh — its receivers' completion
/// times — so shared-bottleneck scenarios can compare the meshes directly.
pub fn run_concurrent_meshes(
    topo: Topology,
    cfg: &Config,
    rng: &RngFactory,
    group_sizes: &[usize],
    limit: SimDuration,
) -> Vec<SystemRun> {
    let mut runner = bullet_prime::build_group_runner(topo, cfg, rng, group_sizes);
    let report = runner.run(limit);
    let end = report.end_time.as_secs_f64();
    let mut out = Vec::with_capacity(group_sizes.len());
    let mut base = 0usize;
    for &size in group_sizes {
        let mut unfinished = 0;
        let times: Vec<f64> = report.completion_secs[base..base + size]
            .iter()
            .skip(1) // Each group's first node is its source.
            .map(|c| {
                c.unwrap_or_else(|| {
                    unfinished += 1;
                    end
                })
            })
            .collect();
        out.push(SystemRun {
            times,
            unfinished,
            end_time: end,
        });
        base += size;
    }
    out
}

/// Runs Bullet′ under a cross-traffic schedule with a run-time stats probe
/// sampling every `tick` (the fig19 bandwidth-over-time scenario). Returns
/// the timing summary and the full report carrying the
/// [`timeseries`](netsim::RunReport::timeseries).
pub fn run_bullet_prime_cross(
    topo: Topology,
    cfg: &Config,
    rng: &RngFactory,
    cross: &CrossSchedule,
    limit: SimDuration,
    tick: SimDuration,
) -> (SystemRun, netsim::RunReport, Vec<BulletPrimeNode>) {
    let mut runner = bullet_prime::build_runner(topo, cfg, rng);
    for &(at, change) in cross {
        runner.schedule_cross_traffic(at, change);
    }
    runner.record_timeseries(tick);
    let report = runner.run(limit);
    (collect_times(&report), report, runner.into_nodes())
}

/// Runs Bullet′ with an explicit configuration and returns both the timing
/// summary and the protocol nodes (for metric extraction, e.g. Fig 13).
pub fn run_bullet_prime_with(
    topo: Topology,
    cfg: &Config,
    rng: &RngFactory,
    schedule: &ChangeSchedule,
    limit: SimDuration,
) -> (SystemRun, Vec<BulletPrimeNode>) {
    let mut runner = bullet_prime::build_runner(topo, cfg, rng);
    apply_schedule(&mut runner, schedule);
    let report = runner.run(limit);
    (collect_times(&report), runner.into_nodes())
}

/// Runs one of the four compared systems with its default configuration.
pub fn run_system(
    kind: SystemKind,
    topo: Topology,
    file: FileSpec,
    rng: &RngFactory,
    schedule: &ChangeSchedule,
    limit: SimDuration,
) -> SystemRun {
    match kind {
        SystemKind::BulletPrime => {
            let cfg = Config::new(file);
            run_bullet_prime_with(topo, &cfg, rng, schedule, limit).0
        }
        SystemKind::BulletOriginal => {
            let mut runner = bullet_orig::build_runner(topo, file, rng);
            apply_schedule(&mut runner, schedule);
            collect_times(&runner.run(limit))
        }
        SystemKind::BitTorrent => {
            let cfg = BitTorrentConfig::new(file);
            let nodes: Vec<BitTorrentNode> = (0..topo.len() as u32)
                .map(|i| BitTorrentNode::new(NodeId(i), cfg.clone()))
                .collect();
            let mut runner = Runner::new(Network::new(topo), nodes, rng);
            runner.exempt_from_completion(NodeId(0));
            apply_schedule(&mut runner, schedule);
            collect_times(&runner.run(limit))
        }
        SystemKind::SplitStream => {
            let mut runner = splitstream::build_runner(topo, file, rng);
            apply_schedule(&mut runner, schedule);
            collect_times(&runner.run(limit))
        }
    }
}

/// Convenience for BitTorrent-only callers needing node access.
pub fn run_bittorrent(
    topo: Topology,
    cfg: &bittorrent::BitTorrentConfig,
    rng: &RngFactory,
    limit: SimDuration,
) -> (SystemRun, Vec<BitTorrentNode>) {
    let nodes: Vec<BitTorrentNode> = (0..topo.len() as u32)
        .map(|i| BitTorrentNode::new(NodeId(i), cfg.clone()))
        .collect();
    let mut runner = Runner::new(Network::new(topo), nodes, rng);
    runner.exempt_from_completion(NodeId(0));
    let report = runner.run(limit);
    (collect_times(&report), runner.into_nodes())
}

/// Builds the bandwidth-change schedule of §4.1 for a run of `nodes`
/// participants over `horizon` seconds (used by Figs 5 and 8).
pub fn paper_dynamic_schedule(nodes: usize, horizon: f64, rng: &RngFactory) -> ChangeSchedule {
    netsim::dynamics::correlated_decrease_schedule(
        nodes,
        SimDuration::from_secs(20),
        SimDuration::from_secs_f64(horizon),
        rng,
    )
}

/// Builds the Fig 12 cascading-degrade schedule for the standard cascade
/// topology: the victim is the last node; one dedicated link degrades to
/// 100 Kbps every `period_secs` (25 s in the paper).
pub fn cascade_schedule(fast_nodes: usize, period_secs: f64) -> ChangeSchedule {
    let senders: Vec<NodeId> = (1..fast_nodes as u32).map(NodeId).collect();
    let victim = NodeId(fast_nodes as u32);
    netsim::dynamics::cascading_degrade_schedule(
        &senders,
        victim,
        SimDuration::from_secs_f64(period_secs),
    )
}

/// A helper for bounding runs to an absolute virtual time.
pub fn limit_secs(secs: f64) -> SimDuration {
    SimTime::from_secs_f64(secs) - SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology;

    #[test]
    fn all_four_systems_run_on_a_tiny_workload() {
        for kind in SystemKind::all() {
            let rng = RngFactory::new(3);
            let topo = topology::modelnet_mesh(6, 0.005, &rng);
            let run = run_system(
                kind,
                topo,
                FileSpec::new(128 * 1024, 16 * 1024),
                &rng,
                &Vec::new(),
                SimDuration::from_secs(1800),
            );
            assert_eq!(run.times.len(), 5, "{kind:?}");
            assert_eq!(run.unfinished, 0, "{kind:?} left receivers unfinished");
            assert!(run.times.iter().all(|&t| t > 0.0 && t <= run.end_time));
        }
    }

    #[test]
    fn schedules_are_generated_for_the_standard_scenarios() {
        let rng = RngFactory::new(1);
        let dynamic = paper_dynamic_schedule(20, 100.0, &rng);
        assert_eq!(dynamic.len(), 5);
        let cascade = cascade_schedule(7, 25.0);
        assert_eq!(cascade.len(), 6);
        assert_eq!(cascade[0].0.as_secs_f64(), 25.0);
        assert!(cascade.iter().all(|(_, b)| b.changes[0].1 == NodeId(7)));
    }
}
