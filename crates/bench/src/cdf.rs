//! Series / CDF handling for the figure harness.
//!
//! Every figure in the paper's evaluation is either a CDF of per-node
//! download times (Figs 4–12, 14, 15) or a per-block series (Fig 13). This
//! module holds the small amount of shared plumbing: turning completion-time
//! vectors into CDFs, computing the summary statistics quoted in the text
//! (median/percentile improvements, slowest-node speed-ups), and printing
//! figures as aligned text tables or JSON for external plotting.

use serde::Serialize;

/// One labelled curve of a figure.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Legend label (matches the paper's legend where applicable).
    pub label: String,
    /// `(x, y)` points. For CDFs, x = download time (s), y = fraction of nodes.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a CDF series from unsorted completion times.
    pub fn cdf(label: impl Into<String>, times: &[f64]) -> Self {
        let mut sorted: Vec<f64> = times.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len().max(1) as f64;
        let points = sorted
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, (i + 1) as f64 / n))
            .collect();
        Series {
            label: label.into(),
            points,
        }
    }

    /// Builds a plain x/y series.
    pub fn xy(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// Largest x value (the slowest node for CDFs).
    pub fn max_x(&self) -> f64 {
        self.points.iter().map(|(x, _)| *x).fold(f64::NAN, f64::max)
    }

    /// The x value at which the CDF reaches `fraction` (e.g. 0.5 = median).
    pub fn quantile(&self, fraction: f64) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        let idx =
            ((self.points.len() as f64 * fraction).ceil() as usize).clamp(1, self.points.len()) - 1;
        self.points[idx].0
    }
}

/// A complete figure: several series plus identifying metadata.
#[derive(Debug, Clone, Serialize)]
pub struct Figure {
    /// Which paper figure this reproduces (e.g. "Figure 4").
    pub id: String,
    /// Human-readable description of the setup.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
    /// Free-form notes: derived headline numbers, paper comparisons, caveats.
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: "download time (s)".into(),
            y_label: "fraction of nodes".into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Adds a series.
    pub fn push(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Adds a headline note.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the figure as text: a summary table plus (optionally) the raw
    /// CDF points of each series.
    pub fn render_text(&self, raw_points: bool) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let _ = writeln!(
            out,
            "{:<44} {:>10} {:>10} {:>10} {:>10}",
            "series", "p10", "median", "p90", "slowest"
        );
        for s in &self.series {
            let _ = writeln!(
                out,
                "{:<44} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                s.label,
                s.quantile(0.10),
                s.quantile(0.50),
                s.quantile(0.90),
                s.max_x()
            );
        }
        for n in &self.notes {
            let _ = writeln!(out, "note: {n}");
        }
        if raw_points {
            for s in &self.series {
                let _ = writeln!(out, "-- {} --", s.label);
                for (x, y) in &s.points {
                    let _ = writeln!(out, "{x:.3}\t{y:.4}");
                }
            }
        }
        out
    }

    /// Serialises the figure to JSON (for external plotting).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("figures are always serialisable")
    }
}

/// Relative improvement of `ours` over `theirs` at a given CDF quantile,
/// expressed the way the paper quotes it ("faster by X%"): the fraction of
/// `theirs` saved by `ours`.
pub fn improvement_at(ours: &Series, theirs: &Series, fraction: f64) -> f64 {
    let a = ours.quantile(fraction);
    let b = theirs.quantile(fraction);
    if b <= 0.0 {
        return 0.0;
    }
    (b - a) / b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_sorted_and_normalised() {
        let s = Series::cdf("x", &[3.0, 1.0, 2.0, 4.0]);
        let xs: Vec<f64> = s.points.iter().map(|(x, _)| *x).collect();
        assert_eq!(xs, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.points.last().unwrap().1, 1.0);
        assert_eq!(s.points.first().unwrap().1, 0.25);
        assert_eq!(s.max_x(), 4.0);
    }

    #[test]
    fn quantiles_pick_expected_elements() {
        let s = Series::cdf(
            "x",
            &[10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0, 90.0, 100.0],
        );
        assert_eq!(s.quantile(0.5), 50.0);
        assert_eq!(s.quantile(0.9), 90.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(s.quantile(0.0), 10.0);
    }

    #[test]
    fn improvement_matches_paper_style_quote() {
        let ours = Series::cdf("ours", &[75.0; 10]);
        let theirs = Series::cdf("theirs", &[100.0; 10]);
        let imp = improvement_at(&ours, &theirs, 0.5);
        assert!((imp - 0.25).abs() < 1e-12, "75 vs 100 is 25% faster");
    }

    #[test]
    fn render_text_contains_labels_and_notes() {
        let mut f = Figure::new("Figure 0", "smoke test");
        f.push(Series::cdf("alpha", &[1.0, 2.0]));
        f.note("hello");
        let text = f.render_text(false);
        assert!(text.contains("Figure 0"));
        assert!(text.contains("alpha"));
        assert!(text.contains("note: hello"));
        let json = f.to_json();
        assert!(json.contains("\"alpha\""));
    }
}
