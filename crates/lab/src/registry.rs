//! The scenario registry: every experiment of the evaluation grid by name.
//!
//! The registry is the single source of truth for what can be run: the `lab`
//! CLI lists and resolves scenarios here, and each `figNN` binary is a
//! one-line wrapper over its registry entry (equivalent to `lab run <name>`).

use bullet_bench::{experiments, warmup};

use crate::scenario::{
    DynamicsKind, ParamPoint, Scenario, SweepSpec, SystemSet, TopologyKind, Warmup,
};

/// An ordered collection of uniquely named scenarios.
pub struct Registry {
    scenarios: Vec<Scenario>,
}

impl Registry {
    /// Builds the standard registry: Figures 4–15 of the paper plus the
    /// beyond-the-paper scenarios (16: crash wave, 17: flash crowd, 18:
    /// shared core bottleneck, 19: cross-traffic square wave, 20: emulator
    /// scaling trajectory, 21: open-system offered-load sweep, 22: flash
    /// crowd beside a warm swarm, 5ts: probe-driven bandwidth-over-time).
    pub fn standard() -> Self {
        use DynamicsKind as D;
        use SystemSet as S;
        use TopologyKind as T;
        let mut scenarios = vec![
            Scenario::new(
                "fig04",
                "download-time CDF of all four systems under random losses",
                S::AllFour,
                T::ModelNetMesh,
                D::Static,
                experiments::fig04,
            ),
            Scenario::new(
                "fig05",
                "download-time CDF of all four systems under synthetic bandwidth changes",
                S::AllFour,
                T::ModelNetMesh,
                D::BandwidthChanges,
                experiments::fig05,
            ),
            Scenario::new(
                "fig05ts",
                "probe-driven per-receiver goodput over time in the dynamic scenario",
                S::BulletPrime,
                T::ModelNetMesh,
                D::BandwidthChanges,
                experiments::fig05ts,
            ),
            Scenario::new(
                "fig05w",
                "snapshot/fork warm-up sharing: one join phase, three dynamics variants",
                S::BulletPrime,
                T::ModelNetMesh,
                D::BandwidthChanges,
                experiments::fig05w,
            )
            .with_warmup(Warmup {
                prefix: warmup::fig05w_prefix,
                fork: warmup::fig05w_fork,
                fresh: warmup::fig05w_fresh,
            }),
            Scenario::new(
                "fig06",
                "request strategies (rarest-random / random / rarest / first)",
                S::BulletPrimeVariants,
                T::ModelNetMesh,
                D::Static,
                experiments::fig06,
            ),
            Scenario::new(
                "fig07",
                "static peer-set sizes vs dynamic under random losses",
                S::BulletPrimeVariants,
                T::ModelNetMesh,
                D::Static,
                experiments::fig07,
            ),
            Scenario::new(
                "fig08",
                "static peer-set sizes vs dynamic under bandwidth changes",
                S::BulletPrimeVariants,
                T::ModelNetMesh,
                D::BandwidthChanges,
                experiments::fig08,
            ),
            Scenario::new(
                "fig09",
                "static peer-set sizes vs dynamic on constrained access links",
                S::BulletPrimeVariants,
                T::ConstrainedAccess,
                D::Static,
                experiments::fig09,
            ),
            Scenario::new(
                "fig10",
                "outstanding-request windows on clean high-BDP links",
                S::BulletPrimeVariants,
                T::HighBdpClique,
                D::Static,
                experiments::fig10,
            ),
            Scenario::new(
                "fig11",
                "outstanding-request windows under random losses",
                S::BulletPrimeVariants,
                T::HighBdpClique,
                D::Static,
                experiments::fig11,
            ),
            Scenario::new(
                "fig12",
                "outstanding-request windows under cascading degradations",
                S::BulletPrimeVariants,
                T::Cascade,
                D::CascadingDegrade,
                experiments::fig12,
            ),
            Scenario::new(
                "fig13",
                "block inter-arrival times (last-block problem) and encoding overage",
                S::BulletPrime,
                T::ModelNetMesh,
                D::Static,
                experiments::fig13,
            ),
            Scenario::new(
                "fig14",
                "wide-area (PlanetLab-like) comparison of all four systems",
                S::AllFour,
                T::PlanetLabLike,
                D::Static,
                experiments::fig14,
            ),
            Scenario::new(
                "fig15",
                "Shotgun software update vs N parallel rsync processes",
                S::Shotgun,
                T::PlanetLabLike,
                D::Static,
                experiments::fig15,
            ),
            Scenario::new(
                "fig16",
                "survivor download-time CDF under receiver crash waves",
                S::BulletPrime,
                T::ModelNetMesh,
                D::CrashWave,
                experiments::fig16,
            ),
            Scenario::new(
                "fig17",
                "download-duration CDF with a flash-crowd join wave",
                S::BulletPrime,
                T::ModelNetMesh,
                D::FlashCrowd,
                experiments::fig17,
            ),
            Scenario::new(
                "fig18",
                "two concurrent meshes sharing one 2 Mbps core bottleneck",
                S::BulletPrime,
                T::SharedCore,
                D::Static,
                experiments::fig18,
            ),
            Scenario::new(
                "fig19",
                "cross-traffic square wave vs Bullet' adaptivity (goodput over time)",
                S::BulletPrime,
                T::SharedCore,
                D::CrossTraffic,
                experiments::fig19,
            ),
            Scenario::new(
                "fig20",
                "emulator scaling trajectory: join-only swarms up to 10,000 nodes",
                S::BulletPrime,
                T::UniformSwarm,
                D::Static,
                experiments::fig20,
            ),
            Scenario::new(
                "fig21",
                "open-system offered-load sweep: Poisson swarm arrivals to the knee",
                S::BulletPrime,
                T::SharedCore,
                D::OpenArrivals,
                experiments::fig21,
            ),
            Scenario::new(
                "fig22",
                "flash crowd of joiners arriving beside an already-warm swarm",
                S::BulletPrime,
                T::SharedCore,
                D::OpenArrivals,
                experiments::fig22,
            ),
        ];

        // Default parameter sweeps where one knob is the interesting axis:
        // the overall comparisons sweep swarm size; fig05w sweeps the
        // post-warm-up dynamics variant (identical numerics per point, so
        // all variants of one seed share a warm-up prefix).
        for sc in &mut scenarios {
            if sc.name == "fig05w" {
                sc.sweep = SweepSpec {
                    points: warmup::FIG05W_VARIANTS
                        .iter()
                        .map(|&label| ParamPoint {
                            label,
                            ..Default::default()
                        })
                        .collect(),
                    ..SweepSpec::default()
                };
            }
            if sc.name == "fig04" || sc.name == "fig05" {
                sc.sweep = SweepSpec {
                    points: vec![
                        ParamPoint {
                            label: "20-nodes",
                            nodes: Some(20),
                            ..Default::default()
                        },
                        ParamPoint {
                            label: "40-nodes",
                            nodes: Some(40),
                            ..Default::default()
                        },
                        ParamPoint {
                            label: "60-nodes",
                            nodes: Some(60),
                            ..Default::default()
                        },
                    ],
                    ..SweepSpec::default()
                };
            }
        }

        let reg = Registry { scenarios };
        debug_assert!(
            {
                let mut names: Vec<_> = reg.names();
                names.sort_unstable();
                names.dedup();
                names.len() == reg.len()
            },
            "registry names must be unique"
        );
        reg
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// True if the registry holds no scenarios (never, for the standard one).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The scenarios in registry order.
    pub fn iter(&self) -> impl Iterator<Item = &Scenario> {
        self.scenarios.iter()
    }

    /// All scenario names in registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.scenarios.iter().map(|s| s.name).collect()
    }

    /// Looks a scenario up by name.
    pub fn get(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bullet_bench::CommonOpts;

    #[test]
    fn standard_registry_covers_every_figure() {
        let reg = Registry::standard();
        let names = reg.names();
        for expected in [
            "fig04", "fig05", "fig05ts", "fig05w", "fig06", "fig07", "fig08", "fig09", "fig10",
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
            "fig20", "fig21", "fig22",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(reg.len(), 21);
        assert!(reg.get("fig99").is_none());
    }

    #[test]
    fn registry_scenarios_run() {
        let reg = Registry::standard();
        let opts = CommonOpts {
            nodes: Some(6),
            file_mb: Some(0.125),
            time_limit: 1800.0,
            ..CommonOpts::default()
        };
        let fig = reg.get("fig13").expect("registered").run(&opts);
        assert!(!fig.series.is_empty());
    }

    #[test]
    fn fig05w_carries_warm_prefix_hooks_and_variant_points() {
        let reg = Registry::standard();
        let sc = reg.get("fig05w").unwrap();
        assert!(sc.warmup.is_some());
        let labels: Vec<_> = sc.sweep.points.iter().map(|p| p.label).collect();
        assert_eq!(labels, vec!["calm", "paper", "storm"]);
        // Identical numerics per point: all variants of one seed must land
        // in the same prefix group.
        assert!(sc.sweep.points.iter().all(|p| *p
            == ParamPoint {
                label: p.label,
                ..Default::default()
            }));
        // fig05w is the only scenario with a warm-up split.
        assert_eq!(reg.iter().filter(|s| s.warmup.is_some()).count(), 1);
    }

    #[test]
    fn overall_comparisons_sweep_swarm_size() {
        let reg = Registry::standard();
        let sweep = &reg.get("fig05").unwrap().sweep;
        assert_eq!(sweep.points.len(), 3);
        assert!(sweep.points.iter().all(|p| p.nodes.is_some()));
        // Everything else defaults to the identity point.
        assert_eq!(reg.get("fig13").unwrap().sweep.points.len(), 1);
    }
}
