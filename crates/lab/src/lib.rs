//! `bullet-lab` — the scenario lab: every experiment of the evaluation grid
//! as a named, sweepable, parallel-executable scenario.
//!
//! The paper's evaluation (§4) is a grid of *scenario × parameter × seed*
//! cells. This crate turns that grid into data and machinery:
//!
//! * [`scenario`] — the declarative [`Scenario`] model: name, system set,
//!   topology, dynamics, default parameter sweep and seed plan;
//! * [`registry`] — the standard [`Registry`] of scenarios (Figures 4–15 of
//!   the paper plus the beyond-the-paper crash-wave, flash-crowd and
//!   probe-driven time-series scenarios);
//! * [`executor`] — the parallel sweep executor: a work-stealing
//!   `std::thread` pool over (point, seed) cells whose merged output is
//!   **byte-identical for any thread count**, because every cell is an
//!   independent deterministic simulation and results merge by cell index.
//!   Scenarios with a warm-up split (`fig05w`) additionally share each cell
//!   group's warm-up prefix: the executor simulates it once, checkpoints the
//!   runner (`netsim::snapshot`), and forks every cell from the snapshot —
//!   same canonical bytes, less wall clock;
//! * [`cli`] — the `lab` binary (`list` / `run` / `sweep` / `bench` /
//!   `serve` / `trace`) and the one-line `figNN` wrapper entry point;
//! * [`serve`] — the `lab serve` subcommand: open-system service runs
//!   (fig21/fig22) driven by `netsim::service`'s generator-admitted swarms,
//!   reported as sustained goodput and per-cohort completion percentiles
//!   (see `docs/SERVICE_MODE.md`);
//! * [`trace_cmd`] — the `lab trace` subcommand: one scenario run with the
//!   structured trace sink, stats probe and virtual-time profiler enabled,
//!   per-kind summary, JSONL export and the probe replay cross-check (see
//!   `docs/OBSERVABILITY.md`).
//!
//! The experiment bodies themselves stay in `bullet_bench::experiments`;
//! run-time observation (goodput-over-time and friends) comes from
//! `netsim::probe` via the `fig05ts` scenario.

pub mod cli;
pub mod executor;
pub mod registry;
pub mod scenario;
pub mod serve;
pub mod trace_cmd;

pub use cli::{figure_binary_main, lab_main};
pub use executor::{run_indexed, run_sweep, run_sweep_with, CellReport, SweepReport};
pub use registry::Registry;
pub use scenario::{
    DynamicsKind, ParamPoint, Scenario, SeedPlan, SweepSpec, SystemSet, TopologyKind, Warmup,
};
pub use serve::{run_serve, ServeCell, ServeRun};
pub use trace_cmd::{check_replay, traced_run, TracedRun};
