//! The `lab` command-line interface.
//!
//! ```text
//! lab list                         # every registered scenario, one per line
//! lab run <scenario> [fig opts]    # one run, same options as the figNN binaries
//! lab sweep <scenario> [--threads N] [--seeds A,B,..] [--seed-count K]
//!                      [--json PATH] [fig opts]
//! lab bench <scenario> [--threads N,M,..] [--seed-count K]
//!           [--snapshot SCENARIO] [--out PATH]
//!                      [fig opts]   # sweep at each thread count, assert
//!                                   # byte-identical canonical output,
//!                                   # record wall-clock per thread and cell;
//!                                   # --snapshot additionally runs the named
//!                                   # warm-up scenario with prefix sharing
//!                                   # on and off and asserts the canonical
//!                                   # outputs match (fork-vs-fresh oracle)
//! lab serve <scenario> [--threads N,M,..] [--json PATH] [fig opts]
//!                                   # open-system service run (fig21/fig22):
//!                                   # generator-driven swarm arrivals, one
//!                                   # ServiceReport per cell (see `serve`)
//! lab trace <scenario> [--json PATH] [--ring N] [--kind K] [--tail N]
//!                      [fig opts]   # one traced + profiled run, per-kind
//!                                   # summary, JSONL export, probe replay
//!                                   # cross-check (see `trace_cmd`)
//! ```
//!
//! `[fig opts]` are the shared figure options (`--nodes`, `--mb`, `--seed`,
//! …) parsed by [`CommonOpts`]; lab-specific flags are peeled off first.

use std::time::Instant;

use bullet_bench::{emit, CommonOpts};

use crate::executor::{run_sweep, run_sweep_with};
use crate::registry::Registry;

pub(crate) const USAGE: &str = "usage: lab <list|run|sweep|bench|serve|trace> [scenario] [options]
  lab list
  lab run <scenario> [figure options; see any figNN --help]
  lab sweep <scenario> [--threads N] [--seeds A,B,..] [--seed-count K] [--json PATH] [figure options]
  lab bench <scenario> [--threads N,M,..] [--seed-count K] [--snapshot SCENARIO] [--out PATH] [figure options]
  lab serve <scenario> [--threads N,M,..] [--json PATH] [figure options]
  lab trace <scenario> [--json PATH] [--ring N] [--kind K] [--tail N] [figure options]";

/// Entry point of the `lab` binary: parses `args` (without `argv[0]`) and
/// runs the requested subcommand. Returns the process exit code.
pub fn lab_main<I: IntoIterator<Item = String>>(args: I) -> i32 {
    match dispatch(args) {
        Ok(()) => 0,
        Err(msg) => {
            eprintln!("{msg}");
            2
        }
    }
}

fn dispatch<I: IntoIterator<Item = String>>(args: I) -> Result<(), String> {
    let mut args: Vec<String> = args.into_iter().collect();
    if args.is_empty() {
        return Err(USAGE.to_string());
    }
    let command = args.remove(0);
    let registry = Registry::standard();
    match command.as_str() {
        "list" => {
            list(&registry);
            Ok(())
        }
        "run" => {
            let (name, rest) = take_scenario(args)?;
            let scenario = resolve(&registry, &name)?;
            let opts = CommonOpts::parse(rest)?;
            emit(&scenario.run(&opts), &opts);
            Ok(())
        }
        "sweep" => sweep(&registry, args),
        "bench" => bench(&registry, args),
        "serve" => crate::serve::serve(&registry, args),
        "trace" => crate::trace_cmd::trace(&registry, args),
        "--help" | "-h" | "help" => Err(USAGE.to_string()),
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}

pub(crate) fn take_scenario(mut args: Vec<String>) -> Result<(String, Vec<String>), String> {
    if args.is_empty() || args[0].starts_with('-') {
        return Err(format!("expected a scenario name\n{USAGE}"));
    }
    let name = args.remove(0);
    Ok((name, args))
}

pub(crate) fn resolve<'r>(
    registry: &'r Registry,
    name: &str,
) -> Result<&'r crate::scenario::Scenario, String> {
    registry.get(name).ok_or_else(|| {
        format!(
            "unknown scenario '{name}'; available: {}",
            registry.names().join(", ")
        )
    })
}

fn list(registry: &Registry) {
    use std::io::Write;
    // `lab list | head` closes our stdout mid-write; ignore the error
    // instead of panicking like `println!` would.
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let header = format!(
        "{:<8} {:<22} {:<18} {:<18} {:<14} title",
        "name", "systems", "topology", "dynamics", "sweep"
    );
    let _ = writeln!(out, "{header}");
    for sc in registry.iter() {
        let _ = writeln!(
            out,
            "{:<8} {:<22} {:<18} {:<18} {:<14} {}",
            sc.name,
            sc.system.tag(),
            sc.topology.tag(),
            sc.dynamics.tag(),
            format!("{}pt x {}seed", sc.sweep.points.len(), sc.sweep.seeds.count),
            sc.title,
        );
    }
}

/// The `lab bench` record written to `--out` (BENCH_sweep.json in CI):
/// wall-clock per thread count (and per cell within each run) for one sweep.
/// The record only exists when the canonical byte-identity comparison passed
/// — a violation aborts with an error before anything is written.
/// `host_threads` records the parallelism the machine actually offered, and
/// `skipped` the requested thread counts the host could not genuinely run in
/// parallel (they are skipped, not timed — an oversubscribed "4-thread" run
/// on a single-core host would commit misleading flat numbers to the
/// baseline).
#[derive(Debug, serde::Serialize)]
struct BenchRecord {
    scenario: String,
    seeds: usize,
    cells: usize,
    host_threads: usize,
    runs: Vec<BenchRun>,
    skipped: Vec<SkippedRun>,
    /// Warm-prefix sharing check (`--snapshot <scenario>`): the named
    /// scenario runs with sharing on and off, the canonical renderings are
    /// asserted byte-identical (a mismatch aborts the bench before anything
    /// is written), and the sharing run's prefix telemetry lands here.
    snapshot: Option<SnapshotRecord>,
}

/// The `--snapshot` subsection of [`BenchRecord`]: forked-vs-fresh identity
/// plus how much warm-up wall clock the sharing executor saved.
#[derive(Debug, serde::Serialize)]
struct SnapshotRecord {
    scenario: String,
    /// Always true in a written record — a mismatch is a hard error.
    canonical_matches_fresh: bool,
    prefix_cells: usize,
    forked_cells: usize,
    warmup_secs_saved: f64,
    shared_wall_clock_secs: f64,
    fresh_wall_clock_secs: f64,
}

#[derive(Debug, serde::Serialize)]
struct BenchRun {
    threads: usize,
    wall_clock_secs: f64,
    cells: Vec<CellTiming>,
}

/// Wall clock of one sweep cell inside one bench run.
#[derive(Debug, serde::Serialize)]
struct CellTiming {
    point: String,
    seed: u64,
    wall_clock_secs: f64,
}

/// A requested thread count the bench did not run, and why.
#[derive(Debug, serde::Serialize)]
struct SkippedRun {
    threads: usize,
    reason: String,
}

/// Splits the requested bench thread counts into those the host can run
/// without oversubscription (`threads <= host_threads`) and those it cannot.
/// Single-threaded runs always pass: they measure the serial baseline and
/// cannot be oversubscribed.
fn partition_thread_counts(requested: &[usize], host_threads: usize) -> (Vec<usize>, Vec<usize>) {
    requested
        .iter()
        .copied()
        .partition(|&t| t <= host_threads.max(1))
}

/// Lab-specific flags peeled off before [`CommonOpts`] sees the rest.
#[derive(Debug, Default)]
pub(crate) struct SweepArgs {
    pub(crate) threads: Vec<usize>,
    pub(crate) seeds: Option<Vec<u64>>,
    pub(crate) seed_count: Option<usize>,
    pub(crate) json: Option<String>,
    pub(crate) out: Option<String>,
    pub(crate) snapshot: Option<String>,
    pub(crate) rest: Vec<String>,
}

pub(crate) fn parse_sweep_args(args: Vec<String>) -> Result<SweepArgs, String> {
    let mut out = SweepArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| -> Result<String, String> {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--threads" => {
                out.threads = parse_list(&value_for("--threads")?)?;
                if out.threads.contains(&0) {
                    return Err(format!("--threads values must be positive\n{USAGE}"));
                }
            }
            "--seeds" => out.seeds = Some(parse_list(&value_for("--seeds")?)?),
            "--seed-count" => {
                out.seed_count = Some(
                    value_for("--seed-count")?
                        .parse()
                        .map_err(|_| format!("bad --seed-count\n{USAGE}"))?,
                );
            }
            "--json" => out.json = Some(value_for("--json")?),
            "--out" => out.out = Some(value_for("--out")?),
            "--snapshot" => out.snapshot = Some(value_for("--snapshot")?),
            other => out.rest.push(other.to_string()),
        }
    }
    Ok(out)
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Result<Vec<T>, String> {
    s.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .map_err(|_| format!("could not parse '{p}'\n{USAGE}"))
        })
        .collect()
}

/// The seed plan a sweep actually uses: explicit `--seeds` wins, then
/// `--seed-count` over the scenario's base seed (or `--seed`), then the
/// scenario's default plan re-based onto `--seed` if one was given.
fn effective_seeds(
    scenario: &crate::scenario::Scenario,
    sweep_args: &SweepArgs,
    opts: &CommonOpts,
    explicit_seed: bool,
) -> Vec<u64> {
    if let Some(seeds) = &sweep_args.seeds {
        return seeds.clone();
    }
    let mut plan = scenario.sweep.seeds;
    if explicit_seed {
        plan.base = opts.seed;
    }
    if let Some(count) = sweep_args.seed_count {
        plan.count = count;
    }
    plan.seeds()
}

fn sweep(registry: &Registry, args: Vec<String>) -> Result<(), String> {
    let (name, rest) = take_scenario(args)?;
    let scenario = resolve(registry, &name)?;
    let sweep_args = parse_sweep_args(rest)?;
    if sweep_args.out.is_some() {
        return Err(format!(
            "sweep writes its report with --json, not --out\n{USAGE}"
        ));
    }
    if sweep_args.snapshot.is_some() {
        return Err(format!(
            "--snapshot is a bench flag (sweep always shares warm prefixes)\n{USAGE}"
        ));
    }
    let explicit_seed = sweep_args.rest.iter().any(|a| a == "--seed");
    let opts = CommonOpts::parse(sweep_args.rest.clone())?;
    let threads = match sweep_args.threads.as_slice() {
        [] => 1,
        [n] => *n,
        _ => return Err(format!("sweep takes a single --threads value\n{USAGE}")),
    };
    let seeds = effective_seeds(scenario, &sweep_args, &opts, explicit_seed);

    let started = Instant::now();
    let report = run_sweep(scenario, &opts, &seeds, threads);
    let wall = started.elapsed().as_secs_f64();

    // Human summary to stdout; the deterministic artefact goes to --json.
    println!(
        "sweep {}: {} cells ({} points x {} seeds) on {} thread(s)",
        report.scenario,
        report.cells.len(),
        scenario.sweep.points.len(),
        seeds.len(),
        threads
    );
    for cell in &report.cells {
        let fig = &cell.figure;
        let slowest = fig
            .series
            .iter()
            .map(|s| s.max_x())
            .fold(f64::NAN, f64::max);
        println!(
            "  [{} seed {}] {} series, slowest {:.1}s, {:.3}s wall — {}",
            cell.point,
            cell.seed,
            fig.series.len(),
            slowest,
            cell.wall_clock_secs,
            fig.id
        );
    }
    eprintln!("wall_clock_secs: {wall:.3}");
    if let Some(path) = &sweep_args.json {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("failed to write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// `lab bench`: the CI entry point. Runs the same sweep at each requested
/// thread count, *asserts* the canonical renderings are byte-identical (the
/// determinism guarantee the executor makes; per-cell wall-clock telemetry
/// is legitimately schedule-dependent and excluded), and writes a JSON
/// record of the wall-clock per thread count and per cell.
fn bench(registry: &Registry, args: Vec<String>) -> Result<(), String> {
    let (name, rest) = take_scenario(args)?;
    let scenario = resolve(registry, &name)?;
    let sweep_args = parse_sweep_args(rest)?;
    if sweep_args.json.is_some() {
        return Err(format!(
            "bench writes its record with --out, not --json\n{USAGE}"
        ));
    }
    let explicit_seed = sweep_args.rest.iter().any(|a| a == "--seed");
    let opts = CommonOpts::parse(sweep_args.rest.clone())?;
    let requested = if sweep_args.threads.is_empty() {
        vec![1, 4]
    } else {
        sweep_args.threads.clone()
    };
    let seeds = effective_seeds(scenario, &sweep_args, &opts, explicit_seed);

    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (thread_counts, oversubscribed) = partition_thread_counts(&requested, host_threads);
    let mut record = BenchRecord {
        scenario: name.clone(),
        seeds: seeds.len(),
        cells: 0,
        host_threads,
        runs: Vec::new(),
        skipped: oversubscribed
            .into_iter()
            .map(|threads| {
                eprintln!(
                    "skipping {threads}-thread run: host offers only {host_threads} thread(s), \
                     the timing would be oversubscription noise"
                );
                SkippedRun {
                    threads,
                    reason: format!("host offers {host_threads} thread(s)"),
                }
            })
            .collect(),
        snapshot: None,
    };
    let mut reference: Option<String> = None;
    for &threads in &thread_counts {
        let started = Instant::now();
        let report = run_sweep(scenario, &opts, &seeds, threads);
        let wall = started.elapsed().as_secs_f64();
        let json = report.to_canonical_json();
        match &reference {
            None => reference = Some(json),
            Some(expected) => {
                if *expected != json {
                    return Err(format!(
                        "DETERMINISM VIOLATION: {threads}-thread sweep of {name} differs from \
                         {}-thread sweep",
                        thread_counts[0]
                    ));
                }
            }
        }
        record.cells = report.cells.len();
        record.runs.push(BenchRun {
            threads,
            wall_clock_secs: (wall * 1000.0).round() / 1000.0,
            cells: report
                .cells
                .iter()
                .map(|c| CellTiming {
                    point: c.point.clone(),
                    seed: c.seed,
                    wall_clock_secs: (c.wall_clock_secs * 1000.0).round() / 1000.0,
                })
                .collect(),
        });
        eprintln!("threads {threads}: {wall:.3}s wall clock");
    }

    if let Some(snap_name) = &sweep_args.snapshot {
        record.snapshot = Some(bench_snapshot(
            registry,
            snap_name,
            &sweep_args,
            &opts,
            explicit_seed,
        )?);
    }

    let json =
        serde_json::to_string_pretty(&record).expect("bench records are always serialisable");
    println!("{json}");
    if let Some(path) = &sweep_args.out {
        std::fs::write(path, &json).map_err(|e| format!("failed to write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

/// The `--snapshot` leg of `lab bench`: runs the named warm-up scenario's
/// sweep with prefix sharing on and off (both single-threaded — the check
/// is about fork-vs-fresh identity, not parallelism, which the main bench
/// legs already assert) and *asserts* the canonical renderings are
/// byte-identical. A divergence is a hard error: the snapshot contract is
/// broken and nothing is written.
fn bench_snapshot(
    registry: &Registry,
    name: &str,
    sweep_args: &SweepArgs,
    opts: &CommonOpts,
    explicit_seed: bool,
) -> Result<SnapshotRecord, String> {
    let scenario = resolve(registry, name)?;
    if scenario.warmup.is_none() {
        return Err(format!(
            "scenario '{name}' has no warm-up split point; --snapshot needs one (try fig05w)\n{USAGE}"
        ));
    }
    let seeds = effective_seeds(scenario, sweep_args, opts, explicit_seed);

    let started = Instant::now();
    let shared = run_sweep_with(scenario, opts, &seeds, 1, true);
    let shared_wall = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let fresh = run_sweep_with(scenario, opts, &seeds, 1, false);
    let fresh_wall = started.elapsed().as_secs_f64();

    if shared.to_canonical_json() != fresh.to_canonical_json() {
        return Err(format!(
            "SNAPSHOT DIVERGENCE: forked sweep of {name} differs from the uninterrupted sweep \
             — the checkpoint/resume contract is broken"
        ));
    }
    eprintln!(
        "snapshot {name}: {} prefixes -> {} forked cells, {:.3}s saved \
         (shared {shared_wall:.3}s vs fresh {fresh_wall:.3}s), canonical identical",
        shared.prefix_cells, shared.forked_cells, shared.warmup_secs_saved
    );
    let round = |s: f64| (s * 1000.0).round() / 1000.0;
    Ok(SnapshotRecord {
        scenario: name.to_string(),
        canonical_matches_fresh: true,
        prefix_cells: shared.prefix_cells,
        forked_cells: shared.forked_cells,
        warmup_secs_saved: round(shared.warmup_secs_saved),
        shared_wall_clock_secs: round(shared_wall),
        fresh_wall_clock_secs: round(fresh_wall),
    })
}

/// The whole of a `figNN` binary: resolve `name` in the standard registry
/// and behave exactly like `lab run <name>` (options from the process
/// arguments). Exits the process on unknown options.
pub fn figure_binary_main(name: &str) {
    let registry = Registry::standard();
    let scenario = registry
        .get(name)
        .unwrap_or_else(|| unreachable!("figure binaries are generated from registry names"));
    bullet_bench::figure_main(|opts| scenario.run(opts));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::SeedPlan;

    #[test]
    fn sweep_args_split_lab_flags_from_figure_flags() {
        let args = vec![
            "--threads".to_string(),
            "4".to_string(),
            "--nodes".to_string(),
            "8".to_string(),
            "--seeds".to_string(),
            "1,2,3".to_string(),
        ];
        let parsed = parse_sweep_args(args).unwrap();
        assert_eq!(parsed.threads, vec![4]);
        assert_eq!(parsed.seeds, Some(vec![1, 2, 3]));
        assert_eq!(parsed.rest, vec!["--nodes", "8"]);
        let opts = CommonOpts::parse(parsed.rest).unwrap();
        assert_eq!(opts.nodes, Some(8));
    }

    #[test]
    fn effective_seeds_priority_order() {
        let registry = Registry::standard();
        let sc = registry.get("fig13").unwrap();
        let opts = CommonOpts {
            seed: 42,
            ..CommonOpts::default()
        };

        // Explicit list wins outright.
        let mut args = SweepArgs {
            seeds: Some(vec![9, 8]),
            ..Default::default()
        };
        assert_eq!(effective_seeds(sc, &args, &opts, true), vec![9, 8]);

        // Otherwise the plan is re-based on --seed and resized by --seed-count.
        args.seeds = None;
        args.seed_count = Some(2);
        assert_eq!(effective_seeds(sc, &args, &opts, true), vec![42, 43]);

        // Without --seed the scenario's base applies.
        let plan = SeedPlan::default();
        args.seed_count = None;
        assert_eq!(effective_seeds(sc, &args, &opts, false), plan.seeds());
    }

    #[test]
    fn zero_thread_counts_are_usage_errors_not_panics() {
        for cmd in ["sweep", "bench"] {
            let err = dispatch(vec![
                cmd.to_string(),
                "fig13".to_string(),
                "--threads".to_string(),
                "0".to_string(),
            ])
            .unwrap_err();
            assert!(err.contains("positive"), "{cmd}: {err}");
        }
    }

    #[test]
    fn snapshot_flag_is_bench_only_and_needs_a_warmup_scenario() {
        let err = dispatch(vec![
            "sweep".to_string(),
            "fig13".to_string(),
            "--snapshot".to_string(),
            "fig05w".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("bench flag"), "{err}");
        // --snapshot on a scenario without a warm-up split is an error, not
        // a silent no-op (the CI gate would otherwise check nothing).
        let err = dispatch(vec![
            "bench".to_string(),
            "fig13".to_string(),
            "--threads".to_string(),
            "1".to_string(),
            "--seed-count".to_string(),
            "1".to_string(),
            "--nodes".to_string(),
            "6".to_string(),
            "--mb".to_string(),
            "0.125".to_string(),
            "--time-limit".to_string(),
            "1800".to_string(),
            "--snapshot".to_string(),
            "fig13".to_string(),
        ])
        .unwrap_err();
        assert!(err.contains("no warm-up split"), "{err}");
    }

    #[test]
    fn unknown_scenario_is_a_helpful_error() {
        let code_err = dispatch(vec!["run".to_string(), "nope".to_string()]).unwrap_err();
        assert!(code_err.contains("unknown scenario"));
        assert!(code_err.contains("fig04"));
    }

    #[test]
    fn bench_rejects_missing_scenario() {
        assert!(dispatch(vec!["bench".to_string()]).is_err());
    }

    #[test]
    fn oversubscribed_thread_counts_are_skipped_not_timed() {
        // A single-core host runs the serial baseline and skips the rest —
        // timing a "4-thread" run there would commit false parallelism to
        // the baseline record.
        assert_eq!(partition_thread_counts(&[1, 4], 1), (vec![1], vec![4]));
        // A host at or above the requested width runs everything.
        assert_eq!(partition_thread_counts(&[1, 4], 4), (vec![1, 4], vec![]));
        assert_eq!(
            partition_thread_counts(&[1, 2, 8], 4),
            (vec![1, 2], vec![8])
        );
        // Even a host reporting zero available parallelism (the API failed)
        // still runs the serial baseline.
        assert_eq!(partition_thread_counts(&[1, 2], 0), (vec![1], vec![2]));
    }
}
