//! The `lab trace` subcommand: one scenario's Bullet′ workload run with the
//! full observability stack on — structured trace sink, stats probe and the
//! virtual-time profiler — followed by the analyzer pass.
//!
//! ```text
//! lab trace <scenario> [--json PATH] [--ring N] [--kind K] [--tail N] [figure options]
//! ```
//!
//! The run collects every [`TraceRecord`] in a bounded ring (`--ring`, a
//! memory cap: on overflow the *oldest* records drop, exactly like the
//! runner-side [`RingSink`]), prints the per-kind summary and the profiler's
//! wall-clock attribution, optionally writes the stream as JSONL (`--json`,
//! filtered to one record kind with `--kind`), and then **cross-checks the
//! trace against the probe**: [`replay_goodput`] rebuilds the per-node
//! goodput series from nothing but `block_received` and `probe_tick` records
//! and must reproduce the live [`StatsProbe`](netsim::StatsProbe) series
//! bit-for-bit. A complete trace that cannot replay the probe means the
//! instrumentation lies, so the mismatch is a hard error (for rings that
//! overflowed, or churn dynamics that reset cumulative counters, it degrades
//! to a warning).
//!
//! Only scenarios with a Bullet′ runner are traceable; the Shotgun tool
//! (`fig15`) is rejected. The traced workload mirrors the scenario's reduced
//! figure workload (same topology family, dynamics, file and block sizes),
//! not the full multi-system comparison — tracing all four systems at once
//! would interleave four unrelated streams.

use std::cell::RefCell;
use std::rc::Rc;

use bullet_bench::systems::{cascade_schedule, paper_dynamic_schedule};
use bullet_bench::CommonOpts;
use bullet_prime::Config;
use desim::{RngFactory, SimDuration, SimTime};
use dissem_codec::FileSpec;
use netsim::dynamics::{crash_wave_schedule, cross_traffic_square_wave, flash_crowd_schedule};
use netsim::{
    mbps, replay_goodput, summarize, topology, NodeEvent, NodeId, ProfileReport, RingSink,
    RunReport, TimeSeries, Topology, TraceRecord, TraceSink,
};

use crate::registry::Registry;
use crate::scenario::{DynamicsKind, Scenario, SystemSet, TopologyKind};

const USAGE: &str = "usage: lab trace <scenario> [--json PATH] [--ring N] [--kind K] [--tail N] \
[figure options]";

/// Every record kind the trace vocabulary emits (`--kind` is validated
/// against this list so a typo is a usage error, not an empty filter).
const KINDS: &[&str] = &[
    "msg",
    "timer",
    "block_sent",
    "block_received",
    "conn_schedule",
    "conn_cancel",
    "solver",
    "node_join",
    "node_leave",
    "node_crash",
    "node_retire",
    "link_change",
    "cross_change",
    "probe_tick",
    "snapshot_resume",
];

/// Default ring capacity: comfortably above any reduced-scale run's record
/// count, bounded so a `--full` trace cannot exhaust memory.
const DEFAULT_RING: usize = 1 << 22;

/// Flags peeled off before [`CommonOpts`] sees the rest.
#[derive(Debug)]
struct TraceArgs {
    json: Option<String>,
    ring: usize,
    kind: Option<String>,
    tail: usize,
    rest: Vec<String>,
}

impl Default for TraceArgs {
    fn default() -> Self {
        TraceArgs {
            json: None,
            ring: DEFAULT_RING,
            kind: None,
            tail: 0,
            rest: Vec::new(),
        }
    }
}

fn parse_trace_args(args: Vec<String>) -> Result<TraceArgs, String> {
    let mut out = TraceArgs::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        let mut value_for = |name: &str| -> Result<String, String> {
            it.next()
                .ok_or_else(|| format!("{name} requires a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--json" => out.json = Some(value_for("--json")?),
            "--ring" => {
                out.ring = value_for("--ring")?
                    .parse()
                    .map_err(|_| format!("bad --ring\n{USAGE}"))?;
                if out.ring == 0 {
                    return Err(format!("--ring must be positive\n{USAGE}"));
                }
            }
            "--kind" => {
                let kind = value_for("--kind")?;
                if !KINDS.contains(&kind.as_str()) {
                    return Err(format!(
                        "unknown record kind '{kind}'; one of: {}\n{USAGE}",
                        KINDS.join(", ")
                    ));
                }
                out.kind = Some(kind);
            }
            "--tail" => {
                out.tail = value_for("--tail")?
                    .parse()
                    .map_err(|_| format!("bad --tail\n{USAGE}"))?;
            }
            other => out.rest.push(other.to_string()),
        }
    }
    Ok(out)
}

/// A [`TraceSink`] forwarding into a shared ring, so the CLI gets the records
/// back after the runner (which owns the boxed sink) is dropped.
struct SharedSink {
    ring: Rc<RefCell<RingSink>>,
}

impl TraceSink for SharedSink {
    fn record(&mut self, rec: &TraceRecord) {
        self.ring.borrow_mut().record(rec);
    }

    fn recorded(&self) -> u64 {
        self.ring.borrow().recorded()
    }

    fn dropped(&self) -> u64 {
        self.ring.borrow().dropped()
    }
}

/// The traced Bullet′ workload of a scenario: the topology family and file
/// shape of its reduced figure workload (see `bullet_bench::experiments`),
/// overridable through the usual figure options.
fn build_workload(kind: TopologyKind, opts: &CommonOpts, rng: &RngFactory) -> (Topology, FileSpec) {
    match kind {
        TopologyKind::ModelNetMesh => {
            let n = opts.nodes_or(40, 100);
            let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(16));
            (topology::modelnet_mesh(n, 0.03, rng), file)
        }
        TopologyKind::ConstrainedAccess => {
            let n = opts.nodes_or(40, 100);
            let file = FileSpec::new(opts.file_bytes_or(4.0, 10.0), opts.block_bytes_or(16));
            (topology::constrained_access(n), file)
        }
        TopologyKind::HighBdpClique => {
            let n = opts.nodes.unwrap_or(25);
            let file = FileSpec::new(opts.file_bytes_or(8.0, 100.0), opts.block_bytes_or(8));
            (topology::high_bdp_clique(n, 0.0, rng), file)
        }
        TopologyKind::Cascade => {
            // Source + 6 fast peers + the victim, as in fig12.
            let file = FileSpec::new(opts.file_bytes_or(10.0, 100.0), opts.block_bytes_or(8));
            (topology::cascade_topology(7), file)
        }
        TopologyKind::PlanetLabLike => {
            let n = opts.nodes_or(41, 41);
            let file = FileSpec::new(opts.file_bytes_or(10.0, 50.0), opts.block_bytes_or(100));
            (topology::planetlab_like(n, rng), file)
        }
        TopologyKind::SharedCore => {
            let n = opts.nodes_or(16, 32);
            let file = FileSpec::new(opts.file_bytes_or(4.0, 20.0), opts.block_bytes_or(16));
            (topology::shared_core_mesh(n, mbps(4.0), 0.0, rng), file)
        }
        TopologyKind::UniformSwarm => {
            let n = opts.nodes_or(1_000, 10_000);
            let file = FileSpec::new(opts.file_bytes_or(2.0, 2.0), opts.block_bytes_or(16));
            (topology::uniform_swarm(n, rng), file)
        }
    }
}

/// Median completion time of the dynamics-free run — the churn scenarios
/// calibrate their crash/join windows off it exactly like fig16/fig17, so
/// "mid-transfer" stays mid-transfer at every workload scale.
fn clean_median(kind: TopologyKind, opts: &CommonOpts, rng: &RngFactory) -> f64 {
    let (topo, file) = build_workload(kind, opts, rng);
    let cfg = Config::new(file);
    let mut runner = bullet_prime::build_runner(topo, &cfg, rng);
    let report = runner.run(SimDuration::from_secs_f64(opts.time_limit));
    let end = report.end_time.as_secs_f64();
    let mut times: Vec<f64> = report
        .completion_secs
        .iter()
        .skip(1) // Node 0 is the source.
        .map(|c| c.unwrap_or(end))
        .collect();
    times.sort_by(f64::total_cmp);
    if times.is_empty() {
        end
    } else {
        times[times.len() / 2]
    }
}

/// The result of one traced scenario run, records included.
#[derive(Debug)]
pub struct TracedRun {
    /// The run's report (probe time-series attached).
    pub report: RunReport,
    /// The profiler's wall-clock attribution.
    pub profile: Option<ProfileReport>,
    /// Number of overlay nodes.
    pub nodes: usize,
    /// The retained trace records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records the sink accepted in total.
    pub recorded: u64,
    /// Records the ring dropped on overflow (oldest first).
    pub dropped: u64,
}

/// Runs `scenario`'s Bullet′ workload with trace sink, probe and profiler
/// enabled, retaining up to `ring` records.
///
/// # Errors
///
/// Returns an error for scenarios without a Bullet′ runner (`Shotgun`).
pub fn traced_run(
    scenario: &Scenario,
    opts: &CommonOpts,
    ring: usize,
) -> Result<TracedRun, String> {
    if scenario.system == SystemSet::Shotgun {
        return Err(format!(
            "scenario '{}' runs the Shotgun tool, which has no Bullet' runner to trace",
            scenario.name
        ));
    }
    if scenario.dynamics == DynamicsKind::OpenArrivals {
        return Err(format!(
            "scenario '{}' is an open-system service run; use `lab serve {}` \
             (its ServiceReport carries the steady-state series a trace would)",
            scenario.name, scenario.name
        ));
    }
    let tick = opts.tick.unwrap_or(2.0);
    let rng = RngFactory::new(opts.seed);
    let (topo, file) = build_workload(scenario.topology, opts, &rng);
    let nodes = topo.len();
    let cfg = Config::new(file);

    let shared = Rc::new(RefCell::new(RingSink::new(ring)));
    let mut runner = bullet_prime::build_runner(topo, &cfg, &rng);
    runner.set_trace_sink(Box::new(SharedSink {
        ring: Rc::clone(&shared),
    }));
    runner.enable_profiling(10.0);
    runner.record_timeseries(SimDuration::from_secs_f64(tick));

    match scenario.dynamics {
        DynamicsKind::Static => {}
        DynamicsKind::BandwidthChanges => {
            for (at, batch) in paper_dynamic_schedule(nodes, opts.time_limit, &rng) {
                runner.schedule_link_change(at, batch);
            }
        }
        DynamicsKind::CascadingDegrade => {
            // One degradation every 25 s over a ~100 MB download, scaled with
            // the file like fig12.
            let period = 25.0 * (file.file_bytes as f64 / (100.0 * 1024.0 * 1024.0));
            for (at, batch) in cascade_schedule(nodes - 1, period.max(1.0)) {
                runner.schedule_link_change(at, batch);
            }
        }
        DynamicsKind::CrashWave | DynamicsKind::FlashCrowd => {
            let median = clean_median(scenario.topology, opts, &rng);
            let churn = if scenario.dynamics == DynamicsKind::CrashWave {
                crash_wave_schedule(
                    nodes,
                    0.25,
                    SimTime::from_secs_f64(0.2 * median),
                    SimTime::from_secs_f64(0.6 * median),
                    &rng,
                )
            } else {
                let initial = 1 + (nodes - 1) / 4; // source + 25% of receivers
                flash_crowd_schedule(
                    nodes,
                    initial,
                    SimTime::from_secs_f64(0.25 * median),
                    SimTime::from_secs_f64(0.75 * median),
                )
            };
            for (at, event) in &churn {
                if let NodeEvent::Join(node) = event {
                    runner.set_inactive_at_start(*node);
                }
                runner.schedule_node_event(*at, *event);
            }
        }
        DynamicsKind::OpenArrivals => {
            unreachable!("open-arrivals scenarios were rejected before the workload was built")
        }
        DynamicsKind::CrossTraffic => {
            // The fig19 square wave: a CBR stream occupying half the shared
            // core, one boundary every ~20 s scaled with the file.
            let period = (20.0 * file.file_bytes as f64 / (4.0 * 1024.0 * 1024.0)).max(4.0);
            let cross = cross_traffic_square_wave(
                (NodeId(0), NodeId(1)),
                mbps(2.0),
                SimDuration::from_secs_f64(period),
                SimDuration::from_secs_f64(opts.time_limit),
            );
            for &(at, change) in &cross {
                runner.schedule_cross_traffic(at, change);
            }
        }
    }

    let report = runner.run(SimDuration::from_secs_f64(opts.time_limit));
    let profile = runner.take_profile();
    drop(runner); // Releases the boxed sink, leaving `shared` sole owner.
    let ring = Rc::try_unwrap(shared)
        .map_err(|_| "trace ring still shared after the run".to_string())?
        .into_inner();
    let (recorded, dropped) = (ring.recorded(), ring.dropped());
    Ok(TracedRun {
        report,
        profile,
        nodes,
        records: ring.into_records(),
        recorded,
        dropped,
    })
}

/// Compares the trace-replayed goodput series against the live probe's.
/// Returns a human-readable success summary, or the first mismatch.
pub fn check_replay(
    records: &[TraceRecord],
    series: &TimeSeries,
    nodes: usize,
) -> Result<String, String> {
    let replayed = replay_goodput(records, nodes)?;
    if replayed.len() != series.samples.len() {
        return Err(format!(
            "replay produced {} samples, the probe recorded {}",
            replayed.len(),
            series.samples.len()
        ));
    }
    for (r, s) in replayed.iter().zip(&series.samples) {
        if (r.time_secs - s.time_secs).abs() > 1e-9 {
            return Err(format!(
                "sample instants diverge: replayed t={:.6}s vs probe t={:.6}s",
                r.time_secs, s.time_secs
            ));
        }
        for (i, (rg, sn)) in r.goodput_bps.iter().zip(&s.nodes).enumerate() {
            // Both sides difference the same u64 counters over the same dt,
            // so the match is exact up to float noise.
            let tol = 1e-6 * sn.goodput_bps.abs().max(1.0);
            if (rg - sn.goodput_bps).abs() > tol {
                return Err(format!(
                    "t={:.1}s node {i}: replayed {:.1} bps vs probe {:.1} bps",
                    r.time_secs, rg, sn.goodput_bps
                ));
            }
        }
    }
    Ok(format!(
        "{} probe samples x {nodes} nodes reproduced from the trace",
        replayed.len()
    ))
}

/// The `lab trace` subcommand body.
pub fn trace(registry: &Registry, args: Vec<String>) -> Result<(), String> {
    let (name, rest) = crate::cli::take_scenario(args)?;
    let scenario = crate::cli::resolve(registry, &name)?;
    let targs = parse_trace_args(rest)?;
    let opts = CommonOpts::parse(targs.rest.clone())?;

    let run = traced_run(scenario, &opts, targs.ring)?;
    let keep = |rec: &&TraceRecord| match &targs.kind {
        Some(kind) => rec.ev.kind() == kind,
        None => true,
    };

    if let Some(path) = &targs.json {
        let mut out = String::new();
        let mut lines = 0u64;
        for rec in run.records.iter().filter(keep) {
            out.push_str(&serde_json::to_string(rec).expect("trace records always serialize"));
            out.push('\n');
            lines += 1;
        }
        std::fs::write(path, out).map_err(|e| format!("failed to write {path}: {e}"))?;
        eprintln!("wrote {path} ({lines} lines)");
    }

    println!(
        "trace {name}: {} nodes, {} events, virtual end {:.1}s ({:?})",
        run.nodes,
        run.report.events,
        run.report.end_time.as_secs_f64(),
        run.report.reason,
    );
    println!(
        "records: {} emitted, {} dropped (ring capacity {}), {} retained",
        run.recorded,
        run.dropped,
        targs.ring,
        run.records.len()
    );
    let summary = summarize(&run.records);
    for (kind, count) in &summary.by_kind {
        println!("  {kind:<16} {count:>10}");
    }
    if let (Some(first), Some(last)) = (summary.first_t, summary.last_t) {
        println!("stream extent: {first:.3}s .. {last:.3}s");
    }

    if targs.tail > 0 {
        let shown: Vec<&TraceRecord> = run.records.iter().filter(keep).collect();
        let skip = shown.len().saturating_sub(targs.tail);
        for rec in &shown[skip..] {
            println!(
                "{}",
                serde_json::to_string(rec).expect("trace records always serialize")
            );
        }
    }

    let series = run
        .report
        .timeseries
        .as_ref()
        .expect("traced runs install the stats probe");
    // A churn run legitimately diverges: crashes reset cumulative counters
    // the replay cannot see. An overflowed ring lost the stream's head.
    let strict = run.dropped == 0
        && !matches!(
            scenario.dynamics,
            DynamicsKind::CrashWave | DynamicsKind::FlashCrowd
        );
    match check_replay(&run.records, series, run.nodes) {
        Ok(msg) => println!("replay check: OK — {msg}"),
        Err(msg) if strict => return Err(format!("replay check FAILED: {msg}")),
        Err(msg) => println!(
            "replay check: skipped ({msg}; {} records dropped, {} dynamics)",
            run.dropped,
            scenario.dynamics.tag()
        ),
    }

    if let Some(profile) = &run.profile {
        println!(
            "profiler (wall-clock attribution, {} events):",
            run.report.events
        );
        for line in profile.lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_args_split_trace_flags_from_figure_flags() {
        let args = vec![
            "--json".to_string(),
            "out.jsonl".to_string(),
            "--ring".to_string(),
            "128".to_string(),
            "--kind".to_string(),
            "block_received".to_string(),
            "--tail".to_string(),
            "5".to_string(),
            "--nodes".to_string(),
            "8".to_string(),
        ];
        let parsed = parse_trace_args(args).unwrap();
        assert_eq!(parsed.json.as_deref(), Some("out.jsonl"));
        assert_eq!(parsed.ring, 128);
        assert_eq!(parsed.kind.as_deref(), Some("block_received"));
        assert_eq!(parsed.tail, 5);
        assert_eq!(parsed.rest, vec!["--nodes", "8"]);
        let opts = CommonOpts::parse(parsed.rest).unwrap();
        assert_eq!(opts.nodes, Some(8));
    }

    #[test]
    fn bogus_kind_and_zero_ring_are_usage_errors() {
        let err = parse_trace_args(vec!["--kind".to_string(), "bogus".to_string()]).unwrap_err();
        assert!(err.contains("unknown record kind"));
        assert!(err.contains("block_received"), "lists the vocabulary");
        let err = parse_trace_args(vec!["--ring".to_string(), "0".to_string()]).unwrap_err();
        assert!(err.contains("positive"));
    }

    #[test]
    fn shotgun_scenarios_are_not_traceable() {
        let registry = Registry::standard();
        let fig15 = registry.get("fig15").expect("registered");
        let err = traced_run(fig15, &CommonOpts::default(), 16).unwrap_err();
        assert!(err.contains("Shotgun"), "{err}");
    }

    #[test]
    fn open_system_scenarios_point_at_lab_serve() {
        let registry = Registry::standard();
        for name in ["fig21", "fig22"] {
            let sc = registry.get(name).expect("registered");
            let err = traced_run(sc, &CommonOpts::default(), 16).unwrap_err();
            assert!(err.contains("lab serve"), "{name}: {err}");
        }
    }

    #[test]
    fn traced_fig05_replays_the_probe_series_from_the_ring() {
        // The acceptance check at smoke scale: the trace stream alone must
        // reproduce the StatsProbe goodput series.
        let registry = Registry::standard();
        let fig05 = registry.get("fig05").expect("registered");
        let opts = CommonOpts {
            nodes: Some(6),
            file_mb: Some(0.125),
            time_limit: 1800.0,
            tick: Some(1.0),
            ..CommonOpts::default()
        };
        let run = traced_run(fig05, &opts, DEFAULT_RING).unwrap();
        assert_eq!(run.dropped, 0, "smoke run must fit the default ring");
        assert_eq!(run.recorded as usize, run.records.len());
        assert!(run.records.len() > 100, "a real run emits many records");
        let series = run.report.timeseries.as_ref().expect("probe installed");
        let msg = check_replay(&run.records, series, run.nodes).expect("replay must match");
        assert!(msg.contains("6 nodes"), "{msg}");
        // The profiler saw the run too.
        let profile = run.profile.expect("profiling was enabled");
        assert!(profile.total_nanos() > 0);
    }
}
