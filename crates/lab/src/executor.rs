//! The parallel sweep executor.
//!
//! A sweep is the cartesian product of a scenario's parameter points and its
//! seed plan. Every cell is an independent deterministic simulation (each
//! builds its own `RngFactory` from the cell seed), so cells can execute on
//! any thread in any order — the executor hands cells to a worker pool
//! through a shared atomic cursor (idle workers steal the next unclaimed
//! cell) and merges results **by cell index**. The merged [`SweepReport`] is
//! therefore byte-identical for any `--threads` value, which
//! `tests/lab_smoke.rs` asserts and `lab bench` re-checks on every CI run.
//!
//! No thread pool crate, channels or scoped-thread helpers from outside the
//! standard library are used (the build environment is offline):
//! `std::thread::scope` plus one `AtomicUsize` and one `Mutex` around the
//! result table is the entire machinery.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use bullet_bench::{CommonOpts, Figure};
use serde::Serialize;

use crate::scenario::Scenario;

/// One executed sweep cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    /// Label of the parameter point the cell ran.
    pub point: String,
    /// Experiment seed of the cell.
    pub seed: u64,
    /// The resulting figure.
    pub figure: Figure,
}

/// The merged result of a sweep, in deterministic cell order
/// (parameter-point major, seed minor).
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Scenario name.
    pub scenario: String,
    /// One entry per (point, seed) cell.
    pub cells: Vec<CellReport>,
}

impl SweepReport {
    /// Canonical JSON rendering (the byte-identity unit of the determinism
    /// guarantee).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep reports are always serialisable")
    }
}

/// Runs `scenario`'s sweep (its parameter points × `seeds`) on `threads`
/// workers and merges the per-cell figures by cell index.
///
/// `base` supplies the options every cell starts from; each cell applies its
/// parameter point's overrides and its seed. With `threads == 1` the cells
/// run serially on the calling thread; the output is identical either way.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn run_sweep(
    scenario: &Scenario,
    base: &CommonOpts,
    seeds: &[u64],
    threads: usize,
) -> SweepReport {
    assert!(threads > 0, "need at least one worker");
    // Deterministic cell enumeration: point-major, seed-minor.
    let cells: Vec<(usize, u64)> = scenario
        .sweep
        .points
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| seeds.iter().map(move |&s| (pi, s)))
        .collect();

    let mut results: Vec<Option<CellReport>> = Vec::new();
    results.resize_with(cells.len(), || None);

    let run_cell = |&(pi, seed): &(usize, u64)| -> CellReport {
        let point = &scenario.sweep.points[pi];
        let opts = scenario.cell_opts(base, point, seed);
        CellReport {
            point: point.label.to_string(),
            seed,
            figure: scenario.run(&opts),
        }
    };

    if threads == 1 || cells.len() <= 1 {
        for (i, cell) in cells.iter().enumerate() {
            results[i] = Some(run_cell(cell));
        }
    } else {
        let cursor = AtomicUsize::new(0);
        let table = Mutex::new(&mut results);
        let workers = threads.min(cells.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Work stealing: claim the next unexecuted cell.
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(i) else { break };
                    let report = run_cell(cell);
                    table.lock().expect("no worker panicked holding the lock")[i] = Some(report);
                });
            }
        });
    }

    SweepReport {
        scenario: scenario.name.to_string(),
        cells: results
            .into_iter()
            .map(|c| c.expect("every claimed cell stores a result"))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn tiny() -> CommonOpts {
        CommonOpts {
            nodes: Some(6),
            file_mb: Some(0.125),
            time_limit: 1800.0,
            ..CommonOpts::default()
        }
    }

    #[test]
    fn sweep_enumerates_points_major_seeds_minor() {
        let reg = Registry::standard();
        let sc = reg.get("fig13").unwrap();
        let report = run_sweep(sc, &tiny(), &[1, 2], 1);
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].seed, 1);
        assert_eq!(report.cells[1].seed, 2);
        assert!(report.cells.iter().all(|c| c.point == "default"));
    }

    #[test]
    fn parallel_sweep_is_byte_identical_to_serial() {
        let reg = Registry::standard();
        let sc = reg.get("fig13").unwrap();
        let serial = run_sweep(sc, &tiny(), &[10, 11, 12], 1).to_json();
        let parallel = run_sweep(sc, &tiny(), &[10, 11, 12], 3).to_json();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn thread_surplus_is_harmless() {
        let reg = Registry::standard();
        let sc = reg.get("fig13").unwrap();
        let report = run_sweep(sc, &tiny(), &[5], 8);
        assert_eq!(report.cells.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let reg = Registry::standard();
        let sc = reg.get("fig13").unwrap();
        run_sweep(sc, &tiny(), &[1], 0);
    }
}
