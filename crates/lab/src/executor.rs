//! The parallel sweep executor.
//!
//! A sweep is the cartesian product of a scenario's parameter points and its
//! seed plan. Every cell is an independent deterministic simulation (each
//! builds its own `RngFactory` from the cell seed), so cells can execute on
//! any thread in any order — the executor hands cells to a worker pool
//! through a shared atomic cursor (idle workers steal the next unclaimed
//! cell) and merges results **by cell index**. The canonical JSON rendering
//! ([`SweepReport::to_canonical_json`]) is therefore byte-identical for any
//! `--threads` value, which `tests/lab_smoke.rs` asserts and `lab bench`
//! re-checks on every CI run; the full rendering ([`SweepReport::to_json`])
//! additionally carries per-cell wall-clock telemetry, which is machine- and
//! schedule-dependent by nature and excluded from the identity guarantee.
//!
//! Cells are claimed in **longest-first order**: the cursor walks a
//! precomputed permutation that sorts cells by estimated cost (simulated
//! work grows roughly with swarm-size² × file size), descending. Sweeps such
//! as fig05's scale the swarm across points, so naive enumeration order ends
//! with the heaviest cells — a worker that claims one last serialises the
//! entire tail while the other workers sit idle, which is exactly the
//! "4 threads ≈ 1 thread" pathology. Longest-first is classic LPT list
//! scheduling: start the dominant cells immediately and let the cheap ones
//! fill the remaining capacity.
//!
//! No thread pool crate, channels or scoped-thread helpers from outside the
//! standard library are used (the build environment is offline):
//! `std::thread::scope`, one `AtomicUsize` cursor and a pre-split result
//! table whose disjoint slots are written lock-free (each index is claimed
//! by exactly one worker) is the entire machinery.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use bullet_bench::{CommonOpts, Figure, WarmPrefix};
use serde::Serialize;

use crate::scenario::{ParamPoint, Scenario, Warmup};

/// One executed sweep cell.
#[derive(Debug, Clone, Serialize)]
pub struct CellReport {
    /// Label of the parameter point the cell ran.
    pub point: String,
    /// Experiment seed of the cell.
    pub seed: u64,
    /// Wall-clock seconds the cell's simulation took (telemetry: machine-
    /// and schedule-dependent, excluded from the byte-identity guarantee).
    pub wall_clock_secs: f64,
    /// The resulting figure.
    pub figure: Figure,
}

/// The merged result of a sweep, in deterministic cell order
/// (parameter-point major, seed minor).
#[derive(Debug, Clone, Serialize)]
pub struct SweepReport {
    /// Scenario name.
    pub scenario: String,
    /// Number of shared warm-up prefixes simulated (0 when the scenario has
    /// no warm-up split or prefix sharing was off). Telemetry: excluded from
    /// the canonical rendering like the wall clocks.
    pub prefix_cells: usize,
    /// Number of cells forked from a shared prefix (0 when sharing is off).
    pub forked_cells: usize,
    /// Wall-clock seconds prefix sharing saved: Σ over groups of the
    /// prefix's wall clock × (group size − 1) — the warm-ups that were *not*
    /// re-simulated. Machine-dependent telemetry.
    pub warmup_secs_saved: f64,
    /// One entry per (point, seed) cell.
    pub cells: Vec<CellReport>,
}

/// Timing-free view of a cell for the canonical rendering.
struct CanonicalCell<'a> {
    point: &'a String,
    seed: u64,
    figure: &'a Figure,
}

// The vendored serde_derive subset does not handle lifetime parameters, so
// the view structs lower themselves to the data model by hand; field order
// mirrors the derived [`CellReport`]/[`SweepReport`] layout minus the
// telemetry.
impl Serialize for CanonicalCell<'_> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("point".to_string(), self.point.to_value()),
            ("seed".to_string(), self.seed.to_value()),
            ("figure".to_string(), self.figure.to_value()),
        ])
    }
}

/// Timing-free view of a sweep for the canonical rendering.
struct CanonicalSweep<'a> {
    scenario: &'a String,
    cells: Vec<CanonicalCell<'a>>,
}

impl Serialize for CanonicalSweep<'_> {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("scenario".to_string(), self.scenario.to_value()),
            ("cells".to_string(), self.cells.to_value()),
        ])
    }
}

impl SweepReport {
    /// Full JSON rendering, including the per-cell wall-clock telemetry.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep reports are always serialisable")
    }

    /// Canonical JSON rendering — the byte-identity unit of the determinism
    /// guarantee: identical for any thread count because the wall-clock
    /// telemetry (the only nondeterministic field) is omitted.
    pub fn to_canonical_json(&self) -> String {
        let view = CanonicalSweep {
            scenario: &self.scenario,
            cells: self
                .cells
                .iter()
                .map(|c| CanonicalCell {
                    point: &c.point,
                    seed: c.seed,
                    figure: &c.figure,
                })
                .collect(),
        };
        serde_json::to_string_pretty(&view).expect("sweep reports are always serialisable")
    }
}

/// Deterministic cell enumeration of a sweep: point-major, seed-minor.
fn enumerate_cells(scenario: &Scenario, seeds: &[u64]) -> Vec<(usize, u64)> {
    scenario
        .sweep
        .points
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| seeds.iter().map(move |&s| (pi, s)))
        .collect()
}

/// Relative cost estimate of one cell: simulated event volume grows roughly
/// with the square of the swarm size (every pair is a potential flow) times
/// the transferred file size. Only the *ordering* of the estimates matters —
/// they rank cells for longest-first claiming.
fn estimate_cost(base: &CommonOpts, point: &ParamPoint) -> f64 {
    let nodes = point.nodes.or(base.nodes).unwrap_or(30) as f64;
    let mb = point.file_mb.or(base.file_mb).unwrap_or(4.0);
    nodes * nodes * mb
}

/// The claim order of the cells: descending estimated cost, original index
/// ascending among ties — a deterministic permutation of `0..costs.len()`.
fn schedule_order(costs: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| costs[b].total_cmp(&costs[a]).then(a.cmp(&b)));
    order
}

/// A pre-split result table: the atomic cursor hands every cell index to
/// exactly one worker, so each slot has a unique writer and no lock is
/// needed on the hot path; results are only read back after the worker
/// scope has joined.
struct SlotTable<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: slots are disjoint per writer (the cursor's fetch_add yields each
// index once) and reads happen only after all writers joined, so no slot is
// ever aliased mutably.
unsafe impl<T: Send> Sync for SlotTable<T> {}

impl<T> SlotTable<T> {
    fn new(n: usize) -> Self {
        SlotTable((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Stores `value` in slot `i`.
    ///
    /// # Safety
    ///
    /// The caller must be the unique writer of slot `i` (here: the worker
    /// that claimed index `i` from the cursor), with no concurrent reads.
    unsafe fn put(&self, i: usize, value: T) {
        *self.0[i].get() = Some(value);
    }

    fn into_results(self) -> Vec<Option<T>> {
        self.0.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

/// Runs `order.len()` independent jobs on `threads` workers and merges the
/// results **by job index**, not completion order. `order` is the claim
/// permutation (idle workers steal the next unclaimed entry); the result at
/// position `i` is `job(i)` regardless of which worker ran it or when.
fn run_ordered<T: Send>(
    order: &[usize],
    threads: usize,
    job: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    assert!(threads > 0, "need at least one worker");
    let n = order.len();
    let results: Vec<Option<T>> = if threads == 1 || n <= 1 {
        let mut table: Vec<Option<T>> = Vec::new();
        table.resize_with(n, || None);
        for &i in order {
            table[i] = Some(job(i));
        }
        table
    } else {
        let cursor = AtomicUsize::new(0);
        let table = SlotTable::new(n);
        let workers = threads.min(n);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Work stealing: claim the next unexecuted job (`order`
                    // is a permutation of the job indices).
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = order.get(k) else { break };
                    let result = job(i);
                    // SAFETY: `order` is a permutation and `fetch_add` yields
                    // each `k` once, so this worker is the unique writer of
                    // slot `i`; reads happen after the scope joins.
                    unsafe { table.put(i, result) };
                });
            }
        });
        table.into_results()
    };
    results
        .into_iter()
        .map(|r| r.expect("every claimed job stores a result"))
        .collect()
}

/// Runs `n` independent jobs (indices `0..n`, claimed in index order) on
/// `threads` workers; the result vector is in index order for any thread
/// count. The deterministic building block `lab serve` parallelises its
/// service cells with.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn run_indexed<T: Send>(n: usize, threads: usize, job: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let order: Vec<usize> = (0..n).collect();
    run_ordered(&order, threads, job)
}

/// Runs `scenario`'s sweep (its parameter points × `seeds`) on `threads`
/// workers and merges the per-cell figures by cell index. Equivalent to
/// [`run_sweep_with`] with prefix sharing on — the default: sharing is an
/// executor optimisation whose canonical output is byte-identical to the
/// uninterrupted runs (`lab bench --snapshot` asserts it in CI).
///
/// `base` supplies the options every cell starts from; each cell applies its
/// parameter point's overrides and its seed. With `threads == 1` the cells
/// run serially on the calling thread; the canonical output is identical
/// either way (only the wall-clock telemetry differs).
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn run_sweep(
    scenario: &Scenario,
    base: &CommonOpts,
    seeds: &[u64],
    threads: usize,
) -> SweepReport {
    run_sweep_with(scenario, base, seeds, threads, true)
}

/// [`run_sweep`] with explicit control over warm-prefix sharing.
///
/// When `share` is true and the scenario carries [`Warmup`] hooks, cells are
/// grouped by their resolved numeric parameters + seed (everything that
/// determines the warm-up; the point *label* only selects post-split
/// dynamics). Each group's warm-up is simulated once and checkpointed, then
/// every cell forks from the snapshot. When `share` is false the same cells
/// run uninterrupted through the scenario's `fresh` hook — the oracle the
/// forked path is asserted byte-identical against. Scenarios without hooks
/// ignore `share` entirely.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn run_sweep_with(
    scenario: &Scenario,
    base: &CommonOpts,
    seeds: &[u64],
    threads: usize,
    share: bool,
) -> SweepReport {
    let cells = enumerate_cells(scenario, seeds);
    if let Some(warmup) = scenario.warmup.as_ref().filter(|_| share) {
        return run_sweep_shared(scenario, warmup, base, &cells, threads);
    }
    let costs: Vec<f64> = cells
        .iter()
        .map(|&(pi, _)| estimate_cost(base, &scenario.sweep.points[pi]))
        .collect();
    // Cells are claimed heaviest first (LPT scheduling; see the module doc).
    let order = schedule_order(&costs);

    let reports = run_ordered(&order, threads, |i| {
        let (pi, seed) = cells[i];
        let point = &scenario.sweep.points[pi];
        let opts = scenario.cell_opts(base, point, seed);
        let started = Instant::now();
        let figure = match &scenario.warmup {
            // Sharing off on a warm-up scenario: the uninterrupted oracle,
            // which honours the point label's dynamics variant (the plain
            // scenario body has no label and runs one fixed variant).
            Some(w) => (w.fresh)(&opts, point.label),
            None => scenario.run(&opts),
        };
        CellReport {
            point: point.label.to_string(),
            seed,
            wall_clock_secs: started.elapsed().as_secs_f64(),
            figure,
        }
    });

    SweepReport {
        scenario: scenario.name.to_string(),
        prefix_cells: 0,
        forked_cells: 0,
        warmup_secs_saved: 0.0,
        cells: reports,
    }
}

/// The key that decides whether two cells share a warm-up: every numeric
/// parameter that feeds the prefix (floats by bit pattern — the values come
/// from identical parsing paths, so equal means bit-equal) plus the seed.
/// The point label is deliberately absent: it only selects post-split
/// dynamics.
type PrefixKey = (Option<usize>, Option<u64>, Option<u32>, u64, u64);

fn prefix_key(opts: &CommonOpts) -> PrefixKey {
    (
        opts.nodes,
        opts.file_mb.map(f64::to_bits),
        opts.block_kb,
        opts.time_limit.to_bits(),
        opts.seed,
    )
}

/// The sharing path of [`run_sweep_with`]: one simulated warm-up per cell
/// group, every cell forked from its group's snapshot. Two phases, each
/// parallel and index-merged, so the canonical output stays byte-identical
/// for any thread count.
fn run_sweep_shared(
    scenario: &Scenario,
    warmup: &Warmup,
    base: &CommonOpts,
    cells: &[(usize, u64)],
    threads: usize,
) -> SweepReport {
    let cell_opts: Vec<CommonOpts> = cells
        .iter()
        .map(|&(pi, seed)| scenario.cell_opts(base, &scenario.sweep.points[pi], seed))
        .collect();

    // Group cells by prefix key, in first-occurrence order (deterministic:
    // the enumeration order is point-major, seed-minor).
    let mut groups: Vec<(PrefixKey, Vec<usize>)> = Vec::new();
    for (i, opts) in cell_opts.iter().enumerate() {
        let key = prefix_key(opts);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    let mut group_of = vec![0usize; cells.len()];
    for (g, (_, members)) in groups.iter().enumerate() {
        for &i in members {
            group_of[i] = g;
        }
    }

    // Phase 1: simulate each group's warm-up once (in parallel) and keep its
    // wall clock — the cost every other member of the group did not pay.
    let prefixes: Vec<(WarmPrefix, f64)> = run_indexed(groups.len(), threads, |g| {
        let started = Instant::now();
        let prefix = (warmup.prefix)(&cell_opts[groups[g].1[0]]);
        (prefix, started.elapsed().as_secs_f64())
    });

    // Phase 2: fork every cell from its group's snapshot, heaviest first.
    let costs: Vec<f64> = cells
        .iter()
        .map(|&(pi, _)| estimate_cost(base, &scenario.sweep.points[pi]))
        .collect();
    let order = schedule_order(&costs);
    let reports = run_ordered(&order, threads, |i| {
        let (pi, seed) = cells[i];
        let point = &scenario.sweep.points[pi];
        let started = Instant::now();
        let figure = (warmup.fork)(&prefixes[group_of[i]].0, &cell_opts[i], point.label);
        CellReport {
            point: point.label.to_string(),
            seed,
            wall_clock_secs: started.elapsed().as_secs_f64(),
            figure,
        }
    });

    let warmup_secs_saved = groups
        .iter()
        .enumerate()
        .map(|(g, (_, members))| prefixes[g].1 * (members.len() - 1) as f64)
        .sum();
    SweepReport {
        scenario: scenario.name.to_string(),
        prefix_cells: groups.len(),
        forked_cells: cells.len(),
        warmup_secs_saved,
        cells: reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn tiny() -> CommonOpts {
        CommonOpts {
            nodes: Some(6),
            file_mb: Some(0.125),
            time_limit: 1800.0,
            ..CommonOpts::default()
        }
    }

    #[test]
    fn sweep_enumerates_points_major_seeds_minor() {
        let reg = Registry::standard();
        let sc = reg.get("fig13").unwrap();
        let report = run_sweep(sc, &tiny(), &[1, 2], 1);
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].seed, 1);
        assert_eq!(report.cells[1].seed, 2);
        assert!(report.cells.iter().all(|c| c.point == "default"));
    }

    #[test]
    fn parallel_sweep_is_canonically_identical_to_serial() {
        let reg = Registry::standard();
        let sc = reg.get("fig13").unwrap();
        let serial = run_sweep(sc, &tiny(), &[10, 11, 12], 1);
        let parallel = run_sweep(sc, &tiny(), &[10, 11, 12], 3);
        assert_eq!(serial.to_canonical_json(), parallel.to_canonical_json());
        // The canonical rendering is timing-free; the full rendering keeps
        // the telemetry.
        assert!(!serial.to_canonical_json().contains("wall_clock_secs"));
        assert!(serial.to_json().contains("wall_clock_secs"));
    }

    #[test]
    fn every_cell_records_its_wall_clock() {
        let reg = Registry::standard();
        let sc = reg.get("fig13").unwrap();
        let report = run_sweep(sc, &tiny(), &[1, 2], 2);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert!(
                cell.wall_clock_secs > 0.0,
                "cell {}/{} has no timing",
                cell.point,
                cell.seed
            );
        }
    }

    #[test]
    fn schedule_order_is_longest_first_with_stable_ties() {
        assert_eq!(schedule_order(&[1.0, 9.0, 1.0, 9.0]), vec![1, 3, 0, 2]);
        assert_eq!(schedule_order(&[]), Vec::<usize>::new());
        assert_eq!(schedule_order(&[2.0]), vec![0]);
    }

    #[test]
    fn dominant_cells_of_the_fig05_sweep_are_claimed_first() {
        // fig05 sweeps the swarm size (20/40/60 nodes); the 60-node cells
        // dominate the wall clock and must be claimed before everything
        // else, or one of them lands last and serialises the tail.
        let reg = Registry::standard();
        let sc = reg.get("fig05").unwrap();
        let seeds = [1u64, 2];
        let cells = enumerate_cells(sc, &seeds);
        let base = CommonOpts::default();
        let costs: Vec<f64> = cells
            .iter()
            .map(|&(pi, _)| estimate_cost(&base, &sc.sweep.points[pi]))
            .collect();
        let order = schedule_order(&costs);
        let biggest = sc.sweep.points.len() - 1; // points scale upward
        for &i in &order[..seeds.len()] {
            assert_eq!(
                cells[i].0, biggest,
                "a non-dominant cell was scheduled ahead: {order:?}"
            );
        }
    }

    /// Greedy list-scheduling makespan: each cell (in `order`) goes to the
    /// least-loaded worker — the same discipline as the live claim loop,
    /// with cost standing in for wall clock.
    fn simulated_makespan(costs: &[f64], order: &[usize], workers: usize) -> f64 {
        let mut load = vec![0.0f64; workers];
        for &i in order {
            let w = (0..load.len())
                .min_by(|&a, &b| load[a].total_cmp(&load[b]).then(a.cmp(&b)))
                .expect("at least one worker");
            load[w] += costs[i];
        }
        load.iter().fold(0.0f64, |m, &l| m.max(l))
    }

    #[test]
    fn longest_first_beats_naive_order_on_a_dominant_cell() {
        // One cell 8× heavier than the rest, two workers. Naive enumeration
        // order starts the heavy cell last: makespan 10 (2 + 8 on one
        // worker). Longest-first starts it immediately: makespan 8, the
        // optimum.
        let costs = [1.0, 1.0, 1.0, 1.0, 1.0, 8.0];
        let naive: Vec<usize> = (0..costs.len()).collect();
        let lpt = schedule_order(&costs);
        let naive_span = simulated_makespan(&costs, &naive, 2);
        let lpt_span = simulated_makespan(&costs, &lpt, 2);
        assert_eq!(naive_span, 10.0);
        assert_eq!(lpt_span, 8.0);
        assert!(lpt_span < naive_span);
    }

    #[test]
    fn run_indexed_preserves_index_order_for_any_thread_count() {
        let serial = run_indexed(9, 1, |i| i * i);
        for threads in [2, 4, 16] {
            assert_eq!(run_indexed(9, threads, |i| i * i), serial);
        }
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn thread_surplus_is_harmless() {
        let reg = Registry::standard();
        let sc = reg.get("fig13").unwrap();
        let report = run_sweep(sc, &tiny(), &[5], 8);
        assert_eq!(report.cells.len(), 1);
    }

    #[test]
    fn warm_prefix_sharing_matches_fresh_runs_bytewise() {
        let reg = Registry::standard();
        let sc = reg.get("fig05w").unwrap();
        let shared = run_sweep_with(sc, &tiny(), &[7], 1, true);
        let fresh = run_sweep_with(sc, &tiny(), &[7], 1, false);
        assert_eq!(shared.to_canonical_json(), fresh.to_canonical_json());
        // One warm-up for the whole seed's group, all three variants forked.
        assert_eq!(shared.prefix_cells, 1);
        assert_eq!(shared.forked_cells, 3);
        assert!(shared.warmup_secs_saved > 0.0);
        // Sharing off runs every cell uninterrupted — nothing shared.
        assert_eq!(fresh.prefix_cells, 0);
        assert_eq!(fresh.forked_cells, 0);
        assert_eq!(fresh.warmup_secs_saved, 0.0);
    }

    #[test]
    fn prefix_telemetry_is_excluded_from_the_canonical_rendering() {
        let reg = Registry::standard();
        let sc = reg.get("fig05w").unwrap();
        let report = run_sweep_with(sc, &tiny(), &[3], 1, true);
        assert!(report.to_json().contains("warmup_secs_saved"));
        assert!(!report.to_canonical_json().contains("warmup_secs_saved"));
        assert!(!report.to_canonical_json().contains("prefix_cells"));
    }

    #[test]
    fn cells_with_different_seeds_do_not_share_a_prefix() {
        let a = prefix_key(&CommonOpts { seed: 1, ..tiny() });
        let b = prefix_key(&CommonOpts { seed: 2, ..tiny() });
        assert_ne!(a, b);
        // Same numerics + seed do share, whatever the point label will be.
        assert_eq!(a, prefix_key(&CommonOpts { seed: 1, ..tiny() }));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_is_rejected() {
        let reg = Registry::standard();
        let sc = reg.get("fig13").unwrap();
        run_sweep(sc, &tiny(), &[1], 0);
    }
}
