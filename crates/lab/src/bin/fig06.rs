//! Regenerates the Figure 6 scenario — a thin wrapper over
//! `lab run fig06`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig06");
}
