//! Regenerates the Figure 18 scenario — a thin wrapper over
//! `lab run fig18`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig18");
}
