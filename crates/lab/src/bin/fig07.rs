//! Regenerates the Figure 7 scenario — a thin wrapper over
//! `lab run fig07`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig07");
}
