//! Regenerates the Figure 5 scenario — a thin wrapper over
//! `lab run fig05`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig05");
}
