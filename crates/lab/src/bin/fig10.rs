//! Regenerates the Figure 10 scenario — a thin wrapper over
//! `lab run fig10`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig10");
}
