//! Regenerates the probe-driven bandwidth-over-time scenario — a thin
//! wrapper over `lab run fig05ts`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig05ts");
}
