//! Regenerates the Figure 15 scenario — a thin wrapper over
//! `lab run fig15`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig15");
}
