//! Regenerates the Figure 14 scenario — a thin wrapper over
//! `lab run fig14`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig14");
}
