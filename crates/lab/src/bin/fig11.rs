//! Regenerates the Figure 11 scenario — a thin wrapper over
//! `lab run fig11`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig11");
}
