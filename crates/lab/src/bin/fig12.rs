//! Regenerates the Figure 12 scenario — a thin wrapper over
//! `lab run fig12`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig12");
}
