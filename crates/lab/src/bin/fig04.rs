//! Regenerates the Figure 4 scenario — a thin wrapper over
//! `lab run fig04`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig04");
}
