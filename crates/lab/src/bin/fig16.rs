//! Regenerates the Figure 16 scenario — a thin wrapper over
//! `lab run fig16`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig16");
}
