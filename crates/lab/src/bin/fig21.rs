//! Regenerates the Figure 21 scenario — a thin wrapper over
//! `lab run fig21`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig21");
}
