//! Regenerates the Figure 17 scenario — a thin wrapper over
//! `lab run fig17`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig17");
}
