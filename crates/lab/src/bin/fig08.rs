//! Regenerates the Figure 8 scenario — a thin wrapper over
//! `lab run fig08`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig08");
}
