//! Regenerates the Figure 13 scenario — a thin wrapper over
//! `lab run fig13`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig13");
}
