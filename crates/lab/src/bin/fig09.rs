//! Regenerates the Figure 9 scenario — a thin wrapper over
//! `lab run fig09`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig09");
}
