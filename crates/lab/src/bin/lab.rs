//! The scenario-lab CLI: list, run, sweep and benchmark the registered
//! experiment scenarios. Run `lab --help` for usage.

fn main() {
    std::process::exit(bullet_lab::lab_main(std::env::args().skip(1)));
}
