//! Regenerates the Figure 22 scenario — a thin wrapper over
//! `lab run fig22`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig22");
}
