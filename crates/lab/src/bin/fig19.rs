//! Regenerates the Figure 19 scenario — a thin wrapper over
//! `lab run fig19`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig19");
}
