//! Regenerates the Figure 20 scenario — a thin wrapper over
//! `lab run fig20`. Run with `--help` for options.

fn main() {
    bullet_lab::figure_binary_main("fig20");
}
