//! The declarative scenario model.
//!
//! A [`Scenario`] names one cell family of the paper's evaluation grid: which
//! systems run, on which topology, under which dynamics, plus the default
//! parameter sweep and seed plan. The executable part stays a plain function
//! over [`CommonOpts`] (the experiment bodies live in
//! `bullet_bench::experiments`, where the figure tests exercise them
//! directly); everything the lab needs to enumerate, filter and sweep
//! scenarios is data.

use bullet_bench::{CommonOpts, Figure, WarmPrefix};

/// Which dissemination systems a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemSet {
    /// Bullet′, original Bullet, BitTorrent and SplitStream side by side.
    AllFour,
    /// Bullet′ with its default configuration only.
    BulletPrime,
    /// Several Bullet′ configurations against each other (strategy /
    /// peer-set / outstanding studies).
    BulletPrimeVariants,
    /// The Shotgun software-update tool vs parallel rsync.
    Shotgun,
}

impl SystemSet {
    /// Short human-readable tag used by `lab list`.
    pub fn tag(self) -> &'static str {
        match self {
            SystemSet::AllFour => "all-four",
            SystemSet::BulletPrime => "bullet-prime",
            SystemSet::BulletPrimeVariants => "bullet-prime-variants",
            SystemSet::Shotgun => "shotgun",
        }
    }
}

/// Which emulated topology a scenario uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// The standard lossy ModelNet full mesh.
    ModelNetMesh,
    /// 800 Kbps access links, no losses.
    ConstrainedAccess,
    /// 10 Mbps / 100 ms high bandwidth-delay-product clique.
    HighBdpClique,
    /// The Fig 12 cascade topology (victim behind dedicated links).
    Cascade,
    /// PlanetLab-like wide-area site bandwidths.
    PlanetLabLike,
    /// Every core path rides one shared bottleneck link (fig18/fig19).
    SharedCore,
    /// O(n) uniform unconstrained core for large-swarm scaling runs (fig20).
    UniformSwarm,
}

impl TopologyKind {
    /// Short human-readable tag used by `lab list`.
    pub fn tag(self) -> &'static str {
        match self {
            TopologyKind::ModelNetMesh => "modelnet-mesh",
            TopologyKind::ConstrainedAccess => "constrained-access",
            TopologyKind::HighBdpClique => "high-bdp-clique",
            TopologyKind::Cascade => "cascade",
            TopologyKind::PlanetLabLike => "planetlab-like",
            TopologyKind::SharedCore => "shared-core",
            TopologyKind::UniformSwarm => "uniform-swarm",
        }
    }
}

/// Which dynamics/churn schedule a scenario applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynamicsKind {
    /// No scripted changes (losses may still apply).
    Static,
    /// The §4.1 correlated bandwidth-decrease schedule.
    BandwidthChanges,
    /// The Fig 12 cascading link degradations towards a victim.
    CascadingDegrade,
    /// A crash wave over a fraction of the receivers.
    CrashWave,
    /// A flash-crowd join wave.
    FlashCrowd,
    /// A background cross-traffic square wave on the shared core link.
    CrossTraffic,
    /// Open-system service mode: generator-driven swarm arrivals over a
    /// shared slot pool (fig21/fig22, `lab serve`).
    OpenArrivals,
}

impl DynamicsKind {
    /// Short human-readable tag used by `lab list`.
    pub fn tag(self) -> &'static str {
        match self {
            DynamicsKind::Static => "static",
            DynamicsKind::BandwidthChanges => "bandwidth-changes",
            DynamicsKind::CascadingDegrade => "cascading-degrade",
            DynamicsKind::CrashWave => "crash-wave",
            DynamicsKind::FlashCrowd => "flash-crowd",
            DynamicsKind::CrossTraffic => "cross-traffic",
            DynamicsKind::OpenArrivals => "open-arrivals",
        }
    }
}

/// One point of a parameter sweep: named overrides applied on top of the
/// sweep's base options. `None` fields leave the base value untouched.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamPoint {
    /// Label identifying the point in reports ("default", "80-nodes", …).
    pub label: &'static str,
    /// Override for the node count.
    pub nodes: Option<usize>,
    /// Override for the file size (MiB).
    pub file_mb: Option<f64>,
    /// Override for the block size (KiB).
    pub block_kb: Option<u32>,
    /// Override for the virtual-time limit (seconds).
    pub time_limit: Option<f64>,
}

impl ParamPoint {
    /// The identity point: base options as-is.
    pub fn default_point() -> Self {
        ParamPoint {
            label: "default",
            ..Default::default()
        }
    }

    /// Applies the overrides to a copy of `base`.
    pub fn apply(&self, base: &CommonOpts) -> CommonOpts {
        let mut opts = base.clone();
        if let Some(n) = self.nodes {
            opts.nodes = Some(n);
        }
        if let Some(mb) = self.file_mb {
            opts.file_mb = Some(mb);
        }
        if let Some(kb) = self.block_kb {
            opts.block_kb = Some(kb);
        }
        if let Some(t) = self.time_limit {
            opts.time_limit = t;
        }
        opts
    }
}

/// The seed plan of a sweep: `count` consecutive seeds from `base`.
///
/// Consecutive seeds are fine because every run derives its actual RNG
/// streams by hashing the seed with per-purpose labels (see
/// `desim::RngFactory`), so adjacent experiment seeds share no streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedPlan {
    /// First experiment seed.
    pub base: u64,
    /// Number of seeds.
    pub count: usize,
}

impl SeedPlan {
    /// Materialises the seeds in order.
    pub fn seeds(&self) -> Vec<u64> {
        (0..self.count as u64)
            .map(|i| self.base.wrapping_add(i))
            .collect()
    }
}

impl Default for SeedPlan {
    fn default() -> Self {
        // The workspace's fixed experiment seed, 4 repetitions.
        SeedPlan {
            base: 20050410,
            count: 4,
        }
    }
}

/// A scenario's default sweep: parameter points × seed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The parameter points (at least one).
    pub points: Vec<ParamPoint>,
    /// The seed plan.
    pub seeds: SeedPlan,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            points: vec![ParamPoint::default_point()],
            seeds: SeedPlan::default(),
        }
    }
}

/// The warm-prefix hooks of a scenario whose sweep cells share an expensive
/// warm-up (same topology, join phase and seed; different post-split
/// dynamics). The executor groups cells by their resolved parameters + seed,
/// simulates `prefix` once per group, and runs every cell through `fork`;
/// with sharing off (or standalone `lab run`) cells go through `fresh`
/// instead. The snapshot contract (`netsim::snapshot`) makes the two paths
/// canonically byte-identical — `lab bench --snapshot` asserts it.
///
/// All three hooks are plain function pointers (like [`Scenario`]'s body):
/// scenarios stay `'static` data. The `&str` argument is the sweep point's
/// label, which selects the post-split dynamics variant.
pub struct Warmup {
    /// Simulates the shared warm-up of one cell group and checkpoints it.
    pub prefix: fn(&CommonOpts) -> WarmPrefix,
    /// Runs one cell by forking the group's checkpoint.
    pub fork: fn(&WarmPrefix, &CommonOpts, &str) -> Figure,
    /// Runs one cell uninterrupted from t = 0 (the sharing-off oracle).
    pub fresh: fn(&CommonOpts, &str) -> Figure,
}

/// A named, runnable experiment scenario.
pub struct Scenario {
    /// Unique registry name (`fig04` … `fig17`, `fig05ts`, …).
    pub name: &'static str,
    /// One-line description shown by `lab list`.
    pub title: &'static str,
    /// Which systems run.
    pub system: SystemSet,
    /// Which topology they run on.
    pub topology: TopologyKind,
    /// Which dynamics apply.
    pub dynamics: DynamicsKind,
    /// Default parameter sweep and seed plan for `lab sweep`.
    pub sweep: SweepSpec,
    /// Warm-prefix hooks, for scenarios whose sweep cells share a warm-up
    /// (see [`Warmup`]). `None` for ordinary scenarios.
    pub warmup: Option<Warmup>,
    /// The experiment body.
    run: fn(&CommonOpts) -> Figure,
}

impl Scenario {
    /// Creates a scenario with the default sweep.
    pub fn new(
        name: &'static str,
        title: &'static str,
        system: SystemSet,
        topology: TopologyKind,
        dynamics: DynamicsKind,
        run: fn(&CommonOpts) -> Figure,
    ) -> Self {
        Scenario {
            name,
            title,
            system,
            topology,
            dynamics,
            sweep: SweepSpec::default(),
            warmup: None,
            run,
        }
    }

    /// Attaches warm-prefix hooks (builder style; see [`Warmup`]).
    #[must_use]
    pub fn with_warmup(mut self, warmup: Warmup) -> Self {
        self.warmup = Some(warmup);
        self
    }

    /// Runs the scenario once with the given options.
    pub fn run(&self, opts: &CommonOpts) -> Figure {
        (self.run)(opts)
    }

    /// The options of one sweep cell: `point` overrides applied to `base`,
    /// then the cell's seed.
    pub fn cell_opts(&self, base: &CommonOpts, point: &ParamPoint, seed: u64) -> CommonOpts {
        let mut opts = point.apply(base);
        opts.seed = seed;
        opts
    }
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("system", &self.system)
            .field("topology", &self.topology)
            .field("dynamics", &self.dynamics)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_point_overrides_only_what_it_names() {
        let base = CommonOpts {
            nodes: Some(10),
            time_limit: 600.0,
            ..CommonOpts::default()
        };
        let point = ParamPoint {
            label: "big",
            nodes: Some(40),
            ..Default::default()
        };
        let opts = point.apply(&base);
        assert_eq!(opts.nodes, Some(40));
        assert_eq!(opts.time_limit, 600.0);
        assert_eq!(opts.file_mb, None);
        // The identity point changes nothing.
        let same = ParamPoint::default_point().apply(&base);
        assert_eq!(same.nodes, base.nodes);
    }

    #[test]
    fn seed_plan_yields_consecutive_seeds() {
        let plan = SeedPlan { base: 7, count: 3 };
        assert_eq!(plan.seeds(), vec![7, 8, 9]);
        assert_eq!(SeedPlan::default().seeds().len(), 4);
    }

    #[test]
    fn cell_opts_applies_point_then_seed() {
        let sc = Scenario::new(
            "t",
            "test",
            SystemSet::BulletPrime,
            TopologyKind::ModelNetMesh,
            DynamicsKind::Static,
            |_| Figure::new("t", "test"),
        );
        let base = CommonOpts::default();
        let point = ParamPoint {
            label: "p",
            nodes: Some(12),
            ..Default::default()
        };
        let opts = sc.cell_opts(&base, &point, 99);
        assert_eq!(opts.nodes, Some(12));
        assert_eq!(opts.seed, 99);
    }
}
