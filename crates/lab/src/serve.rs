//! The `lab serve` subcommand: open-system service runs.
//!
//! Closed-system scenarios (`lab run`/`lab sweep`) start one swarm and stop
//! at AllComplete; an *open-system* scenario instead drives the emulator as
//! a service — a generator admits whole swarms over a shared slot pool for a
//! fixed horizon and the result is a [`ServiceReport`] (sustained goodput,
//! per-cohort completion percentiles, admission time-series) rather than a
//! download-time CDF. See `docs/SERVICE_MODE.md`.
//!
//! A service scenario is a short list of independent *cells* (fig21: one per
//! offered-load point; fig22: a single flash-crowd run). Cells are
//! parallelised with [`run_indexed`] and, like
//! sweeps, the merged output is **byte-identical for any `--threads` value**
//! — each cell is one deterministic simulation and results merge by cell
//! index. `lab serve` re-checks that identity when more than one thread
//! count is given, mirroring `lab bench`.

use std::time::Instant;

use bullet_bench::experiments::{run_service_point, service_points, service_summary};
use bullet_bench::CommonOpts;
use netsim::ServiceReport;
use serde::Serialize;

use crate::executor::run_indexed;
use crate::registry::Registry;

/// One executed service cell.
#[derive(Debug)]
pub struct ServeCell {
    /// Label of the cell ("load-16-per-1000s", "flash-crowd", …).
    pub label: String,
    /// Wall-clock seconds the cell took (telemetry; excluded from the
    /// byte-identity guarantee).
    pub wall_clock_secs: f64,
    /// The deterministic result.
    pub report: ServiceReport,
}

/// The merged result of a service run, in cell order.
#[derive(Debug)]
pub struct ServeRun {
    /// Scenario name.
    pub scenario: String,
    /// One entry per service cell.
    pub cells: Vec<ServeCell>,
}

/// Machine-readable summary of one cell for `--json` (owned scalars only;
/// the full sample series stays in the in-memory [`ServiceReport`]).
#[derive(Debug, Serialize)]
struct ServeCellView {
    label: String,
    sustained_goodput_bps: f64,
    arrivals: usize,
    admitted: usize,
    completed: usize,
    in_flight_at_end: usize,
    queued_at_end: usize,
    max_concurrent: usize,
    p50_latency_secs: f64,
    p90_latency_secs: f64,
    events: u64,
}

#[derive(Debug, Serialize)]
struct ServeRunView {
    scenario: String,
    cells: Vec<ServeCellView>,
}

impl ServeRun {
    /// The byte-identity unit of the determinism guarantee: every cell's
    /// label plus the full debug rendering of its report (which carries the
    /// complete sample series and cohort table), wall-clock excluded.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        for cell in &self.cells {
            out.push_str(&cell.label);
            out.push('\n');
            out.push_str(&cell.report.canonical());
            out.push('\n');
        }
        out
    }

    fn to_view(&self) -> ServeRunView {
        ServeRunView {
            scenario: self.scenario.clone(),
            cells: self
                .cells
                .iter()
                .map(|c| ServeCellView {
                    label: c.label.clone(),
                    sustained_goodput_bps: c.report.sustained_goodput_bps,
                    arrivals: c.report.arrivals,
                    admitted: c.report.admitted,
                    completed: c.report.completed,
                    in_flight_at_end: c.report.in_flight_at_end,
                    queued_at_end: c.report.queued_at_end,
                    max_concurrent: c.report.max_concurrent,
                    p50_latency_secs: c.report.latency_quantile(0.5).unwrap_or(f64::NAN),
                    p90_latency_secs: c.report.latency_quantile(0.9).unwrap_or(f64::NAN),
                    events: c.report.events,
                })
                .collect(),
        }
    }

    /// JSON rendering of the per-cell scalar summaries.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.to_view()).expect("serve views are always serialisable")
    }
}

/// Runs every service cell of scenario `name` on `threads` workers and
/// merges the reports by cell index (deterministic for any thread count).
/// Errors if `name` is not an open-system service scenario.
pub fn run_serve(name: &str, opts: &CommonOpts, threads: usize) -> Result<ServeRun, String> {
    let labels = service_points(name).ok_or_else(|| {
        format!(
            "'{name}' is not an open-system service scenario; \
             `lab serve` handles fig21 and fig22 (see `lab list` dynamics 'open-arrivals')"
        )
    })?;
    let cells = run_indexed(labels.len(), threads, |i| {
        let started = Instant::now();
        let report = run_service_point(name, i, opts).expect("index within service_points");
        ServeCell {
            label: labels[i].clone(),
            wall_clock_secs: started.elapsed().as_secs_f64(),
            report,
        }
    });
    Ok(ServeRun {
        scenario: name.to_string(),
        cells,
    })
}

/// The `lab serve` subcommand: runs an open-system scenario's cells at each
/// requested thread count, asserts the canonical outputs are byte-identical
/// across counts, and prints a per-cell [`service_summary`].
pub fn serve(registry: &Registry, args: Vec<String>) -> Result<(), String> {
    let (name, rest) = crate::cli::take_scenario(args)?;
    let scenario = crate::cli::resolve(registry, &name)?;
    let sweep_args = crate::cli::parse_sweep_args(rest)?;
    if sweep_args.seeds.is_some() || sweep_args.seed_count.is_some() {
        return Err(
            "serve runs one seeded service per cell; use --seed, not --seeds/--seed-count"
                .to_string(),
        );
    }
    if sweep_args.out.is_some() {
        return Err("serve writes its report with --json, not --out".to_string());
    }
    let opts = CommonOpts::parse(sweep_args.rest.clone())?;
    let thread_counts = if sweep_args.threads.is_empty() {
        vec![1]
    } else {
        sweep_args.threads.clone()
    };

    let mut kept: Option<(ServeRun, f64)> = None;
    for &threads in &thread_counts {
        let started = Instant::now();
        let run = run_serve(scenario.name, &opts, threads)?;
        let wall = started.elapsed().as_secs_f64();
        eprintln!("threads {threads}: {wall:.3}s wall clock");
        match &kept {
            None => kept = Some((run, wall)),
            Some((reference, _)) => {
                if reference.canonical() != run.canonical() {
                    return Err(format!(
                        "DETERMINISM VIOLATION: {threads}-thread serve of {name} differs from \
                         {}-thread serve",
                        thread_counts[0]
                    ));
                }
            }
        }
    }
    let (run, _) = kept.expect("at least one thread count");

    println!(
        "serve {}: {} cell(s), dynamics {}",
        run.scenario,
        run.cells.len(),
        scenario.dynamics.tag()
    );
    for cell in &run.cells {
        println!("[{}] ({:.3}s wall clock)", cell.label, cell.wall_clock_secs);
        for line in service_summary(&cell.report).lines() {
            println!("  {line}");
        }
    }
    if let Some(path) = &sweep_args.json {
        std::fs::write(path, run.to_json()).map_err(|e| format!("failed to write {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_system_scenarios_are_rejected() {
        let err = run_serve("fig13", &CommonOpts::default(), 1).unwrap_err();
        assert!(err.contains("not an open-system"), "{err}");
        assert!(err.contains("lab serve"), "{err}");
    }

    #[test]
    fn unknown_scenarios_are_rejected() {
        assert!(run_serve("fig99", &CommonOpts::default(), 1).is_err());
    }
}
