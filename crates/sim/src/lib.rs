//! `desim` — a small deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the Bullet′ reproduction: every
//! experiment is a discrete-event simulation driven by virtual time. The
//! engine is deliberately minimal — it owns *time* and the *pending event
//! set*, nothing else — so the network emulator (`netsim`) and the overlay
//! protocols build their own state on top of it.
//!
//! Design properties:
//!
//! * **Deterministic.** Integer nanosecond timestamps, insertion-stable
//!   ordering of simultaneous events, and labelled RNG streams derived from a
//!   single experiment seed make every run bit-for-bit reproducible.
//! * **Payload-generic.** [`Simulator<E>`] is parameterised over the event
//!   payload, so each layer defines its own event vocabulary without dynamic
//!   dispatch.
//! * **Caller-owned state.** Handlers receive `&mut Simulator<E>` and may
//!   schedule follow-ups, but all domain state lives outside the engine,
//!   which keeps borrow-checking simple in large protocol stacks.

pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;

pub use engine::{Control, RunOutcome, SimStats, Simulator};
pub use queue::{EventKey, EventQueue};
pub use rng::RngFactory;
pub use time::{SimDuration, SimTime, NANOS_PER_SEC};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Events always come out in non-decreasing time order, regardless of
        /// insertion order.
        #[test]
        fn queue_pops_sorted(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut last = SimTime::ZERO;
            let mut popped = 0usize;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
        }

        /// Ties are broken by insertion order (FIFO), for any grouping of
        /// duplicate timestamps.
        #[test]
        fn queue_ties_are_fifo(times in proptest::collection::vec(0u64..16, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(*t), i);
            }
            let mut last_per_time = std::collections::HashMap::new();
            while let Some((t, idx)) = q.pop() {
                if let Some(prev) = last_per_time.insert(t, idx) {
                    prop_assert!(idx > prev, "FIFO violated at {:?}", t);
                }
            }
        }

        /// Under arbitrary interleavings of cancels and reschedules, the queue
        /// delivers exactly the surviving entries, in time order, at their
        /// final delivery times.
        #[test]
        fn queue_cancel_reschedule_consistent(
            times in proptest::collection::vec(0u64..10_000, 1..100),
            cancels in proptest::collection::vec(any::<usize>(), 0..30),
            move_targets in proptest::collection::vec(any::<usize>(), 0..30),
            move_times in proptest::collection::vec(0u64..10_000, 0..30),
        ) {
            let mut q = EventQueue::new();
            let keys: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, t)| q.push(SimTime::from_nanos(*t), i))
                .collect();
            let mut expect: std::collections::HashMap<usize, u64> =
                times.iter().copied().enumerate().collect();
            for (idx, at) in move_targets.iter().zip(move_times.iter()) {
                let i = idx % keys.len();
                if q.reschedule(keys[i], SimTime::from_nanos(*at)) {
                    expect.insert(i, *at);
                }
            }
            for idx in &cancels {
                let i = idx % keys.len();
                if q.cancel(keys[i]).is_some() {
                    expect.remove(&i);
                }
            }
            prop_assert_eq!(q.len(), expect.len());
            let mut last = SimTime::ZERO;
            let mut seen = std::collections::HashMap::new();
            while let Some((t, i)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
                seen.insert(i, t.as_nanos());
            }
            prop_assert_eq!(seen, expect);
        }

        /// The simulator clock never moves backwards and processes every event
        /// when unbounded.
        #[test]
        fn simulator_clock_monotone(delays in proptest::collection::vec(0u64..10_000, 1..100)) {
            let mut sim: Simulator<usize> = Simulator::new();
            for (i, d) in delays.iter().enumerate() {
                sim.schedule_at(SimTime::from_nanos(*d), i);
            }
            let mut last = SimTime::ZERO;
            let mut count = 0usize;
            sim.run(|sim, t, _| {
                assert!(t >= last);
                assert_eq!(sim.now(), t);
                last = t;
                count += 1;
                Control::Continue
            });
            prop_assert_eq!(count, delays.len());
        }

        /// Identical seeds and labels give identical streams.
        #[test]
        fn rng_streams_reproducible(seed in any::<u64>(), label in "[a-z]{1,12}") {
            use rand::Rng;
            let f = RngFactory::new(seed);
            let mut a = f.stream(&label);
            let mut b = f.stream(&label);
            let va: [u64; 4] = [a.gen(), a.gen(), a.gen(), a.gen()];
            let vb: [u64; 4] = [b.gen(), b.gen(), b.gen(), b.gen()];
            prop_assert_eq!(va, vb);
        }
    }
}
