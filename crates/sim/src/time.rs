//! Virtual time for the discrete-event simulator.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation. Integer time makes event ordering exact and keeps runs
//! bit-for-bit reproducible across platforms, which floating-point seconds
//! would not guarantee.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant of virtual time, measured in nanoseconds from simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from (possibly fractional) seconds.
    ///
    /// Negative inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_nanos(secs))
    }

    /// Returns the instant as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the instant advanced by `d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * NANOS_PER_SEC)
    }

    /// Creates a duration from (possibly fractional) seconds.
    ///
    /// Negative inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_nanos(secs))
    }

    /// Returns the duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Returns true if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by a non-negative factor, saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor.max(0.0))
    }
}

fn secs_to_nanos(secs: f64) -> u64 {
    if !secs.is_finite() || secs <= 0.0 {
        if secs.is_infinite() && secs > 0.0 {
            return u64::MAX;
        }
        return 0;
    }
    let nanos = secs * NANOS_PER_SEC as f64;
    if nanos >= u64::MAX as f64 {
        u64::MAX
    } else {
        nanos.round() as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        let d = SimDuration::from_millis(250);
        assert_eq!(d.as_nanos(), 250_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs_f64(2.0) + SimDuration::from_secs(3);
        assert_eq!(t.as_secs_f64(), 5.0);
        let d = t - SimTime::from_secs_f64(1.0);
        assert_eq!(d.as_secs_f64(), 4.0);
        // Saturating subtraction never underflows.
        let z = SimTime::ZERO - SimTime::from_secs_f64(1.0);
        assert_eq!(z, SimDuration::ZERO);
    }

    #[test]
    fn negative_and_non_finite_seconds_saturate() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_nanos(),
            u64::MAX
        );
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10).mul_f64(0.5);
        assert_eq!(d.as_nanos(), 5 * NANOS_PER_SEC);
        assert_eq!(SimDuration::from_secs(1).mul_f64(-3.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_nanos(10) < SimTime::from_nanos(11));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
