//! The pending-event set.
//!
//! A binary heap of `(time, sequence, key)` triples over a side table of live
//! entries, guaranteeing *stable* ordering — events scheduled for the same
//! instant are delivered in the order they were scheduled (FIFO) — and
//! supporting **cancellation** and **rescheduling** by key:
//!
//! * [`EventQueue::push`] returns an [`EventKey`] that identifies the entry
//!   for the lifetime of the queue;
//! * [`EventQueue::cancel`] removes the entry (returning its payload) without
//!   touching the heap — the heap triple becomes a tombstone that is
//!   discarded lazily when it reaches the top;
//! * [`EventQueue::reschedule`] moves an entry to a new delivery time by
//!   pushing a fresh heap triple with a new sequence number and bumping the
//!   live entry's expected sequence, so the old triple turns stale in place.
//!
//! Stability matters for reproducibility — protocol handlers frequently
//! schedule several zero-delay follow-ups and their relative order must not
//! depend on heap internals. A rescheduled event takes the insertion order of
//! its *reschedule*, exactly as if it had been cancelled and pushed anew.
//!
//! The live table is a `HashMap` keyed by the opaque `u64` inside
//! [`EventKey`]; it is only ever accessed by key (never iterated), so it
//! introduces no iteration-order nondeterminism.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};

use crate::time::SimTime;

/// An opaque handle to a scheduled event, unique for the lifetime of the
/// queue that issued it. Cancelled/delivered keys are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventKey(u64);

impl EventKey {
    /// The dense id behind the key. Keys are issued sequentially from 0 by
    /// each queue, so the raw id doubles as a stable, compact identifier in
    /// trace records and other observability output.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A heap triple: delivery time, insertion sequence, and the key of the entry
/// it belongs to. The payload lives in the side table so reschedules do not
/// need to clone it.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    at: SimTime,
    seq: u64,
    key: u64,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A live entry: the sequence number of its current heap triple (older
/// triples for the same key are tombstones) plus the payload.
#[derive(Debug, Clone)]
struct LiveEntry<E> {
    seq: u64,
    at: SimTime,
    payload: E,
}

/// A time-ordered, insertion-stable queue of pending events with keyed
/// cancellation and rescheduling.
///
/// Cloning the queue (`E: Clone`) is an exact checkpoint: the heap's backing
/// vector — tombstones included — and the live table are copied verbatim, so
/// the clone pops the identical `(time, payload)` sequence and issues the
/// same future keys as the original. The live table is only ever accessed by
/// key (never iterated), so the clone's `HashMap` layout cannot influence
/// behaviour.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry>,
    live: HashMap<u64, LiveEntry<E>>,
    next_seq: u64,
    next_key: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: HashMap::new(),
            next_seq: 0,
            next_key: 0,
        }
    }

    /// Inserts `payload` for delivery at `at`. Returns a key that can later
    /// be used to [`cancel`](EventQueue::cancel) or
    /// [`reschedule`](EventQueue::reschedule) the entry.
    pub fn push(&mut self, at: SimTime, payload: E) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        let key = self.next_key;
        self.next_key += 1;
        self.heap.push(HeapEntry { at, seq, key });
        self.live.insert(key, LiveEntry { seq, at, payload });
        EventKey(key)
    }

    /// Cancels the entry behind `key`, returning its payload, or `None` if
    /// the entry was already delivered, cancelled, or cleared. O(1): the heap
    /// triple is left behind as a tombstone and skipped on pop.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        self.live.remove(&key.0).map(|e| e.payload)
    }

    /// Moves the entry behind `key` to delivery time `at`, keeping its
    /// payload. Returns `false` if the entry is no longer pending. The entry
    /// is re-sequenced: among events at the new instant it is delivered as if
    /// it had just been scheduled.
    pub fn reschedule(&mut self, key: EventKey, at: SimTime) -> bool {
        let Some(entry) = self.live.get_mut(&key.0) else {
            return false;
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        entry.seq = seq;
        entry.at = at;
        self.heap.push(HeapEntry {
            at,
            seq,
            key: key.0,
        });
        true
    }

    /// Delivery time of the entry behind `key`, if it is still pending.
    pub fn time_of(&self, key: EventKey) -> Option<SimTime> {
        self.live.get(&key.0).map(|e| e.at)
    }

    /// Returns true if the entry behind `key` is still pending.
    pub fn is_pending(&self, key: EventKey) -> bool {
        self.live.contains_key(&key.0)
    }

    /// Removes and returns the earliest pending event, if any, discarding any
    /// tombstones (cancelled or superseded triples) encountered on the way.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(top) = self.heap.pop() {
            let is_current = self
                .live
                .get(&top.key)
                .is_some_and(|entry| entry.seq == top.seq);
            if is_current {
                let entry = self.live.remove(&top.key).expect("checked above");
                return Some((top.at, entry.payload));
            }
        }
        None
    }

    /// Returns the delivery time of the earliest pending event, if any.
    /// Prunes stale heap tombstones from the top as a side effect (which is
    /// why this takes `&mut self`).
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(top) = self.heap.peek() {
            let is_current = self
                .live
                .get(&top.key)
                .is_some_and(|entry| entry.seq == top.seq);
            if is_current {
                return Some(top.at);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of pending (live) events. Tombstones do not count.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.live.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..100u32 {
            q.push(t, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::ZERO + SimDuration::from_millis(5), 1u8);
        q.push(SimTime::ZERO + SimDuration::from_millis(2), 2u8);
        assert_eq!(q.peek_time().unwrap(), SimTime::from_nanos(2_000_000));
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), v), (2_000_000, 2));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0u8);
        q.push(SimTime::ZERO, 1u8);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_removes_entry_and_returns_payload() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(10), "a");
        let b = q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.len(), 2);
        assert_eq!(q.cancel(a), Some("a"));
        assert_eq!(q.len(), 1);
        assert!(!q.is_pending(a));
        assert!(q.is_pending(b));
        // Double-cancel is a no-op.
        assert_eq!(q.cancel(a), None);
        // The tombstone never surfaces.
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancelled_top_does_not_mask_peek() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(5), "a");
        q.push(SimTime::from_nanos(10), "b");
        q.cancel(a);
        assert_eq!(q.peek_time().unwrap(), SimTime::from_nanos(10));
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    fn reschedule_moves_forward_and_backward() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(10), "a");
        let _b = q.push(SimTime::from_nanos(20), "b");
        // Push "a" later than "b"...
        assert!(q.reschedule(a, SimTime::from_nanos(30)));
        assert_eq!(q.time_of(a).unwrap(), SimTime::from_nanos(30));
        assert_eq!(q.len(), 2, "reschedule does not change the live count");
        // ...then earlier again.
        assert!(q.reschedule(a, SimTime::from_nanos(15)));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.pop().is_none());
        // Keys of delivered entries are dead.
        assert!(!q.reschedule(a, SimTime::from_nanos(99)));
    }

    #[test]
    fn rescheduled_event_is_fifo_at_its_new_instant() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(100);
        let a = q.push(t, "a");
        q.push(t, "b");
        // Rescheduling "a" to the same instant moves it behind "b": it now has
        // the insertion order of the reschedule.
        assert!(q.reschedule(a, t));
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn reschedule_after_cancel_fails() {
        let mut q = EventQueue::new();
        let a = q.push(SimTime::from_nanos(10), 7u8);
        q.cancel(a);
        assert!(!q.reschedule(a, SimTime::from_nanos(20)));
        assert!(q.pop().is_none());
    }

    #[test]
    fn many_reschedules_leave_no_live_residue() {
        let mut q = EventQueue::new();
        let key = q.push(SimTime::from_nanos(0), 0u32);
        for i in 1..1000u64 {
            assert!(q.reschedule(key, SimTime::from_nanos(i)));
        }
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(999));
        assert!(q.is_empty());
        assert!(q.pop().is_none());
    }
}
