//! The pending-event set.
//!
//! A thin wrapper around a binary heap that guarantees *stable* ordering:
//! events scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO). Stability matters for reproducibility — protocol
//! handlers frequently schedule several zero-delay follow-ups and their
//! relative order must not depend on heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A scheduled entry: payload `E` plus its delivery time and insertion sequence.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered, insertion-stable queue of pending events.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Inserts `payload` for delivery at `at`. Returns the insertion sequence
    /// number, which is unique for the lifetime of the queue.
    pub fn push(&mut self, at: SimTime, payload: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        seq
    }

    /// Removes and returns the earliest pending event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Returns the delivery time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns true if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), "c");
        q.push(SimTime::from_nanos(10), "a");
        q.push(SimTime::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..100u32 {
            q.push(t, i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert!(q.peek_time().is_none());
        q.push(SimTime::ZERO + SimDuration::from_millis(5), 1u8);
        q.push(SimTime::ZERO + SimDuration::from_millis(2), 2u8);
        assert_eq!(q.peek_time().unwrap(), SimTime::from_nanos(2_000_000));
        let (t, v) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), v), (2_000_000, 2));
    }

    #[test]
    fn len_and_clear() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0u8);
        q.push(SimTime::ZERO, 1u8);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }
}
