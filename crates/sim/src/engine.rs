//! The simulation driver: a virtual clock plus the pending-event set.

use crate::queue::{EventKey, EventQueue};
use crate::time::{SimDuration, SimTime};

/// Outcome of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the time limit.
    Drained,
    /// The time limit was reached with events still pending.
    TimeLimit,
    /// The event-count limit was reached with events still pending.
    EventLimit,
    /// The handler requested a stop.
    Stopped,
}

/// Control value returned by event handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep processing events.
    #[default]
    Continue,
    /// Stop the run after this event.
    Stop,
}

/// Scheduling-activity counters maintained by the simulator. The counts are
/// pure functions of the event schedule (no wall-clock input), so two
/// identical runs report identical stats — they are safe to surface in
/// deterministic run reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events inserted via `schedule_at` / `schedule_in`.
    pub scheduled: u64,
    /// Successful cancellations (the event was still pending).
    pub cancelled: u64,
    /// Successful reschedules (the event was still pending).
    pub rescheduled: u64,
    /// High-water mark of the pending-event set.
    pub max_pending: u64,
}

/// A deterministic discrete-event simulator parameterised by its event payload.
///
/// The simulator only owns time and the event set; all domain state lives in
/// the caller. Handlers receive `&mut Simulator` so they can schedule
/// follow-up events while handling one.
///
/// # Examples
///
/// ```
/// use desim::{Simulator, SimDuration, Control};
///
/// let mut sim: Simulator<&'static str> = Simulator::new();
/// sim.schedule_in(SimDuration::from_secs(1), "tick");
/// let mut seen = Vec::new();
/// sim.run(|sim, _t, ev| {
///     seen.push(ev);
///     if seen.len() < 3 {
///         sim.schedule_in(SimDuration::from_secs(1), "tick");
///     }
///     Control::Continue
/// });
/// assert_eq!(seen.len(), 3);
/// assert_eq!(sim.now().as_secs_f64(), 3.0);
/// ```
///
/// Cloning the simulator (`E: Clone`) checkpoints the clock, the pending-event
/// set (see [`EventQueue`]'s clone contract) and the counters: the clone
/// replays the exact future of the original.
#[derive(Debug, Clone)]
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    max_events: u64,
    stats: SimStats,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            max_events: u64::MAX,
            stats: SimStats::default(),
        }
    }

    /// Caps the total number of events a run may process (a runaway guard for
    /// protocols that accidentally self-schedule without making progress).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.max_events = limit;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Scheduling-activity counters accumulated since construction.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Schedules `event` for delivery at absolute time `at`, returning a key
    /// for later [`cancel`](Simulator::cancel) / [`reschedule`](Simulator::reschedule).
    ///
    /// Scheduling in the past is clamped to the current instant rather than
    /// panicking: fluid-model rate changes legitimately produce completion
    /// estimates that land "now".
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventKey {
        let at = at.max(self.now);
        let key = self.queue.push(at, event);
        self.stats.scheduled += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.queue.len() as u64);
        key
    }

    /// Schedules `event` for delivery `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventKey {
        let key = self.queue.push(self.now + delay, event);
        self.stats.scheduled += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.queue.len() as u64);
        key
    }

    /// Cancels a pending event, returning its payload, or `None` if it was
    /// already delivered or cancelled.
    pub fn cancel(&mut self, key: EventKey) -> Option<E> {
        let payload = self.queue.cancel(key);
        if payload.is_some() {
            self.stats.cancelled += 1;
        }
        payload
    }

    /// Moves a pending event to the new absolute time `at` (clamped to the
    /// current instant). Returns `false` if the event is no longer pending.
    pub fn reschedule(&mut self, key: EventKey, at: SimTime) -> bool {
        let moved = self.queue.reschedule(key, at.max(self.now));
        if moved {
            self.stats.rescheduled += 1;
        }
        moved
    }

    /// Returns true if the event behind `key` has not yet been delivered or
    /// cancelled.
    pub fn is_pending(&self, key: EventKey) -> bool {
        self.queue.is_pending(key)
    }

    /// Delivery time of the next pending event, if any. Takes `&mut self`
    /// because stale heap tombstones of cancelled events are pruned here.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Advances the clock to `t` without processing events (no-op if `t` is
    /// in the past). Drivers that process events manually via
    /// [`step`](Simulator::step) use this to clamp the end-of-run clock to
    /// their time limit, mirroring what [`run_until`](Simulator::run_until)
    /// does internally on [`RunOutcome::TimeLimit`].
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Pops the next event and advances the clock to it.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue delivered an event in the past");
        self.now = t;
        self.processed += 1;
        Some((t, ev))
    }

    /// Runs until the queue drains, a limit is hit, or the handler stops the run.
    pub fn run<F>(&mut self, handler: F) -> RunOutcome
    where
        F: FnMut(&mut Self, SimTime, E) -> Control,
    {
        self.run_until(SimTime::MAX, handler)
    }

    /// Runs until `limit` (inclusive), the queue drains, an event-count limit
    /// is hit, or the handler stops the run.
    pub fn run_until<F>(&mut self, limit: SimTime, mut handler: F) -> RunOutcome
    where
        F: FnMut(&mut Self, SimTime, E) -> Control,
    {
        loop {
            if self.processed >= self.max_events {
                return RunOutcome::EventLimit;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > limit => {
                    // Advance the clock to the limit so callers observe a
                    // consistent "end of run" time.
                    self.now = limit;
                    return RunOutcome::TimeLimit;
                }
                Some(_) => {}
            }
            let (t, ev) = self.step().expect("peek said an event was pending");
            if handler(self, t, ev) == Control::Stop {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_order_and_advances_clock() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs_f64(2.0), 2);
        sim.schedule_at(SimTime::from_secs_f64(1.0), 1);
        let mut order = Vec::new();
        let outcome = sim.run(|sim, t, ev| {
            order.push((t.as_secs_f64(), ev));
            if ev == 1 {
                sim.schedule_in(SimDuration::from_millis(500), 3);
            }
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(order, vec![(1.0, 1), (1.5, 3), (2.0, 2)]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn time_limit_stops_and_clamps_clock() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_at(SimTime::from_secs_f64(10.0), ());
        let outcome = sim.run_until(SimTime::from_secs_f64(5.0), |_, _, _| Control::Continue);
        assert_eq!(outcome, RunOutcome::TimeLimit);
        assert_eq!(sim.now(), SimTime::from_secs_f64(5.0));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn handler_can_stop() {
        let mut sim: Simulator<u32> = Simulator::new();
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(i), i as u32);
        }
        let outcome = sim.run(|_, _, ev| {
            if ev == 3 {
                Control::Stop
            } else {
                Control::Continue
            }
        });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn event_limit_guards_runaway() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.set_event_limit(100);
        sim.schedule_at(SimTime::ZERO, ());
        let outcome = sim.run(|sim, _, _| {
            sim.schedule_in(SimDuration::from_nanos(1), ());
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::EventLimit);
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    fn cancelled_events_are_never_delivered() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs_f64(1.0), 1);
        let key = sim.schedule_at(SimTime::from_secs_f64(2.0), 2);
        sim.schedule_at(SimTime::from_secs_f64(3.0), 3);
        assert_eq!(sim.cancel(key), Some(2));
        assert_eq!(sim.pending(), 2);
        let mut seen = Vec::new();
        let outcome = sim.run(|_, _, ev| {
            seen.push(ev);
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(seen, vec![1, 3]);
        assert_eq!(
            sim.events_processed(),
            2,
            "tombstones are not processed events"
        );
    }

    #[test]
    fn queue_of_only_cancelled_events_counts_as_drained() {
        let mut sim: Simulator<()> = Simulator::new();
        let key = sim.schedule_at(SimTime::from_secs_f64(1.0), ());
        sim.cancel(key);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.run(|_, _, _| Control::Continue), RunOutcome::Drained);
        assert_eq!(sim.now(), SimTime::ZERO, "no event was processed");
    }

    #[test]
    fn reschedule_moves_delivery_and_clamps_to_now() {
        let mut sim: Simulator<u32> = Simulator::new();
        let key = sim.schedule_at(SimTime::from_secs_f64(10.0), 1);
        sim.schedule_at(SimTime::from_secs_f64(2.0), 2);
        assert!(sim.reschedule(key, SimTime::from_secs_f64(1.0)));
        let mut order = Vec::new();
        sim.run(|sim, t, ev| {
            order.push((t.as_secs_f64(), ev));
            if ev == 2 {
                // Rescheduling into the past clamps to now.
                let k = sim.schedule_at(SimTime::from_secs_f64(5.0), 3);
                assert!(sim.reschedule(k, SimTime::from_secs_f64(0.5)));
            }
            Control::Continue
        });
        assert_eq!(order, vec![(1.0, 1), (2.0, 2), (2.0, 3)]);
    }

    #[test]
    fn advance_to_clamps_upward_only() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.advance_to(SimTime::from_secs_f64(4.0));
        assert_eq!(sim.now(), SimTime::from_secs_f64(4.0));
        sim.advance_to(SimTime::from_secs_f64(1.0));
        assert_eq!(sim.now(), SimTime::from_secs_f64(4.0), "never backwards");
    }

    #[test]
    fn stats_count_scheduling_activity() {
        let mut sim: Simulator<u32> = Simulator::new();
        let a = sim.schedule_at(SimTime::from_secs_f64(1.0), 1);
        let b = sim.schedule_at(SimTime::from_secs_f64(2.0), 2);
        sim.schedule_at(SimTime::from_secs_f64(3.0), 3);
        assert!(sim.reschedule(a, SimTime::from_secs_f64(4.0)));
        assert_eq!(sim.cancel(b), Some(2));
        // Dead keys do not inflate the counters.
        assert!(sim.cancel(b).is_none());
        assert!(!sim.reschedule(b, SimTime::from_secs_f64(9.0)));
        let stats = sim.stats();
        assert_eq!(stats.scheduled, 3);
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.rescheduled, 1);
        assert_eq!(stats.max_pending, 3);
        // Stats survive a run and never reset.
        sim.run(|_, _, _| Control::Continue);
        assert_eq!(sim.stats().scheduled, 3);
    }

    #[test]
    fn event_keys_expose_dense_raw_ids() {
        let mut sim: Simulator<()> = Simulator::new();
        let a = sim.schedule_at(SimTime::ZERO, ());
        let b = sim.schedule_at(SimTime::ZERO, ());
        assert_eq!(a.raw() + 1, b.raw());
    }

    #[test]
    fn scheduling_in_the_past_is_clamped() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs_f64(5.0), 1);
        sim.run(|sim, _, ev| {
            if ev == 1 {
                // "One second ago" gets delivered immediately, not dropped.
                sim.schedule_at(SimTime::from_secs_f64(4.0), 2);
            }
            Control::Continue
        });
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(sim.now(), SimTime::from_secs_f64(5.0));
    }
}
