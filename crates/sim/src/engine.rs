//! The simulation driver: a virtual clock plus the pending-event set.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Outcome of a bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the time limit.
    Drained,
    /// The time limit was reached with events still pending.
    TimeLimit,
    /// The event-count limit was reached with events still pending.
    EventLimit,
    /// The handler requested a stop.
    Stopped,
}

/// Control value returned by event handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Control {
    /// Keep processing events.
    #[default]
    Continue,
    /// Stop the run after this event.
    Stop,
}

/// A deterministic discrete-event simulator parameterised by its event payload.
///
/// The simulator only owns time and the event set; all domain state lives in
/// the caller. Handlers receive `&mut Simulator` so they can schedule
/// follow-up events while handling one.
///
/// # Examples
///
/// ```
/// use desim::{Simulator, SimDuration, Control};
///
/// let mut sim: Simulator<&'static str> = Simulator::new();
/// sim.schedule_in(SimDuration::from_secs(1), "tick");
/// let mut seen = Vec::new();
/// sim.run(|sim, _t, ev| {
///     seen.push(ev);
///     if seen.len() < 3 {
///         sim.schedule_in(SimDuration::from_secs(1), "tick");
///     }
///     Control::Continue
/// });
/// assert_eq!(seen.len(), 3);
/// assert_eq!(sim.now().as_secs_f64(), 3.0);
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    now: SimTime,
    queue: EventQueue<E>,
    processed: u64,
    max_events: u64,
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// Creates a simulator with the clock at zero.
    pub fn new() -> Self {
        Simulator {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            processed: 0,
            max_events: u64::MAX,
        }
    }

    /// Caps the total number of events a run may process (a runaway guard for
    /// protocols that accidentally self-schedule without making progress).
    pub fn set_event_limit(&mut self, limit: u64) {
        self.max_events = limit;
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` for delivery at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to the current instant rather than
    /// panicking: fluid-model rate changes legitimately produce completion
    /// estimates that land "now".
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> u64 {
        let at = at.max(self.now);
        self.queue.push(at, event)
    }

    /// Schedules `event` for delivery `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> u64 {
        self.queue.push(self.now + delay, event)
    }

    /// Delivery time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek_time()
    }

    /// Pops the next event and advances the clock to it.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let (t, ev) = self.queue.pop()?;
        debug_assert!(t >= self.now, "event queue delivered an event in the past");
        self.now = t;
        self.processed += 1;
        Some((t, ev))
    }

    /// Runs until the queue drains, a limit is hit, or the handler stops the run.
    pub fn run<F>(&mut self, handler: F) -> RunOutcome
    where
        F: FnMut(&mut Self, SimTime, E) -> Control,
    {
        self.run_until(SimTime::MAX, handler)
    }

    /// Runs until `limit` (inclusive), the queue drains, an event-count limit
    /// is hit, or the handler stops the run.
    pub fn run_until<F>(&mut self, limit: SimTime, mut handler: F) -> RunOutcome
    where
        F: FnMut(&mut Self, SimTime, E) -> Control,
    {
        loop {
            if self.processed >= self.max_events {
                return RunOutcome::EventLimit;
            }
            match self.queue.peek_time() {
                None => return RunOutcome::Drained,
                Some(t) if t > limit => {
                    // Advance the clock to the limit so callers observe a
                    // consistent "end of run" time.
                    self.now = limit;
                    return RunOutcome::TimeLimit;
                }
                Some(_) => {}
            }
            let (t, ev) = self.step().expect("peek said an event was pending");
            if handler(self, t, ev) == Control::Stop {
                return RunOutcome::Stopped;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_in_order_and_advances_clock() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs_f64(2.0), 2);
        sim.schedule_at(SimTime::from_secs_f64(1.0), 1);
        let mut order = Vec::new();
        let outcome = sim.run(|sim, t, ev| {
            order.push((t.as_secs_f64(), ev));
            if ev == 1 {
                sim.schedule_in(SimDuration::from_millis(500), 3);
            }
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::Drained);
        assert_eq!(order, vec![(1.0, 1), (1.5, 3), (2.0, 2)]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn time_limit_stops_and_clamps_clock() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.schedule_at(SimTime::from_secs_f64(10.0), ());
        let outcome = sim.run_until(SimTime::from_secs_f64(5.0), |_, _, _| Control::Continue);
        assert_eq!(outcome, RunOutcome::TimeLimit);
        assert_eq!(sim.now(), SimTime::from_secs_f64(5.0));
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn handler_can_stop() {
        let mut sim: Simulator<u32> = Simulator::new();
        for i in 0..10 {
            sim.schedule_at(SimTime::from_nanos(i), i as u32);
        }
        let outcome = sim.run(|_, _, ev| if ev == 3 { Control::Stop } else { Control::Continue });
        assert_eq!(outcome, RunOutcome::Stopped);
        assert_eq!(sim.events_processed(), 4);
    }

    #[test]
    fn event_limit_guards_runaway() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.set_event_limit(100);
        sim.schedule_at(SimTime::ZERO, ());
        let outcome = sim.run(|sim, _, _| {
            sim.schedule_in(SimDuration::from_nanos(1), ());
            Control::Continue
        });
        assert_eq!(outcome, RunOutcome::EventLimit);
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs_f64(5.0), 1);
        sim.run(|sim, _, ev| {
            if ev == 1 {
                // "One second ago" gets delivered immediately, not dropped.
                sim.schedule_at(SimTime::from_secs_f64(4.0), 2);
            }
            Control::Continue
        });
        assert_eq!(sim.events_processed(), 2);
        assert_eq!(sim.now(), SimTime::from_secs_f64(5.0));
    }
}
