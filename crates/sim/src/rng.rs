//! Deterministic random-number streams.
//!
//! Every source of randomness in an experiment is derived from a single
//! experiment seed plus a human-readable stream label. Two components that
//! draw from differently labelled streams cannot perturb each other's
//! sequences, so adding randomness to one part of the system does not change
//! the behaviour of another — a property that makes A/B comparisons between
//! protocol variants meaningful.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A factory of independent, reproducible RNG streams.
#[derive(Debug, Clone)]
pub struct RngFactory {
    seed: u64,
}

impl RngFactory {
    /// Creates a factory rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        RngFactory { seed }
    }

    /// Returns the root seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives the RNG stream identified by `label`.
    ///
    /// The same `(seed, label)` pair always yields the same sequence.
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(mix(self.seed, hash_label(label)))
    }

    /// Derives a stream identified by a label and a numeric index (e.g. a
    /// per-node stream).
    pub fn stream_indexed(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(mix(mix(self.seed, hash_label(label)), index))
    }
}

/// FNV-1a hash of the label bytes.
fn hash_label(label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64-style mixer; spreads correlated inputs across the output space.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_sequence() {
        let f = RngFactory::new(42);
        let a: Vec<u32> = f
            .stream("loss")
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        let b: Vec<u32> = f
            .stream("loss")
            .sample_iter(rand::distributions::Standard)
            .take(16)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(42);
        let a: u64 = f.stream("loss").gen();
        let b: u64 = f.stream("delay").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngFactory::new(1).stream("x").gen();
        let b: u64 = RngFactory::new(2).stream("x").gen();
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngFactory::new(7);
        let a: u64 = f.stream_indexed("node", 0).gen();
        let b: u64 = f.stream_indexed("node", 1).gen();
        assert_ne!(a, b);
        let a2: u64 = f.stream_indexed("node", 0).gen();
        assert_eq!(a, a2);
    }
}
