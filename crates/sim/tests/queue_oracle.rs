//! Model-based oracle test for [`desim::EventQueue`].
//!
//! The real queue is a tombstoned binary heap over a keyed live table —
//! enough machinery that subtle ordering bugs (a reschedule keeping its old
//! sequence number, a cancel resurrecting through a stale triple) would be
//! easy to introduce. The oracle is deliberately naive: a `Vec` of
//! `(time, seq, id)` entries re-sorted before every inspection, where
//! `reschedule` is literally remove-then-reinsert with a fresh sequence
//! number. Random interleavings of `push` / `cancel` / `reschedule` must
//! leave both queues popping the *identical* payload sequence.

use desim::{EventQueue, SimTime};
use proptest::prelude::*;

/// The trivially correct model: entries sorted by (time, insertion seq).
#[derive(Default)]
struct ModelQueue {
    /// `(delivery time, sequence, payload id)` of every live entry.
    entries: Vec<(u64, u64, usize)>,
    next_seq: u64,
}

impl ModelQueue {
    fn push(&mut self, at: u64, id: usize) {
        self.entries.push((at, self.next_seq, id));
        self.next_seq += 1;
    }

    fn cancel(&mut self, id: usize) -> bool {
        match self.entries.iter().position(|&(_, _, i)| i == id) {
            Some(pos) => {
                self.entries.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Remove-then-reinsert: the rescheduled entry sequences as if it had
    /// just been pushed, which is exactly the contract of
    /// [`EventQueue::reschedule`].
    fn reschedule(&mut self, id: usize, at: u64) -> bool {
        if self.cancel(id) {
            self.push(at, id);
            true
        } else {
            false
        }
    }

    fn pop_all(mut self) -> Vec<(u64, usize)> {
        self.entries.sort_unstable();
        self.entries.into_iter().map(|(t, _, id)| (t, id)).collect()
    }
}

/// One generated operation: `kind` 0 = push, 1 = cancel, 2 = reschedule.
/// `time` is the delivery instant (push / reschedule); `target` picks the
/// entry a cancel/reschedule aims at (modulo the number of pushes so far).
type Op = (u8, u64, usize);

/// A popped `(delivery time, payload id)` sequence.
type Popped = Vec<(u64, usize)>;

fn run_interleaving(ops: &[Op]) -> (Popped, Popped) {
    let mut queue: EventQueue<usize> = EventQueue::new();
    let mut model = ModelQueue::default();
    // Key of every push ever made, so cancels/reschedules can also target
    // already-dead entries (the queue must report those as no-ops).
    let mut keys = Vec::new();

    for &(kind, time, target) in ops {
        match kind {
            0 => {
                let id = keys.len();
                keys.push(queue.push(SimTime::from_nanos(time), id));
                model.push(time, id);
            }
            1 if !keys.is_empty() => {
                let id = target % keys.len();
                let real = queue.cancel(keys[id]).is_some();
                let modelled = model.cancel(id);
                assert_eq!(real, modelled, "cancel({id}) liveness diverged");
            }
            2 if !keys.is_empty() => {
                let id = target % keys.len();
                let real = queue.reschedule(keys[id], SimTime::from_nanos(time));
                let modelled = model.reschedule(id, time);
                assert_eq!(real, modelled, "reschedule({id}) liveness diverged");
            }
            _ => {} // cancel/reschedule before any push: nothing to target
        }
    }

    let mut real = Vec::new();
    while let Some((t, id)) = queue.pop() {
        real.push((t.as_nanos(), id));
    }
    (real, model.pop_all())
}

/// Replays `ops`, cloning the queue after `cut` operations (a snapshot) and
/// running the remainder on the *clone*. Returns the clone's pops, the
/// abandoned original's pops, and the op count actually applied before the
/// cut — the harness for the checkpoint/fork contract: a cloned queue must
/// pop exactly like one that was never snapshotted, and mutating the clone
/// must leave the original frozen at the cut.
fn run_with_snapshot(ops: &[Op], cut: usize) -> (Popped, Popped) {
    let cut = cut % (ops.len() + 1);
    let mut queue: EventQueue<usize> = EventQueue::new();
    let mut keys = Vec::new();

    let apply = |queue: &mut EventQueue<usize>, keys: &mut Vec<_>, ops: &[Op]| {
        for &(kind, time, target) in ops {
            match kind {
                0 => {
                    let id = keys.len();
                    keys.push(queue.push(SimTime::from_nanos(time), id));
                }
                1 if !keys.is_empty() => {
                    queue.cancel(keys[target % keys.len()]);
                }
                2 if !keys.is_empty() => {
                    queue.reschedule(keys[target % keys.len()], SimTime::from_nanos(time));
                }
                _ => {}
            }
        }
    };

    apply(&mut queue, &mut keys, &ops[..cut]);
    // The snapshot: keys issued before the cut stay valid against the clone,
    // because a clone preserves the whole key space.
    let mut snap = queue.clone();
    apply(&mut snap, &mut keys, &ops[cut..]);

    let drain = |mut q: EventQueue<usize>| -> Popped {
        let mut out = Vec::new();
        while let Some((t, id)) = q.pop() {
            out.push((t.as_nanos(), id));
        }
        out
    };
    (drain(snap), drain(queue))
}

proptest! {
    /// Any interleaving of push/cancel/reschedule leaves the tombstoned heap
    /// and the naive sorted-vec model popping the identical (time, payload)
    /// sequence — same entries, same order, including FIFO tie-breaks among
    /// equal timestamps.
    #[test]
    fn queue_pops_exactly_like_the_sorted_vec_model(
        ops in collection::vec((0u8..3, 0u64..1_000, any::<usize>()), 1..300)
    ) {
        let (real, modelled) = run_interleaving(&ops);
        prop_assert_eq!(real, modelled);
    }

    /// Dense timestamp collisions (every event lands on one of four
    /// instants) stress the FIFO tie-break and tombstone reuse paths.
    #[test]
    fn collision_heavy_interleavings_match_the_model(
        ops in collection::vec((0u8..3, 0u64..4, any::<usize>()), 1..300)
    ) {
        let (real, modelled) = run_interleaving(&ops);
        prop_assert_eq!(real, modelled);
    }

    /// A snapshot (clone) taken at a random point of the interleaving, with
    /// the remaining operations applied to the clone, pops exactly like a
    /// queue that was never snapshotted — and the abandoned original stays
    /// frozen at the cut (the clone shares no mutable state with it).
    #[test]
    fn snapshot_restore_at_a_random_point_pops_identically(
        ops in collection::vec((0u8..3, 0u64..50, any::<usize>()), 1..200),
        cut in any::<usize>(),
    ) {
        let (straight, modelled) = run_interleaving(&ops);
        prop_assert_eq!(&straight, &modelled);
        let (resumed, frozen) = run_with_snapshot(&ops, cut);
        prop_assert_eq!(resumed, straight, "the restored queue diverged");
        // The original, never touched after the cut, must pop exactly what a
        // prefix-only run pops: post-cut mutations must not leak into it.
        let cut = cut % (ops.len() + 1);
        let (prefix_only, _) = run_interleaving(&ops[..cut]);
        prop_assert_eq!(frozen, prefix_only, "the snapshot original was mutated");
    }
}

#[test]
fn oracle_catches_ordering_differences() {
    // Sanity-check the harness itself: a hand-built interleaving with a
    // reschedule into a tie must pop the rescheduled entry last among its
    // instant, in both implementations.
    let ops: Vec<Op> = vec![
        (0, 10, 0), // id 0 @ 10
        (0, 10, 0), // id 1 @ 10
        (0, 5, 0),  // id 2 @ 5
        (2, 10, 2), // reschedule id 2 → 10 (now sequences after ids 0, 1)
        (1, 0, 1),  // cancel id 1
    ];
    let (real, modelled) = run_interleaving(&ops);
    assert_eq!(real, vec![(10, 0), (10, 2)]);
    assert_eq!(real, modelled);
}
