//! Convenience constructors for whole Bullet′ deployments.
//!
//! The experiment harness, the examples and the baselines all need the same
//! three steps: build a control tree over the topology, instantiate one
//! protocol node per host, and hand everything to the runner. This module
//! packages those steps.

use desim::RngFactory;
use netsim::{Network, NodeId, Runner, Topology};
use overlay::ControlTree;

use crate::config::Config;
use crate::node::BulletPrimeNode;

/// Default fan-out of the control tree (the source pushes fresh blocks to
/// this many direct children).
pub const CONTROL_TREE_DEGREE: usize = 10;

/// Builds a Bullet′ deployment over `topo`: a random control tree rooted at
/// node 0 and one [`BulletPrimeNode`] per host, all sharing `cfg`.
pub fn build_nodes(topo: &Topology, cfg: &Config, rng: &RngFactory) -> Vec<BulletPrimeNode> {
    let tree = ControlTree::random(topo.len(), CONTROL_TREE_DEGREE, rng);
    build_nodes_with_tree(topo, &tree, cfg)
}

/// Builds one [`BulletPrimeNode`] per host over an explicit control tree.
pub fn build_nodes_with_tree(
    topo: &Topology,
    tree: &ControlTree,
    cfg: &Config,
) -> Vec<BulletPrimeNode> {
    assert_eq!(
        tree.len(),
        topo.len(),
        "control tree and topology sizes differ"
    );
    (0..topo.len() as u32)
        .map(|i| BulletPrimeNode::new(NodeId(i), tree, cfg.clone()))
        .collect()
}

/// Builds a ready-to-run [`Runner`] for a Bullet′ experiment on `topo`.
///
/// The source (node 0) is exempted from the completion check, so
/// [`Runner::run`] stops once every *receiver* finishes.
pub fn build_runner(topo: Topology, cfg: &Config, rng: &RngFactory) -> Runner<BulletPrimeNode> {
    let nodes = build_nodes(&topo, cfg, rng);
    let mut runner = Runner::new(Network::new(topo), nodes, rng);
    runner.exempt_from_completion(NodeId(0));
    runner
}

/// Builds a [`Runner`] hosting **several concurrent, independent Bullet′
/// meshes** on one topology: `group_sizes` partitions the node ids into
/// contiguous groups, each with its own control tree, RanSub overlay and
/// source (the group's first id). The meshes never exchange control or data
/// traffic — they only contend for the emulated links, which is exactly what
/// the shared-bottleneck scenarios (`fig18`) measure. Every group's source is
/// exempted from the completion check.
///
/// # Panics
///
/// Panics if the group sizes do not sum to the topology size or any group
/// has fewer than two nodes.
pub fn build_group_runner(
    topo: Topology,
    cfg: &Config,
    rng: &RngFactory,
    group_sizes: &[usize],
) -> Runner<BulletPrimeNode> {
    assert_eq!(
        group_sizes.iter().sum::<usize>(),
        topo.len(),
        "group sizes must partition the topology"
    );
    let mut nodes = Vec::with_capacity(topo.len());
    let mut sources = Vec::with_capacity(group_sizes.len());
    let mut base = 0u32;
    for &size in group_sizes {
        assert!(size >= 2, "every mesh needs a source and a receiver");
        let tree = ControlTree::random_rooted(NodeId(base), size, CONTROL_TREE_DEGREE, rng);
        sources.push(tree.root());
        for i in 0..size as u32 {
            nodes.push(BulletPrimeNode::new(NodeId(base + i), &tree, cfg.clone()));
        }
        base += size as u32;
    }
    let mut runner = Runner::new(Network::new(topo), nodes, rng);
    for source in sources {
        runner.exempt_from_completion(source);
    }
    runner
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Role;
    use dissem_codec::FileSpec;
    use netsim::topology;

    #[test]
    fn builder_assigns_exactly_one_source() {
        let rng = RngFactory::new(7);
        let topo = topology::constrained_access(12);
        let cfg = Config::new(FileSpec::new(256 * 1024, 16 * 1024));
        let nodes = build_nodes(&topo, &cfg, &rng);
        assert_eq!(nodes.len(), 12);
        let sources = nodes.iter().filter(|n| n.role() == Role::Source).count();
        assert_eq!(sources, 1);
        assert_eq!(nodes[0].role(), Role::Source);
    }

    #[test]
    fn group_runner_partitions_into_independent_meshes() {
        let rng = RngFactory::new(5);
        let topo = topology::constrained_access(10);
        let cfg = Config::new(FileSpec::new(128 * 1024, 16 * 1024));
        let runner = build_group_runner(topo, &cfg, &rng, &[6, 4]);
        let nodes = runner.nodes();
        assert_eq!(nodes.len(), 10);
        // Exactly the first node of each group is a source.
        for (i, node) in nodes.iter().enumerate() {
            let expected = if i == 0 || i == 6 {
                Role::Source
            } else {
                Role::Receiver
            };
            assert_eq!(node.role(), expected, "node {i}");
        }
    }

    #[test]
    #[should_panic(expected = "partition the topology")]
    fn group_sizes_must_cover_the_topology() {
        let rng = RngFactory::new(5);
        let topo = topology::constrained_access(10);
        let cfg = Config::new(FileSpec::new(64 * 1024, 16 * 1024));
        let _ = build_group_runner(topo, &cfg, &rng, &[6, 5]);
    }

    #[test]
    #[should_panic(expected = "sizes differ")]
    fn mismatched_tree_is_rejected() {
        let rng = RngFactory::new(7);
        let topo = topology::constrained_access(5);
        let tree = ControlTree::random(6, 3, &rng);
        let cfg = Config::new(FileSpec::new(64 * 1024, 16 * 1024));
        let _ = build_nodes_with_tree(&topo, &tree, &cfg);
    }
}
