//! The per-sender outstanding-request controller (paper §3.3.3, Fig 3).
//!
//! The receiver decides, per sender, how many block requests to keep
//! outstanding. Too few and the sender's pipe drains between requests (fatal
//! on high bandwidth-delay-product paths, Fig 10); too many and a sudden
//! slowdown strands a long queue of blocks behind a slow connection (Fig 12).
//!
//! Bullet′ adapts the window with a controller borrowed from XCP's efficiency
//! controller: the sender reports, with every block, how many blocks were
//! queued in front of it (`in_front`) and the wasted time associated with it
//! (`wasted` — negative when the sender sat idle waiting for a request,
//! positive when the block waited in the queue). The controller drives the
//! system towards exactly one block queued in front of the socket buffer,
//! using the gain constants `alpha = 0.4`, `beta = 0.226` for which the XCP
//! control loop is provably stable. After each adjustment the next request is
//! *marked* and no further adjustment happens until the marked block arrives,
//! so the controller observes the effect of its last decision before acting
//! again.
//!
//! One case is left open by the paper's pseudocode (a block with positive
//! wait *and* more than one block in front of it, where applying the
//! wasted-time term would double-count the queue it waited behind, as the
//! text notes); we apply only the excess-queue term there, which preserves
//! the "decrease when over-queued" intent without double counting.

use dissem_codec::BlockId;

use crate::config::OutstandingPolicy;

/// XCP-derived proportional gain applied to the wasted-time term.
pub const ALPHA: f64 = 0.4;
/// XCP-derived gain applied to the excess-queue term.
pub const BETA: f64 = 0.226;

/// Per-sender controller for the number of outstanding block requests.
#[derive(Debug, Clone)]
pub struct OutstandingController {
    policy: OutstandingPolicy,
    /// Current (real-valued) desired number of outstanding blocks.
    desired: f64,
    /// Upper bound on the window.
    max: u32,
    /// Block whose arrival we are waiting for before adjusting again.
    marked: Option<BlockId>,
    /// Set after an adjustment: the next request issued should be marked.
    wants_mark: bool,
}

impl OutstandingController {
    /// Creates a controller with the configured initial window.
    pub fn new(policy: OutstandingPolicy, initial: u32, max: u32) -> Self {
        let desired = match policy {
            OutstandingPolicy::Dynamic => f64::from(initial),
            OutstandingPolicy::Fixed(k) => f64::from(k),
        };
        OutstandingController {
            policy,
            desired,
            max,
            marked: None,
            wants_mark: false,
        }
    }

    /// The current per-sender request budget, in whole blocks.
    ///
    /// The paper takes the ceiling whenever the value is increased so that the
    /// request rate can actually saturate the TCP connection; we apply the
    /// ceiling uniformly, clamped to `[1, max]`.
    pub fn window(&self) -> u32 {
        (self.desired.ceil().max(1.0) as u32).min(self.max)
    }

    /// True when the controller wants the next issued request to be marked.
    pub fn wants_mark(&self) -> bool {
        self.wants_mark
    }

    /// Records that `block` was just requested and consumes a pending mark.
    pub fn note_requested(&mut self, block: BlockId) {
        if self.wants_mark && self.marked.is_none() {
            self.marked = Some(block);
            self.wants_mark = false;
        }
    }

    /// Forgets the marked block (e.g. when the peering to this sender is torn
    /// down and re-established, or the marked request timed out elsewhere).
    pub fn clear_mark(&mut self) {
        self.marked = None;
        self.wants_mark = false;
    }

    /// Feeds one block receipt into the controller.
    ///
    /// * `block` — the block that arrived;
    /// * `in_front` / `wasted` — the sender-side measurements carried with it;
    /// * `bandwidth` — the receiver's current estimate of this sender's
    ///   delivery rate in bytes/second;
    /// * `block_size` — the nominal block size in bytes;
    /// * `outstanding_now` — how many requests are currently outstanding to
    ///   this sender (the `requested` of the paper's pseudocode).
    pub fn on_block_received(
        &mut self,
        block: BlockId,
        in_front: u32,
        wasted: f64,
        bandwidth: f64,
        block_size: f64,
        outstanding_now: u32,
    ) {
        if let OutstandingPolicy::Fixed(_) = self.policy {
            return;
        }
        // If an adjustment is in flight, wait for the marked block.
        if let Some(marked) = self.marked {
            if marked == block {
                self.marked = None;
            }
            return;
        }

        // Fig 3: ManageOutstanding(sender, block). Start one deeper than what
        // is currently outstanding, then apply the XCP-style corrections.
        let mut desired = f64::from(outstanding_now) + 1.0;
        let excess_queue = f64::from(in_front.saturating_sub(1));
        let wasted_blocks = wasted * bandwidth / block_size.max(1.0);
        if wasted <= 0.0 || in_front <= 1 {
            // Idle gap (negative => grows the window) or a wait with no
            // excess queue (positive => shrinks it).
            desired -= ALPHA * wasted_blocks;
        }
        if in_front > 1 {
            // Excess queue ahead of this block; do not double-count its
            // service time through the wasted term.
            desired -= BETA * excess_queue;
        }

        // Growth is rate-limited: a long idle gap usually means the receiver
        // had nothing to request (an availability gap), not that the window is
        // too small, so the window opens by at most two blocks per observed
        // delivery. Decreases are applied in full — reacting slowly to a
        // slowdown is exactly the failure mode of Fig 12.
        let desired = desired.min(self.desired + 2.0);
        let clamped = desired.clamp(1.0, f64::from(self.max));
        if (clamped - self.desired).abs() > f64::EPSILON {
            self.desired = clamped;
            // Observe the effect before adjusting again.
            self.wants_mark = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dynamic() -> OutstandingController {
        OutstandingController::new(OutstandingPolicy::Dynamic, 3, 50)
    }

    #[test]
    fn initial_window_matches_paper_default() {
        assert_eq!(dynamic().window(), 3);
        let fixed = OutstandingController::new(OutstandingPolicy::Fixed(15), 3, 50);
        assert_eq!(fixed.window(), 15);
    }

    #[test]
    fn idle_sender_grows_the_window() {
        let mut c = dynamic();
        // The sender was idle for 0.1 s at 1 MB/s with 16 KB blocks: it could
        // have sent ~6 more blocks; the window must grow.
        c.on_block_received(BlockId(0), 0, -0.1, 1_000_000.0, 16_384.0, 3);
        assert!(
            c.window() > 3,
            "window should grow after idle time, got {}",
            c.window()
        );
    }

    #[test]
    fn queue_wait_shrinks_the_window() {
        let mut c = dynamic();
        // Grow it first.
        c.on_block_received(BlockId(0), 0, -0.5, 1_000_000.0, 16_384.0, 3);
        let grown = c.window();
        assert!(grown > 3);
        assert!(c.wants_mark());
        c.note_requested(BlockId(1));
        c.on_block_received(BlockId(1), 0, 0.0, 1_000_000.0, 16_384.0, grown);
        // A block that waited 2 s with nothing else in front: strong signal to
        // shrink (the link slowed down).
        c.on_block_received(BlockId(2), 1, 2.0, 100_000.0, 16_384.0, grown);
        assert!(
            c.window() < grown,
            "window should shrink, got {}",
            c.window()
        );
    }

    #[test]
    fn deep_queue_shrinks_via_excess_queue_term() {
        let mut c = dynamic();
        // wasted > 0 and in_front > 1: only the beta term applies.
        c.on_block_received(BlockId(0), 12, 1.5, 500_000.0, 16_384.0, 3);
        // desired = 3 + 1 - 0.226 * 11 = 1.51 → ceil 2.
        assert_eq!(c.window(), 2);
    }

    #[test]
    fn excess_queue_without_wait_shrinks_gently() {
        let mut c = dynamic();
        // wasted <= 0 and in_front > 1: both terms apply; with zero wasted the
        // alpha term is zero.
        c.on_block_received(BlockId(0), 4, 0.0, 500_000.0, 16_384.0, 3);
        // desired = 3 + 1 - 0.226 * 3 = 3.32 → ceil 4.
        assert_eq!(c.window(), 4);
    }

    #[test]
    fn marked_block_gates_adjustments() {
        let mut c = dynamic();
        c.on_block_received(BlockId(0), 0, -1.0, 1_000_000.0, 16_384.0, 3);
        let w = c.window();
        assert!(c.wants_mark());
        c.note_requested(BlockId(7));
        assert!(!c.wants_mark());
        // Receipts of other blocks do not adjust while the mark is pending.
        c.on_block_received(BlockId(1), 0, -1.0, 1_000_000.0, 16_384.0, w);
        c.on_block_received(BlockId(2), 0, -1.0, 1_000_000.0, 16_384.0, w);
        assert_eq!(c.window(), w);
        // The marked block's arrival clears the gate (but does not itself adjust).
        c.on_block_received(BlockId(7), 0, -1.0, 1_000_000.0, 16_384.0, w);
        assert_eq!(c.window(), w);
        // The next receipt adjusts again.
        c.on_block_received(BlockId(3), 0, -1.0, 1_000_000.0, 16_384.0, w);
        assert!(c.window() >= w);
    }

    #[test]
    fn window_respects_bounds() {
        let mut c = dynamic();
        for i in 0..200u32 {
            let out = c.window();
            c.on_block_received(BlockId(i), 0, -10.0, 10_000_000.0, 8_192.0, out);
            if c.wants_mark() {
                c.note_requested(BlockId(1000 + i));
                c.on_block_received(BlockId(1000 + i), 0, 0.0, 10_000_000.0, 8_192.0, out);
            }
        }
        assert_eq!(c.window(), 50, "repeated idle reports saturate at the cap");

        let mut c = dynamic();
        for i in 0..200u32 {
            let out = c.window();
            c.on_block_received(BlockId(i), 50, 10.0, 10_000_000.0, 8_192.0, out);
            if c.wants_mark() {
                c.note_requested(BlockId(1000 + i));
                c.on_block_received(BlockId(1000 + i), 0, 0.0, 10_000_000.0, 8_192.0, out);
            }
        }
        assert!(c.window() >= 1);
        assert!(
            c.window() <= 3,
            "persistent deep queues drive the window down"
        );
    }

    #[test]
    fn fixed_policy_never_moves() {
        let mut c = OutstandingController::new(OutstandingPolicy::Fixed(5), 3, 50);
        c.on_block_received(BlockId(0), 0, -5.0, 1_000_000.0, 16_384.0, 5);
        c.on_block_received(BlockId(1), 20, 5.0, 1_000_000.0, 16_384.0, 5);
        assert_eq!(c.window(), 5);
        assert!(!c.wants_mark());
    }

    #[test]
    fn clear_mark_resets_gating() {
        let mut c = dynamic();
        c.on_block_received(BlockId(0), 0, -1.0, 1_000_000.0, 16_384.0, 3);
        c.note_requested(BlockId(9));
        c.clear_mark();
        let w = c.window();
        c.on_block_received(BlockId(1), 0, -1.0, 1_000_000.0, 16_384.0, w);
        assert!(
            c.window() >= w,
            "adjustments resume after clearing the mark"
        );
    }
}
