//! Per-node download metrics.
//!
//! The evaluation needs, per receiver: the download completion time (Figs
//! 4–12, 14), the sequence of block arrival times (Fig 13's inter-arrival
//! analysis and the §4.6 "overage" computation), and bookkeeping of duplicate
//! and useful arrivals (the emulator's traffic counters provide raw bytes).

use desim::SimTime;

/// Running statistics collected by a downloading node.
#[derive(Debug, Clone, Default)]
pub struct DownloadMetrics {
    /// Arrival time (seconds) of each *useful* (non-duplicate) block, in
    /// arrival order.
    pub arrival_times: Vec<f64>,
    /// Number of duplicate block arrivals.
    pub duplicate_blocks: u64,
    /// Useful payload bytes received.
    pub useful_bytes: u64,
    /// Duplicate payload bytes received.
    pub duplicate_bytes: u64,
    /// Completion time, if reached.
    pub completed_at: Option<f64>,
    /// Number of senders at completion time (diagnostic).
    pub senders_at_completion: usize,
}

impl DownloadMetrics {
    /// Records a block arrival.
    pub fn record_arrival(&mut self, now: SimTime, bytes: u64, duplicate: bool) {
        if duplicate {
            self.duplicate_blocks += 1;
            self.duplicate_bytes += bytes;
        } else {
            self.arrival_times.push(now.as_secs_f64());
            self.useful_bytes += bytes;
        }
    }

    /// Records completion.
    pub fn record_completion(&mut self, now: SimTime, senders: usize) {
        if self.completed_at.is_none() {
            self.completed_at = Some(now.as_secs_f64());
            self.senders_at_completion = senders;
        }
    }

    /// Number of useful blocks received so far.
    pub fn useful_blocks(&self) -> usize {
        self.arrival_times.len()
    }

    /// Inter-arrival times between consecutive useful blocks (Fig 13). The
    /// i-th entry is the gap before the (i+1)-th retrieved block.
    pub fn inter_arrival_times(&self) -> Vec<f64> {
        self.arrival_times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// The §4.6 "overage": how much extra time the last `tail` inter-arrival
    /// gaps took compared with the overall average gap. A pronounced
    /// last-block problem shows up as a large overage.
    pub fn last_blocks_overage(&self, tail: usize) -> f64 {
        let gaps = self.inter_arrival_times();
        if gaps.is_empty() || tail == 0 {
            return 0.0;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let tail = tail.min(gaps.len());
        gaps[gaps.len() - tail..]
            .iter()
            .map(|g| (g - mean).max(0.0))
            .sum()
    }

    /// Fraction of received blocks that were duplicates.
    pub fn duplicate_fraction(&self) -> f64 {
        let total = self.duplicate_blocks + self.arrival_times.len() as u64;
        if total == 0 {
            return 0.0;
        }
        self.duplicate_blocks as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_and_duplicates_are_tracked_separately() {
        let mut m = DownloadMetrics::default();
        m.record_arrival(SimTime::from_secs_f64(1.0), 100, false);
        m.record_arrival(SimTime::from_secs_f64(2.0), 100, true);
        m.record_arrival(SimTime::from_secs_f64(3.0), 100, false);
        assert_eq!(m.useful_blocks(), 2);
        assert_eq!(m.duplicate_blocks, 1);
        assert_eq!(m.useful_bytes, 200);
        assert_eq!(m.duplicate_bytes, 100);
        assert!((m.duplicate_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn inter_arrival_times_are_gaps() {
        let mut m = DownloadMetrics::default();
        for t in [1.0, 2.0, 4.0, 8.0] {
            m.record_arrival(SimTime::from_secs_f64(t), 1, false);
        }
        assert_eq!(m.inter_arrival_times(), vec![1.0, 2.0, 4.0]);
    }

    #[test]
    fn overage_detects_a_slow_tail() {
        let mut m = DownloadMetrics::default();
        // 99 blocks arriving once per second, then a 31-second gap.
        for i in 0..99 {
            m.record_arrival(SimTime::from_secs_f64(f64::from(i)), 1, false);
        }
        m.record_arrival(SimTime::from_secs_f64(98.0 + 31.0), 1, false);
        let overage = m.last_blocks_overage(20);
        assert!(
            overage > 29.0,
            "a 31s gap against a ~1.3s mean must show up, got {overage}"
        );

        let mut uniform = DownloadMetrics::default();
        for i in 0..100 {
            uniform.record_arrival(SimTime::from_secs_f64(f64::from(i)), 1, false);
        }
        assert!(uniform.last_blocks_overage(20) < 1e-9);
    }

    #[test]
    fn completion_is_recorded_once() {
        let mut m = DownloadMetrics::default();
        m.record_completion(SimTime::from_secs_f64(10.0), 7);
        m.record_completion(SimTime::from_secs_f64(20.0), 9);
        assert_eq!(m.completed_at, Some(10.0));
        assert_eq!(m.senders_at_completion, 7);
    }

    #[test]
    fn empty_metrics_are_well_behaved() {
        let m = DownloadMetrics::default();
        assert!(m.inter_arrival_times().is_empty());
        assert_eq!(m.last_blocks_overage(20), 0.0);
        assert_eq!(m.duplicate_fraction(), 0.0);
    }
}
