//! Bullet′ configuration.
//!
//! The paper's stated design goal is to *minimise the number of parameters an
//! end user has to tweak* (§3): the released defaults below are the adaptive
//! ones. The explicit "fixed" variants exist so the evaluation can reproduce
//! the paper's ablations (fixed peer-set sizes in Figs 7–9, fixed outstanding
//! windows in Figs 10–12, alternative request strategies in Fig 6).

use desim::SimDuration;
use dissem_codec::FileSpec;

/// How a receiver orders candidate blocks when issuing requests (paper §3.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStrategy {
    /// Request blocks in the order their availability was discovered.
    FirstEncountered,
    /// Request blocks in uniformly random order.
    Random,
    /// Request the globally rarest blocks first, ties broken deterministically.
    Rarest,
    /// Request the rarest blocks first, ties broken uniformly at random
    /// (Bullet′'s default).
    RarestRandom,
}

/// How many senders/receivers a node maintains (paper §3.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerSetPolicy {
    /// Adaptive sizing: start at the initial value, adjust every RanSub epoch
    /// with the ManageSenders/ManageReceivers feedback loop and 1.5σ trimming.
    Dynamic,
    /// Keep exactly this many senders and receivers (no trimming, no
    /// adaptation) — the static configurations of Figs 7–9.
    Fixed(usize),
}

/// How many block requests a receiver keeps outstanding per sender (§3.3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutstandingPolicy {
    /// The XCP-inspired dynamic controller (Bullet′'s default).
    Dynamic,
    /// A fixed number of outstanding blocks per sender (BitTorrent uses 5).
    Fixed(u32),
}

/// Whether the source transmits the original blocks or a rateless-encoded
/// stream (§2.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferMode {
    /// Transmit the original file blocks; a receiver needs every block.
    Unencoded,
    /// Transmit a source-encoded stream; a receiver needs `(1 + epsilon) * n`
    /// distinct blocks out of a stream of `(1 + headroom) * n`.
    Encoded {
        /// Reception overhead (the paper measured ≈ 0.04).
        epsilon: f64,
    },
}

/// Complete configuration of a Bullet′ deployment.
#[derive(Debug, Clone)]
pub struct Config {
    /// The file being disseminated.
    pub file: FileSpec,
    /// Request-ordering strategy.
    pub request_strategy: RequestStrategy,
    /// Peer-set sizing policy.
    pub peer_policy: PeerSetPolicy,
    /// Per-sender outstanding-request policy.
    pub outstanding_policy: OutstandingPolicy,
    /// Unencoded vs source-encoded transfer.
    pub transfer_mode: TransferMode,
    /// Initial number of senders and receivers (the released Bullet default).
    pub initial_peers: usize,
    /// Hard lower bound on the number of senders/receivers.
    pub min_peers: usize,
    /// Hard upper bound on the number of senders/receivers.
    pub max_peers: usize,
    /// RanSub collect/distribute period.
    pub ransub_period: SimDuration,
    /// Number of summaries delivered per RanSub epoch.
    pub ransub_subset_size: usize,
    /// Peers whose bandwidth sits this many standard deviations below the
    /// mean are disconnected at epoch boundaries.
    pub trim_sigma: f64,
    /// Initial per-sender outstanding window (blocks).
    pub initial_outstanding: u32,
    /// Upper bound on the per-sender outstanding window.
    pub max_outstanding: u32,
    /// How many blocks the source keeps queued per control-tree child before
    /// considering that child's pipe full.
    pub source_pipe_blocks: usize,
    /// If true, availability diffs are only flushed by the periodic
    /// housekeeping timer instead of self-clocking on idle request pipelines.
    /// Bullet′ keeps this off; the original-Bullet baseline turns it on to
    /// model its coarser, periodic summary exchange.
    pub lazy_diffs: bool,
    /// Housekeeping timer period (request refresh / stall recovery).
    pub housekeeping_period: SimDuration,
    /// Re-request a block from another sender if it has been outstanding this
    /// long (stall insurance; the paper notes cancelling in-flight blocks is
    /// impractical, so this is deliberately generous).
    pub request_timeout: SimDuration,
}

impl Config {
    /// The released Bullet′ defaults for a given file.
    pub fn new(file: FileSpec) -> Self {
        Config {
            file,
            request_strategy: RequestStrategy::RarestRandom,
            peer_policy: PeerSetPolicy::Dynamic,
            outstanding_policy: OutstandingPolicy::Dynamic,
            transfer_mode: TransferMode::Unencoded,
            initial_peers: 10,
            min_peers: 6,
            max_peers: 25,
            ransub_period: SimDuration::from_secs(5),
            ransub_subset_size: 10,
            trim_sigma: 1.5,
            initial_outstanding: 3,
            max_outstanding: 50,
            source_pipe_blocks: 3,
            lazy_diffs: false,
            housekeeping_period: SimDuration::from_secs(2),
            request_timeout: SimDuration::from_secs(15),
        }
    }

    /// Convenience: the paper's ModelNet workload (100 MB file, 16 KB blocks).
    pub fn modelnet_default() -> Self {
        Config::new(FileSpec::from_mb_kb(100, 16))
    }

    /// Number of distinct blocks a receiver must hold to complete.
    pub fn completion_target(&self) -> u32 {
        match self.transfer_mode {
            TransferMode::Unencoded => self.file.num_blocks(),
            TransferMode::Encoded { epsilon } => self.file.completion_target(epsilon),
        }
    }

    /// Size of the block identifier space (larger than the file in encoded
    /// mode so receivers have spare distinct blocks to choose from).
    pub fn block_space(&self) -> u32 {
        match self.transfer_mode {
            TransferMode::Unencoded => self.file.num_blocks(),
            TransferMode::Encoded { epsilon } => {
                // Three times the reception overhead of headroom.
                (f64::from(self.file.num_blocks()) * (1.0 + 3.0 * epsilon.max(0.0))).ceil() as u32
            }
        }
    }

    /// Validates invariants; called by the node constructor.
    pub fn validate(&self) {
        assert!(self.min_peers >= 1, "min_peers must be at least 1");
        assert!(
            self.min_peers <= self.initial_peers && self.initial_peers <= self.max_peers,
            "initial_peers must lie between min_peers and max_peers"
        );
        assert!(
            self.initial_outstanding >= 1,
            "need at least one outstanding block"
        );
        assert!(self.max_outstanding >= self.initial_outstanding);
        assert!(self.trim_sigma > 0.0);
        assert!(self.source_pipe_blocks >= 1);
        if let TransferMode::Encoded { epsilon } = self.transfer_mode {
            assert!((0.0..1.0).contains(&epsilon), "epsilon must be in [0, 1)");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let cfg = Config::modelnet_default();
        assert_eq!(cfg.initial_peers, 10);
        assert_eq!(cfg.min_peers, 6);
        assert_eq!(cfg.max_peers, 25);
        assert_eq!(cfg.ransub_period, SimDuration::from_secs(5));
        assert_eq!(cfg.initial_outstanding, 3);
        assert_eq!(cfg.request_strategy, RequestStrategy::RarestRandom);
        assert_eq!(cfg.trim_sigma, 1.5);
        assert_eq!(cfg.file.num_blocks(), 6400);
        cfg.validate();
    }

    #[test]
    fn completion_target_depends_on_mode() {
        let mut cfg = Config::new(FileSpec::from_mb_kb(10, 16));
        assert_eq!(cfg.completion_target(), 640);
        assert_eq!(cfg.block_space(), 640);
        cfg.transfer_mode = TransferMode::Encoded { epsilon: 0.04 };
        assert_eq!(cfg.completion_target(), (640.0f64 * 1.04).ceil() as u32);
        assert!(cfg.block_space() > cfg.completion_target());
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "initial_peers must lie")]
    fn invalid_peer_bounds_rejected() {
        let mut cfg = Config::new(FileSpec::from_mb_kb(1, 16));
        cfg.initial_peers = 30;
        cfg.validate();
    }
}
