//! Bullet′'s control-message vocabulary.
//!
//! Data blocks never travel inside these messages — they go through the
//! emulator's per-connection block queues. Control messages carry peering
//! handshakes, availability diffs, block requests and RanSub samples; their
//! [`WireSize`] is what the emulator charges as control overhead.

use dissem_codec::BlockId;
use netsim::WireSize;
use overlay::Sample;

/// A control message exchanged between Bullet′ nodes.
#[derive(Debug, Clone)]
pub enum Msg {
    /// RanSub collect payload travelling from a child to its tree parent.
    RansubCollect {
        /// Collected sample of the child's subtree.
        sample: Sample,
        /// Epoch number.
        epoch: u64,
    },
    /// RanSub distribute payload travelling from a parent to a tree child.
    RansubDistribute {
        /// The subset the child should adopt and re-mix.
        sample: Sample,
        /// Epoch number.
        epoch: u64,
    },
    /// "Please become one of my senders" — sent by a prospective receiver.
    PeerRequest {
        /// How many blocks the requester already has (lets the sender skip
        /// advertising blocks the receiver is known to hold — an
        /// approximation of the paper's initial file-info exchange).
        have_count: u32,
    },
    /// Positive reply to [`Msg::PeerRequest`]: the initial file info.
    PeerAccept {
        /// Every block the sender currently has.
        available: Vec<BlockId>,
    },
    /// Negative reply to [`Msg::PeerRequest`] (receiver slots exhausted).
    PeerReject,
    /// Tear down the peering in whichever direction it exists.
    PeerClose,
    /// Incremental availability diff: blocks newly available at the sender.
    Diff {
        /// Newly available blocks (never previously advertised to this peer).
        blocks: Vec<BlockId>,
    },
    /// Receiver → sender: "I am about to run out of request candidates, send
    /// me a diff now."
    DiffRequest,
    /// Orphan → root: "my control-tree parent failed, adopt me as a child"
    /// (the emulator's stand-in for the overlay tree's repair protocol).
    TreeAttach,
    /// Receiver → sender: ordered request for specific blocks.
    BlockRequest {
        /// The blocks to queue, in the order the receiver wants them served.
        blocks: Vec<BlockId>,
        /// The receiver's current total incoming bandwidth estimate in
        /// bytes/second; the sender uses it when ranking receivers for
        /// trimming (§3.3.1).
        incoming_bw: u64,
    },
}

impl WireSize for Msg {
    fn wire_size(&self) -> usize {
        // 1-byte tag + 8-byte session/packet header on everything.
        const HDR: usize = 9;
        match self {
            Msg::RansubCollect { sample, .. } | Msg::RansubDistribute { sample, .. } => {
                HDR + 8 + sample.wire_size()
            }
            Msg::PeerRequest { .. } => HDR + 4,
            Msg::PeerAccept { available } => HDR + 4 + 4 * available.len(),
            Msg::PeerReject | Msg::PeerClose | Msg::DiffRequest | Msg::TreeAttach => HDR,
            Msg::Diff { blocks } => HDR + 4 + 4 * blocks.len(),
            Msg::BlockRequest { blocks, .. } => HDR + 12 + 4 * blocks.len(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Msg::RansubCollect { .. } => "ransub_collect",
            Msg::RansubDistribute { .. } => "ransub_distribute",
            Msg::PeerRequest { .. } => "peer_request",
            Msg::PeerAccept { .. } => "peer_accept",
            Msg::PeerReject => "peer_reject",
            Msg::PeerClose => "peer_close",
            Msg::Diff { .. } => "diff",
            Msg::DiffRequest => "diff_request",
            Msg::TreeAttach => "tree_attach",
            Msg::BlockRequest { .. } => "block_request",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay::NodeSummary;

    #[test]
    fn wire_sizes_scale_with_payload() {
        let small = Msg::Diff {
            blocks: vec![BlockId(0)],
        };
        let large = Msg::Diff {
            blocks: (0..100).map(BlockId).collect(),
        };
        assert!(large.wire_size() > small.wire_size());
        assert_eq!(large.wire_size() - small.wire_size(), 99 * 4);

        let empty = Msg::PeerReject;
        assert!(empty.wire_size() < small.wire_size());

        let sample = Sample {
            entries: vec![
                NodeSummary {
                    node: 1,
                    have_count: 2,
                    has_everything: false
                };
                10
            ],
            weight: 10,
        };
        let ransub = Msg::RansubDistribute { sample, epoch: 3 };
        assert!(ransub.wire_size() > 9 + 8 + 8);
    }

    #[test]
    fn block_request_accounts_for_bandwidth_hint() {
        let a = Msg::BlockRequest {
            blocks: vec![],
            incoming_bw: 0,
        };
        assert_eq!(a.wire_size(), 9 + 12);
    }
}
