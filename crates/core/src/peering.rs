//! The adaptive peering strategy (paper §3.3.1, Fig 2).
//!
//! Each node maintains two target sizes, `MAX_SENDERS` and `MAX_RECEIVERS`
//! (both start at 10, bounded by hard limits of 6 and 25). Every time a
//! RanSub distribute message arrives the node:
//!
//! 1. runs the ManageSenders feedback loop: if the peer-set size moved since
//!    the previous epoch, keep the change if bandwidth improved and revert it
//!    otherwise (and symmetrically for receivers using outgoing bandwidth);
//! 2. trims peers whose bandwidth sits more than 1.5 standard deviations
//!    below the mean — receivers are ranked by the *fraction* of their total
//!    incoming bandwidth they get from us, so we never cut off a peer that
//!    depends on us;
//! 3. tops the peer sets back up to the (possibly new) targets with
//!    candidates taken from the RanSub sample.
//!
//! The same component also implements the paper's static configurations
//! (`PeerSetPolicy::Fixed`), which Figs 7–9 compare against.

use netsim::NodeId;

use crate::config::PeerSetPolicy;

/// Per-sender observation for one epoch: how fast this sender delivered to us.
#[derive(Debug, Clone, Copy)]
pub struct SenderObservation {
    /// The sender.
    pub peer: NodeId,
    /// Bytes/second received from this sender over the last epoch.
    pub bandwidth: f64,
}

/// Per-receiver observation for one epoch.
#[derive(Debug, Clone, Copy)]
pub struct ReceiverObservation {
    /// The receiver.
    pub peer: NodeId,
    /// Bytes/second we sent to this receiver over the last epoch.
    pub bandwidth: f64,
    /// The receiver's self-reported total incoming bandwidth (bytes/second);
    /// used to protect receivers that depend on us.
    pub their_total_incoming: f64,
}

/// What the peering strategy decided at an epoch boundary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochDecision {
    /// Senders to disconnect from.
    pub drop_senders: Vec<NodeId>,
    /// Receivers to disconnect.
    pub drop_receivers: Vec<NodeId>,
    /// How many new senders to try to acquire after the drops.
    pub sender_slots: usize,
    /// How many new receivers we are willing to accept after the drops.
    pub receiver_slots: usize,
}

/// The adaptive peer-set manager.
#[derive(Debug, Clone)]
pub struct PeerManager {
    policy: PeerSetPolicy,
    min: usize,
    max: usize,
    trim_sigma: f64,
    max_senders: usize,
    max_receivers: usize,
    prev_num_senders: Option<usize>,
    prev_incoming_bw: f64,
    prev_num_receivers: Option<usize>,
    prev_outgoing_bw: f64,
}

impl PeerManager {
    /// Creates a manager with the given policy and bounds.
    pub fn new(
        policy: PeerSetPolicy,
        initial: usize,
        min: usize,
        max: usize,
        trim_sigma: f64,
    ) -> Self {
        let start = match policy {
            PeerSetPolicy::Dynamic => initial,
            PeerSetPolicy::Fixed(k) => k,
        };
        PeerManager {
            policy,
            min,
            max,
            trim_sigma,
            max_senders: start,
            max_receivers: start,
            prev_num_senders: None,
            prev_incoming_bw: 0.0,
            prev_num_receivers: None,
            prev_outgoing_bw: 0.0,
        }
    }

    /// Current target number of senders.
    pub fn max_senders(&self) -> usize {
        self.max_senders
    }

    /// Current target number of receivers.
    pub fn max_receivers(&self) -> usize {
        self.max_receivers
    }

    /// Runs the epoch logic given this epoch's observations and returns the
    /// decisions to enact.
    pub fn on_epoch(
        &mut self,
        senders: &[SenderObservation],
        receivers: &[ReceiverObservation],
    ) -> EpochDecision {
        let incoming_bw: f64 = senders.iter().map(|s| s.bandwidth).sum();
        let outgoing_bw: f64 = receivers.iter().map(|r| r.bandwidth).sum();

        if matches!(self.policy, PeerSetPolicy::Dynamic) {
            self.max_senders = manage_target(
                self.max_senders,
                senders.len(),
                self.prev_num_senders,
                incoming_bw,
                self.prev_incoming_bw,
                self.min,
                self.max,
            );
            self.max_receivers = manage_target(
                self.max_receivers,
                receivers.len(),
                self.prev_num_receivers,
                outgoing_bw,
                self.prev_outgoing_bw,
                self.min,
                self.max,
            );
        }

        let drop_senders = if matches!(self.policy, PeerSetPolicy::Dynamic) {
            trim_slow_senders(senders, self.trim_sigma, self.min)
        } else {
            Vec::new()
        };
        let drop_receivers = if matches!(self.policy, PeerSetPolicy::Dynamic) {
            trim_slow_receivers(receivers, self.trim_sigma, self.min)
        } else {
            Vec::new()
        };

        self.prev_num_senders = Some(senders.len());
        self.prev_incoming_bw = incoming_bw;
        self.prev_num_receivers = Some(receivers.len());
        self.prev_outgoing_bw = outgoing_bw;

        let senders_after = senders.len().saturating_sub(drop_senders.len());
        let receivers_after = receivers.len().saturating_sub(drop_receivers.len());
        EpochDecision {
            drop_senders,
            drop_receivers,
            sender_slots: self.max_senders.saturating_sub(senders_after),
            receiver_slots: self.max_receivers.saturating_sub(receivers_after),
        }
    }
}

/// The ManageSenders / ManageReceivers feedback loop (Fig 2), generalised over
/// which direction's bandwidth is observed.
fn manage_target(
    mut target: usize,
    current_size: usize,
    prev_size: Option<usize>,
    bw: f64,
    prev_bw: f64,
    min: usize,
    max: usize,
) -> usize {
    // "if (size(senders) != MAX_SENDERS) return;" — only adjust the target
    // when we actually reached it, otherwise we cannot attribute the
    // bandwidth change to the size change.
    if current_size != target {
        return target;
    }
    match prev_size {
        None | Some(0) => {
            // Try to add a new peer by default.
            target += 1;
        }
        Some(prev) if current_size > prev => {
            if bw > prev_bw {
                target += 1; // Adding a sender helped; try another.
            } else {
                target = target.saturating_sub(1); // Adding was bad.
            }
        }
        Some(prev) if current_size < prev => {
            if bw > prev_bw {
                target = target.saturating_sub(1); // Losing one made us faster.
            } else {
                target += 1; // Losing one was bad.
            }
        }
        Some(_) => {}
    }
    target.clamp(min, max)
}

/// Disconnect senders whose bandwidth is more than `sigma` standard
/// deviations below the mean, never dropping below `min` peers.
fn trim_slow_senders(senders: &[SenderObservation], sigma: f64, min: usize) -> Vec<NodeId> {
    if senders.len() <= min {
        return Vec::new();
    }
    let bw: Vec<f64> = senders.iter().map(|s| s.bandwidth).collect();
    let (mean, std) = mean_std(&bw);
    if std <= f64::EPSILON {
        return Vec::new();
    }
    let threshold = mean - sigma * std;
    // Sort slowest-first so the budget of allowed drops goes to the worst.
    let mut sorted: Vec<&SenderObservation> = senders.iter().collect();
    sorted.sort_by(|a, b| {
        a.bandwidth
            .partial_cmp(&b.bandwidth)
            .expect("finite bandwidths")
    });
    let mut allowed = senders.len() - min;
    let mut drops = Vec::new();
    for s in sorted {
        if allowed == 0 {
            break;
        }
        if s.bandwidth < threshold {
            drops.push(s.peer);
            allowed -= 1;
        }
    }
    drops
}

/// Disconnect receivers that limit our outgoing bandwidth, ranked by the
/// fraction of their own incoming bandwidth they get from us so we do not cut
/// off nodes that depend on us.
fn trim_slow_receivers(receivers: &[ReceiverObservation], sigma: f64, min: usize) -> Vec<NodeId> {
    if receivers.len() <= min {
        return Vec::new();
    }
    let bw: Vec<f64> = receivers.iter().map(|r| r.bandwidth).collect();
    let (mean, std) = mean_std(&bw);
    if std <= f64::EPSILON {
        return Vec::new();
    }
    let threshold = mean - sigma * std;
    let ratio = |r: &ReceiverObservation| {
        if r.their_total_incoming <= 0.0 {
            0.0
        } else {
            (r.bandwidth / r.their_total_incoming).min(1.0)
        }
    };
    let mut sorted: Vec<&ReceiverObservation> = receivers.iter().collect();
    // Lowest dependence on us first.
    sorted.sort_by(|a, b| ratio(a).partial_cmp(&ratio(b)).expect("finite ratios"));
    let mut allowed = receivers.len() - min;
    let mut drops = Vec::new();
    for r in sorted {
        if allowed == 0 {
            break;
        }
        // Protect receivers that get most of their bandwidth from us.
        if r.bandwidth < threshold && ratio(r) < 0.5 {
            drops.push(r.peer);
            allowed -= 1;
        }
    }
    drops
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender(i: u32, bw: f64) -> SenderObservation {
        SenderObservation {
            peer: NodeId(i),
            bandwidth: bw,
        }
    }

    fn receiver(i: u32, bw: f64, total: f64) -> ReceiverObservation {
        ReceiverObservation {
            peer: NodeId(i),
            bandwidth: bw,
            their_total_incoming: total,
        }
    }

    fn dynamic_manager() -> PeerManager {
        PeerManager::new(PeerSetPolicy::Dynamic, 10, 6, 25, 1.5)
    }

    #[test]
    fn starts_at_initial_targets() {
        let m = dynamic_manager();
        assert_eq!(m.max_senders(), 10);
        assert_eq!(m.max_receivers(), 10);
        let f = PeerManager::new(PeerSetPolicy::Fixed(14), 10, 6, 25, 1.5);
        assert_eq!(f.max_senders(), 14);
    }

    #[test]
    fn first_full_epoch_probes_upward() {
        let mut m = dynamic_manager();
        // We are at the target with no history: "try to add a new peer by default".
        let senders: Vec<_> = (0..10).map(|i| sender(i, 100_000.0)).collect();
        let receivers: Vec<_> = (0..10)
            .map(|i| receiver(100 + i, 100_000.0, 500_000.0))
            .collect();
        let d = m.on_epoch(&senders, &receivers);
        assert_eq!(m.max_senders(), 11);
        assert_eq!(m.max_receivers(), 11);
        assert_eq!(d.sender_slots, 1);
        assert_eq!(d.receiver_slots, 1);
    }

    #[test]
    fn bandwidth_gain_keeps_growing_and_loss_reverts() {
        let mut m = dynamic_manager();
        let mk = |n: usize, each: f64| -> Vec<SenderObservation> {
            (0..n as u32).map(|i| sender(i, each)).collect()
        };
        let none: Vec<ReceiverObservation> = Vec::new();
        // Epoch 1: at target 10, no history -> probe to 11.
        m.on_epoch(&mk(10, 100_000.0), &none);
        assert_eq!(m.max_senders(), 11);
        // Epoch 2: now 11 senders and higher total bandwidth -> keep growing.
        m.on_epoch(&mk(11, 105_000.0), &none);
        assert_eq!(m.max_senders(), 12);
        // Epoch 3: 12 senders but total bandwidth *fell* -> adding was bad, back off.
        m.on_epoch(&mk(12, 80_000.0), &none);
        assert_eq!(m.max_senders(), 11);
        // Epoch 4: 11 senders (fewer than before) and bandwidth improved ->
        // losing a sender made us faster; drop the target again.
        m.on_epoch(&mk(11, 95_000.0), &none);
        assert_eq!(m.max_senders(), 10);
    }

    #[test]
    fn no_adjustment_when_not_at_target() {
        let mut m = dynamic_manager();
        let senders: Vec<_> = (0..7).map(|i| sender(i, 50_000.0)).collect();
        m.on_epoch(&senders, &[]);
        assert_eq!(m.max_senders(), 10, "size != target, Fig 2 returns early");
    }

    #[test]
    fn targets_respect_hard_bounds() {
        let mut m = dynamic_manager();
        // Drive the target upward for many epochs.
        for epoch in 0..40usize {
            let n = m.max_senders();
            let senders: Vec<_> = (0..n as u32)
                .map(|i| sender(i, 1_000.0 * (epoch + 1) as f64))
                .collect();
            m.on_epoch(&senders, &[]);
        }
        assert!(m.max_senders() <= 25);
        // And downward.
        let mut m = dynamic_manager();
        for epoch in 0..40usize {
            let n = m.max_senders();
            // Alternate growth then a bandwidth collapse so the loop keeps
            // retracting.
            let bw = if epoch % 2 == 0 { 1_000_000.0 } else { 1.0 };
            let senders: Vec<_> = (0..n as u32).map(|i| sender(i, bw / n as f64)).collect();
            m.on_epoch(&senders, &[]);
        }
        assert!(m.max_senders() >= 6);
    }

    #[test]
    fn slow_outlier_sender_is_trimmed() {
        let mut m = dynamic_manager();
        let mut senders: Vec<_> = (0..9).map(|i| sender(i, 200_000.0)).collect();
        senders.push(sender(99, 1_000.0)); // Far more than 1.5 sigma below.
        let d = m.on_epoch(&senders, &[]);
        assert_eq!(d.drop_senders, vec![NodeId(99)]);
        // Slots reflect the trimmed peer plus the upward probe.
        assert_eq!(d.sender_slots, m.max_senders() - 9);
    }

    #[test]
    fn equal_senders_are_never_trimmed() {
        let mut m = dynamic_manager();
        let senders: Vec<_> = (0..10).map(|i| sender(i, 150_000.0)).collect();
        let d = m.on_epoch(&senders, &[]);
        assert!(
            d.drop_senders.is_empty(),
            "identical bandwidths must not be trimmed"
        );
    }

    #[test]
    fn trimming_never_goes_below_minimum() {
        let mut m = dynamic_manager();
        // 7 senders, 6 of which are terrible: only one may be dropped (min 6).
        let mut senders = vec![sender(0, 1_000_000.0)];
        senders.extend((1..7).map(|i| sender(i, 10.0 * f64::from(i))));
        let d = m.on_epoch(&senders, &[]);
        assert!(d.drop_senders.len() <= 1);
    }

    #[test]
    fn dependent_receivers_are_protected() {
        let mut m = dynamic_manager();
        // Two slow receivers: one gets 80% of its bandwidth from us (protected),
        // one gets 5% (fair game).
        let mut receivers: Vec<_> = (0..8).map(|i| receiver(i, 300_000.0, 600_000.0)).collect();
        receivers.push(receiver(50, 10_000.0, 12_000.0)); // ratio 0.83
        receivers.push(receiver(51, 10_000.0, 500_000.0)); // ratio 0.02
        let d = m.on_epoch(&[], &receivers);
        assert!(d.drop_receivers.contains(&NodeId(51)));
        assert!(!d.drop_receivers.contains(&NodeId(50)));
    }

    #[test]
    fn fixed_policy_neither_adapts_nor_trims() {
        let mut m = PeerManager::new(PeerSetPolicy::Fixed(14), 10, 6, 25, 1.5);
        let mut senders: Vec<_> = (0..13).map(|i| sender(i, 200_000.0)).collect();
        senders.push(sender(99, 1.0));
        let d = m.on_epoch(&senders, &[]);
        assert!(d.drop_senders.is_empty());
        assert_eq!(m.max_senders(), 14);
        assert_eq!(d.sender_slots, 0);
    }

    #[test]
    fn slots_top_up_to_target() {
        let mut m = PeerManager::new(PeerSetPolicy::Fixed(10), 10, 6, 25, 1.5);
        let senders: Vec<_> = (0..4).map(|i| sender(i, 100_000.0)).collect();
        let d = m.on_epoch(&senders, &[]);
        assert_eq!(d.sender_slots, 6);
    }
}
