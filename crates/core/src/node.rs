//! The Bullet′ node: the protocol state machine run on every participant.
//!
//! One [`BulletPrimeNode`] instance exists per emulated host. The source
//! (tree root) pushes each block once, round-robin over its control-tree
//! children, skipping children whose pipe is full (§3.3.5); every node —
//! source included — serves explicit block requests in FIFO order; receivers
//! discover candidate senders through RanSub, maintain an adaptive peer set
//! (§3.3.1), keep each sender's pipe full with the XCP-style outstanding
//! controller (§3.3.3), order their requests with the configured strategy
//! (§3.3.2) and stay up to date through incremental diffs (§3.3.4).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use desim::SimTime;
use dissem_codec::{BlockBitmap, BlockId, DiffTracker};
use netsim::{BlockReceipt, Ctx, NodeId, ProbeStats, Protocol, TimerToken};
use overlay::{ControlTree, NodeSummary, RanSubAgent, RanSubEmit, Sample};
use rand::rngs::StdRng;

use crate::config::Config;
use crate::flow::OutstandingController;
use crate::messages::Msg;
use crate::metrics::DownloadMetrics;
use crate::peering::{PeerManager, ReceiverObservation, SenderObservation};
use crate::request::RequestManager;

/// Bullet′'s timer vocabulary (see [`netsim::TimerToken`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Timer {
    /// Start a new RanSub epoch.
    RanSub,
    /// Housekeeping: stale-request release, request refresh, idle-diff flush.
    Housekeeping,
}

impl TimerToken for Timer {
    fn encode(&self) -> u64 {
        match self {
            Timer::RanSub => 0,
            Timer::Housekeeping => 1,
        }
    }

    fn decode(bits: u64) -> Self {
        match bits {
            0 => Timer::RanSub,
            1 => Timer::Housekeeping,
            other => panic!("not a Bullet' timer token: {other}"),
        }
    }
}

/// Whether this node is the origin of the file or a downloader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// The single node that initially holds the file.
    Source,
    /// A downloading participant.
    Receiver,
}

/// Receiver-side state about one of our senders.
#[derive(Debug, Clone)]
struct SenderState {
    ctl: OutstandingController,
    /// Bytes received from this sender since the last RanSub epoch.
    bytes_since_epoch: u64,
    /// Exponentially weighted delivery-rate estimate (bytes/second).
    ewma_rate: f64,
    last_arrival: Option<SimTime>,
    /// True if we already asked for a diff and have not received one since.
    diff_requested: bool,
}

impl SenderState {
    fn new(cfg: &Config) -> Self {
        SenderState {
            ctl: OutstandingController::new(
                cfg.outstanding_policy,
                cfg.initial_outstanding,
                cfg.max_outstanding,
            ),
            bytes_since_epoch: 0,
            ewma_rate: 1_000.0,
            last_arrival: None,
            diff_requested: false,
        }
    }

    fn observe_arrival(&mut self, now: SimTime, bytes: u64) {
        if let Some(last) = self.last_arrival {
            let dt = (now - last).as_secs_f64();
            if dt > 1e-6 {
                let inst = bytes as f64 / dt;
                self.ewma_rate = 0.7 * self.ewma_rate + 0.3 * inst;
            }
        }
        self.last_arrival = Some(now);
        self.bytes_since_epoch += bytes;
    }
}

/// Sender-side state about one of our receivers.
#[derive(Debug, Clone)]
struct ReceiverState {
    diff: DiffTracker,
    /// Blocks that became available since the last diff to this receiver.
    pending_adverts: Vec<BlockId>,
    /// Bytes whose transmission to this receiver completed since last epoch.
    bytes_since_epoch: u64,
    /// The receiver's self-reported total incoming bandwidth (bytes/second).
    their_incoming_bw: f64,
}

impl ReceiverState {
    fn new() -> Self {
        ReceiverState {
            diff: DiffTracker::new(),
            pending_adverts: Vec::new(),
            bytes_since_epoch: 0,
            their_incoming_bw: 0.0,
        }
    }
}

/// Source-only state: the non-duplicating round-robin push (§3.3.5).
#[derive(Debug, Clone)]
struct SourceState {
    next_block: u32,
    rr_cursor: usize,
}

/// A Bullet′ participant.
#[derive(Debug, Clone)]
pub struct BulletPrimeNode {
    id: NodeId,
    cfg: Config,
    role: Role,
    /// The control-tree root (= the source), the rendezvous every node knows;
    /// orphans reattach here when their tree parent fails.
    root: NodeId,
    children: Vec<NodeId>,
    ransub: RanSubAgent,
    have: BlockBitmap,
    completion_target: u32,
    block_space: u32,

    senders: BTreeMap<NodeId, SenderState>,
    receivers: BTreeMap<NodeId, ReceiverState>,
    pending_peer_requests: BTreeSet<NodeId>,
    requester: RequestManager,
    peer_mgr: PeerManager,
    source: Option<SourceState>,

    /// Epoch bookkeeping for bandwidth observations.
    epoch_started_at: SimTime,
    /// Download statistics (exposed to the harness).
    metrics: DownloadMetrics,
}

impl BulletPrimeNode {
    /// Creates the node running on `id`, given the shared control tree.
    /// Node 0 (the tree root) is the source.
    pub fn new(id: NodeId, tree: &ControlTree, cfg: Config) -> Self {
        cfg.validate();
        let role = if id == tree.root() {
            Role::Source
        } else {
            Role::Receiver
        };
        let block_space = cfg.block_space();
        let have = match role {
            Role::Source => BlockBitmap::full(block_space),
            Role::Receiver => BlockBitmap::new(block_space),
        };
        let source = match role {
            Role::Source => Some(SourceState {
                next_block: 0,
                rr_cursor: 0,
            }),
            Role::Receiver => None,
        };
        BulletPrimeNode {
            id,
            role,
            root: tree.root(),
            children: tree.children(id).to_vec(),
            ransub: RanSubAgent::new(id, tree, cfg.ransub_subset_size),
            have,
            completion_target: cfg.completion_target(),
            block_space,
            senders: BTreeMap::new(),
            receivers: BTreeMap::new(),
            pending_peer_requests: BTreeSet::new(),
            requester: RequestManager::new(cfg.request_strategy, block_space),
            peer_mgr: PeerManager::new(
                cfg.peer_policy,
                cfg.initial_peers,
                cfg.min_peers,
                cfg.max_peers,
                cfg.trim_sigma,
            ),
            source,
            epoch_started_at: SimTime::ZERO,
            cfg,
            metrics: DownloadMetrics::default(),
        }
    }

    /// This node's role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// This node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Download statistics.
    pub fn metrics(&self) -> &DownloadMetrics {
        &self.metrics
    }

    /// Number of distinct blocks currently held.
    pub fn blocks_held(&self) -> u32 {
        self.have.count()
    }

    /// Current number of senders / receivers (diagnostics and tests).
    pub fn peer_counts(&self) -> (usize, usize) {
        (self.senders.len(), self.receivers.len())
    }

    /// The current adaptive peer-set targets.
    pub fn peer_targets(&self) -> (usize, usize) {
        (self.peer_mgr.max_senders(), self.peer_mgr.max_receivers())
    }

    fn block_bytes(&self, block: BlockId) -> u64 {
        // In encoded mode every block is full-sized; in unencoded mode the
        // final block may be short.
        if block.0 < self.cfg.file.num_blocks() {
            u64::from(self.cfg.file.block_size(block))
        } else {
            u64::from(self.cfg.file.block_bytes)
        }
    }

    fn total_incoming_rate(&self) -> f64 {
        self.senders.values().map(|s| s.ewma_rate).sum()
    }

    fn is_download_complete(&self) -> bool {
        self.have.count() >= self.completion_target
    }

    // ------------------------------------------------------------------
    // Source push (§3.3.5).
    // ------------------------------------------------------------------

    fn source_push(&mut self, ctx: &mut Ctx<'_, Self>) {
        let Some(src) = self.source.as_mut() else {
            return;
        };
        if self.children.is_empty() {
            return;
        }
        let mut queued_now: HashMap<NodeId, usize> = HashMap::new();
        'outer: while src.next_block < self.block_space {
            // Find a child whose pipe has room, starting from the round-robin
            // cursor so every child gets an equal share of distinct blocks.
            for probe in 0..self.children.len() {
                let child = self.children[(src.rr_cursor + probe) % self.children.len()];
                // A child that has not joined (or is gone) would swallow the
                // whole stream through its forever-empty pipe.
                if !ctx.peer_active(child) {
                    continue;
                }
                let pending = ctx.pending_to(child) + queued_now.get(&child).copied().unwrap_or(0);
                if pending < self.cfg.source_pipe_blocks {
                    let block = BlockId(src.next_block);
                    let bytes = if block.0 < self.cfg.file.num_blocks() {
                        u64::from(self.cfg.file.block_size(block))
                    } else {
                        u64::from(self.cfg.file.block_bytes)
                    };
                    ctx.queue_block(child, block, bytes);
                    *queued_now.entry(child).or_insert(0) += 1;
                    src.next_block += 1;
                    src.rr_cursor = (src.rr_cursor + probe + 1) % self.children.len();
                    continue 'outer;
                }
            }
            // Every child's pipe is full; resume when a block completes.
            break;
        }
    }

    // ------------------------------------------------------------------
    // RanSub plumbing.
    // ------------------------------------------------------------------

    fn own_summary(&self) -> NodeSummary {
        NodeSummary {
            node: self.id.0,
            have_count: self.have.count(),
            has_everything: self.role == Role::Source || self.have.is_full(),
        }
    }

    fn emit_ransub(&mut self, ctx: &mut Ctx<'_, Self>, emits: Vec<RanSubEmit>) {
        for emit in emits {
            match emit {
                RanSubEmit::CollectToParent {
                    parent,
                    sample,
                    epoch,
                } => {
                    ctx.send(parent, Msg::RansubCollect { sample, epoch });
                }
                RanSubEmit::DistributeToChild {
                    child,
                    sample,
                    epoch,
                } => {
                    ctx.send(child, Msg::RansubDistribute { sample, epoch });
                }
                RanSubEmit::Deliver { sample, .. } => {
                    self.handle_epoch(ctx, sample);
                }
            }
        }
    }

    /// Reacts to the arrival of this epoch's random subset: run the peering
    /// strategy, enact its decisions, and try to fill open sender slots with
    /// candidates from the subset (§3.3.1).
    fn handle_epoch(&mut self, ctx: &mut Ctx<'_, Self>, sample: Sample) {
        let now = ctx.now();
        let elapsed = (now - self.epoch_started_at).as_secs_f64().max(1e-3);
        self.epoch_started_at = now;

        let sender_obs: Vec<SenderObservation> = self
            .senders
            .iter()
            .map(|(&peer, s)| SenderObservation {
                peer,
                bandwidth: s.bytes_since_epoch as f64 / elapsed,
            })
            .collect();
        let receiver_obs: Vec<ReceiverObservation> = self
            .receivers
            .iter()
            .map(|(&peer, r)| ReceiverObservation {
                peer,
                bandwidth: r.bytes_since_epoch as f64 / elapsed,
                their_total_incoming: r.their_incoming_bw,
            })
            .collect();

        let decision = self.peer_mgr.on_epoch(&sender_obs, &receiver_obs);

        for peer in decision.drop_senders {
            self.drop_sender(ctx, peer, true);
        }
        for peer in decision.drop_receivers {
            self.drop_receiver(ctx, peer, true);
        }

        // Reset epoch counters.
        for s in self.senders.values_mut() {
            s.bytes_since_epoch = 0;
        }
        for r in self.receivers.values_mut() {
            r.bytes_since_epoch = 0;
        }

        // Try to acquire new senders from the delivered subset.
        if self.role == Role::Receiver && !self.is_download_complete() {
            let mut candidates: Vec<&NodeSummary> = sample
                .entries
                .iter()
                .filter(|e| {
                    e.node != self.id.0
                        && ctx.peer_active(e.node_id())
                        && !self.senders.contains_key(&e.node_id())
                        && !self.pending_peer_requests.contains(&e.node_id())
                        && (e.has_everything || e.have_count > 0)
                })
                .collect();
            // Prefer peers with the most data to offer; random tie-break so a
            // whole epoch's worth of nodes does not stampede the same target.
            candidates.sort_by_key(|e| std::cmp::Reverse(e.have_count));
            for e in candidates.into_iter().take(decision.sender_slots) {
                let peer = e.node_id();
                self.pending_peer_requests.insert(peer);
                ctx.send(
                    peer,
                    Msg::PeerRequest {
                        have_count: self.have.count(),
                    },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Peering maintenance.
    // ------------------------------------------------------------------

    /// Removes `child` from both push rotation and RanSub tree links,
    /// emitting whatever the unblocked collect wave produces.
    fn drop_tree_child(&mut self, ctx: &mut Ctx<'_, Self>, child: NodeId) {
        let emits = {
            let rng = ctx.rng();
            self.ransub.on_child_failed(child, rng)
        };
        self.emit_ransub(ctx, emits);
        self.children.retain(|&c| c != child);
    }

    fn drop_sender(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId, notify: bool) {
        if self.senders.remove(&peer).is_some() {
            self.requester.remove_sender(peer);
            if notify {
                ctx.send(peer, Msg::PeerClose);
            }
        }
    }

    fn drop_receiver(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId, notify: bool) {
        if self.receivers.remove(&peer).is_some() {
            ctx.close_connection(peer);
            if notify {
                ctx.send(peer, Msg::PeerClose);
            }
        }
    }

    fn accept_receiver(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        let mut state = ReceiverState::new();
        let available: Vec<BlockId> = self.have.iter().collect();
        state.diff.mark_advertised(available.iter().copied());
        self.receivers.insert(peer, state);
        ctx.send(peer, Msg::PeerAccept { available });
    }

    fn add_sender(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId, available: Vec<BlockId>) {
        self.pending_peer_requests.remove(&peer);
        if self.senders.contains_key(&peer) {
            return;
        }
        self.senders.insert(peer, SenderState::new(&self.cfg));
        self.requester.add_sender(peer);
        self.requester.on_advertised(peer, &available, &self.have);
        self.issue_requests(ctx, peer);
    }

    // ------------------------------------------------------------------
    // Requesting (§3.3.2 + §3.3.3).
    // ------------------------------------------------------------------

    fn issue_requests(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        if self.is_download_complete() {
            return;
        }
        let Some(sender) = self.senders.get_mut(&peer) else {
            return;
        };
        let window = sender.ctl.window() as usize;
        let outstanding = self.requester.outstanding_to(peer);
        if outstanding >= window {
            return;
        }
        let want = window - outstanding;
        let now = ctx.now();
        let blocks = {
            let rng: &mut StdRng = ctx.rng();
            self.requester
                .select_requests(peer, want, &self.have, now, rng)
        };
        if blocks.is_empty() {
            // Nothing left to ask this sender for: request a diff once.
            if self.requester.useful_candidates(peer, &self.have) == 0 && !sender.diff_requested {
                sender.diff_requested = true;
                ctx.send(peer, Msg::DiffRequest);
            }
            return;
        }
        if sender.ctl.wants_mark() {
            sender.ctl.note_requested(blocks[0]);
        }
        ctx.send(
            peer,
            Msg::BlockRequest {
                blocks,
                incoming_bw: self.total_incoming_rate() as u64,
            },
        );
    }

    // ------------------------------------------------------------------
    // Diffs (§3.3.4).
    // ------------------------------------------------------------------

    fn send_diff(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        let Some(r) = self.receivers.get_mut(&peer) else {
            return;
        };
        let mut blocks: Vec<BlockId> = Vec::new();
        for b in r.pending_adverts.drain(..) {
            if !r.diff.already_advertised(b) {
                blocks.push(b);
            }
        }
        if blocks.is_empty() {
            return;
        }
        r.diff.mark_advertised(blocks.iter().copied());
        ctx.send(peer, Msg::Diff { blocks });
    }

    /// Queue pending availability announcements and flush them to receivers
    /// whose request pipeline from us is empty (self-clocking diffs).
    fn propagate_availability(&mut self, ctx: &mut Ctx<'_, Self>, block: BlockId) {
        let peers: Vec<NodeId> = self.receivers.keys().copied().collect();
        for peer in peers {
            if let Some(r) = self.receivers.get_mut(&peer) {
                if !r.diff.already_advertised(block) {
                    r.pending_adverts.push(block);
                }
            }
            if !self.cfg.lazy_diffs && ctx.pending_to(peer) == 0 {
                self.send_diff(ctx, peer);
            }
        }
    }
}

impl Protocol for BulletPrimeNode {
    type Msg = Msg;
    type Timer = Timer;

    fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.epoch_started_at = ctx.now();
        ctx.set_timer(self.cfg.ransub_period, Timer::RanSub);
        ctx.set_timer(self.cfg.housekeeping_period, Timer::Housekeeping);
        // A node initialised after t = 0 is a late joiner: its
        // construction-time tree children have long since registered with
        // whoever was present while it was absent (ultimately the root), so
        // keeping them would block every collect wave through this node on
        // reports that now flow elsewhere. Start childless; actual children
        // (re)appear through TreeAttach.
        if ctx.now() > SimTime::ZERO {
            self.ransub.clear_children();
            self.children.clear();
        }
        // Register with the tree parent. For nodes present from t = 0 this
        // is an idempotent no-op at the parent; for late joiners it re-adds
        // us to a parent that pruned us while we were absent. If the parent
        // itself departed while we were absent (its failure notification
        // never reached us), reattach at the root instead — departed nodes
        // never come back.
        if let Some(parent) = self.ransub.parent() {
            let target = if ctx.peer_active(parent) {
                parent
            } else {
                self.root
            };
            self.ransub.set_parent(Some(target));
            ctx.send(target, Msg::TreeAttach);
        }
        if self.role == Role::Source {
            self.source_push(ctx);
        }
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Msg) {
        match msg {
            Msg::RansubCollect { sample, epoch } => {
                let emits = {
                    let rng = ctx.rng();
                    self.ransub.on_collect(from, sample, epoch, rng)
                };
                self.emit_ransub(ctx, emits);
            }
            Msg::RansubDistribute { sample, epoch } => {
                let emits = {
                    let rng = ctx.rng();
                    self.ransub.on_distribute(sample, epoch, rng)
                };
                self.emit_ransub(ctx, emits);
            }
            Msg::PeerRequest { .. } => {
                if self.receivers.len() < self.peer_mgr.max_receivers()
                    && !self.receivers.contains_key(&from)
                {
                    self.accept_receiver(ctx, from);
                } else {
                    ctx.send(from, Msg::PeerReject);
                }
            }
            Msg::PeerAccept { available } => {
                self.add_sender(ctx, from, available);
            }
            Msg::PeerReject => {
                self.pending_peer_requests.remove(&from);
            }
            Msg::PeerClose => {
                // The peer tears down whichever relationship exists.
                self.drop_sender(ctx, from, false);
                self.drop_receiver(ctx, from, false);
            }
            Msg::TreeAttach => {
                // An orphaned node rejoins the tree here (only the root
                // receives these). It becomes a push target and a RanSub
                // child from the next epoch on.
                if !self.children.contains(&from) {
                    self.children.push(from);
                }
                self.ransub.add_child(from);
            }
            Msg::Diff { blocks } => {
                if let Some(s) = self.senders.get_mut(&from) {
                    s.diff_requested = false;
                    self.requester.on_advertised(from, &blocks, &self.have);
                    self.issue_requests(ctx, from);
                }
            }
            Msg::DiffRequest => {
                self.send_diff(ctx, from);
            }
            Msg::BlockRequest {
                blocks,
                incoming_bw,
            } => {
                if let Some(r) = self.receivers.get_mut(&from) {
                    r.their_incoming_bw = incoming_bw as f64;
                }
                for block in blocks {
                    if self.have.contains(block) {
                        let bytes = self.block_bytes(block);
                        ctx.queue_block(from, block, bytes);
                    }
                }
            }
        }
    }

    fn on_block_received(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, receipt: BlockReceipt) {
        let block = receipt.block;
        let duplicate = self.have.contains(block);
        self.metrics
            .record_arrival(ctx.now(), receipt.bytes, duplicate);
        self.requester.on_block_received(block);

        if !duplicate {
            self.have.insert(block);
        }

        // Per-sender accounting and flow control.
        let outstanding = self.requester.outstanding_to(from) as u32;
        if let Some(s) = self.senders.get_mut(&from) {
            s.observe_arrival(ctx.now(), receipt.bytes);
            s.ctl.on_block_received(
                block,
                receipt.in_front,
                receipt.wasted,
                s.ewma_rate,
                f64::from(self.cfg.file.block_bytes),
                outstanding,
            );
        }

        if !duplicate {
            self.propagate_availability(ctx, block);
            if self.is_download_complete() {
                self.metrics
                    .record_completion(ctx.now(), self.senders.len());
            }
        }

        // A slot opened towards this sender (and possibly others, handled by
        // the housekeeping timer).
        self.issue_requests(ctx, from);
    }

    fn on_block_sent(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, block: BlockId) {
        let bytes = self.block_bytes(block);
        if let Some(r) = self.receivers.get_mut(&to) {
            r.bytes_since_epoch += bytes;
        }
        if self.role == Role::Source {
            self.source_push(ctx);
        }
    }

    fn on_peer_failed(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        // React immediately instead of waiting for the bandwidth-utility trim
        // at the next RanSub epoch (§3.3.1): the peer is unreachable, so any
        // relationship with it only wastes request slots and pipe space.
        self.pending_peer_requests.remove(&peer);
        // A failed control-tree child must not keep absorbing the source's
        // fresh blocks (queueing to it is a no-op, so its "pipe" would look
        // forever empty and swallow the round-robin), and a collect wave
        // must not wait for a dead child.
        self.drop_tree_child(ctx, peer);
        // Tree repair: if our control-tree parent died, the whole subtree
        // under us would be cut off from every future distribute wave.
        // Reattach at the root (the source — the one address every
        // participant knows), mirroring the overlay tree's repair protocol.
        if self.role != Role::Source && self.ransub.parent() == Some(peer) {
            self.ransub.set_parent(Some(self.root));
            ctx.send(self.root, Msg::TreeAttach);
        }
        let was_sender = self.senders.contains_key(&peer);
        self.drop_sender(ctx, peer, false);
        self.drop_receiver(ctx, peer, false);
        if was_sender {
            // Requests outstanding to the failed sender were just released;
            // re-pipeline them towards the survivors right away.
            let senders: Vec<NodeId> = self.senders.keys().copied().collect();
            for s in senders {
                self.issue_requests(ctx, s);
            }
        }
        if self.role == Role::Source {
            self.source_push(ctx);
        }
    }

    fn on_shutdown(&mut self, ctx: &mut Ctx<'_, Self>) {
        // Graceful goodbye: tell both sides of every peering so they re-peer
        // without waiting for a timeout.
        let peers: BTreeSet<NodeId> = self
            .senders
            .keys()
            .chain(self.receivers.keys())
            .copied()
            .collect();
        ctx.send_to_many(peers, &Msg::PeerClose);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
        match timer {
            Timer::RanSub => {
                // Prune children that are gone or have not joined yet, so the
                // collect wave is never blocked on a silent child; a joiner
                // re-registers with TreeAttach when it (re)appears.
                let silent: Vec<NodeId> = self
                    .ransub
                    .children()
                    .iter()
                    .copied()
                    .filter(|&c| !ctx.peer_active(c))
                    .collect();
                for child in silent {
                    self.drop_tree_child(ctx, child);
                }
                let summary = self.own_summary();
                let emits = {
                    let rng = ctx.rng();
                    self.ransub.begin_epoch(summary, rng)
                };
                self.emit_ransub(ctx, emits);
                ctx.set_timer(self.cfg.ransub_period, Timer::RanSub);
            }
            Timer::Housekeeping => {
                // Release requests stuck behind a stalled sender so the blocks
                // become requestable elsewhere.
                let released = self
                    .requester
                    .release_stale(ctx.now(), self.cfg.request_timeout);
                let stalled: BTreeSet<NodeId> = released.iter().map(|(p, _)| *p).collect();
                for peer in stalled {
                    if let Some(s) = self.senders.get_mut(&peer) {
                        s.ctl.clear_mark();
                    }
                }
                // Refresh the request pipeline towards every sender and flush
                // any diffs whose receivers have gone idle.
                let senders: Vec<NodeId> = self.senders.keys().copied().collect();
                for peer in senders {
                    self.issue_requests(ctx, peer);
                }
                let receivers: Vec<NodeId> = self.receivers.keys().copied().collect();
                for peer in receivers {
                    let has_pending = self
                        .receivers
                        .get(&peer)
                        .map(|r| !r.pending_adverts.is_empty())
                        .unwrap_or(false);
                    if has_pending && ctx.pending_to(peer) == 0 {
                        self.send_diff(ctx, peer);
                    }
                }
                if self.role == Role::Source {
                    self.source_push(ctx);
                }
                ctx.set_timer(self.cfg.housekeeping_period, Timer::Housekeeping);
            }
        }
    }

    fn is_complete(&self) -> bool {
        match self.role {
            Role::Source => true,
            Role::Receiver => self.is_download_complete(),
        }
    }

    fn probe_stats(&self) -> ProbeStats {
        ProbeStats {
            useful_bytes: self.metrics.useful_bytes,
            useful_blocks: self.metrics.useful_blocks() as u64,
            duplicate_blocks: self.metrics.duplicate_blocks,
            senders: self.senders.len(),
            receivers: self.receivers.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::RngFactory;
    use dissem_codec::FileSpec;

    fn small_config() -> Config {
        Config::new(FileSpec::new(64 * 1024, 16 * 1024))
    }

    #[test]
    fn source_and_receivers_are_assigned_by_tree_position() {
        let tree = ControlTree::random(5, 3, &RngFactory::new(1));
        let cfg = small_config();
        let src = BulletPrimeNode::new(NodeId(0), &tree, cfg.clone());
        let rcv = BulletPrimeNode::new(NodeId(3), &tree, cfg);
        assert_eq!(src.role(), Role::Source);
        assert_eq!(rcv.role(), Role::Receiver);
        assert!(src.is_complete(), "the source always reports complete");
        assert!(!rcv.is_complete());
        assert_eq!(src.blocks_held(), 4);
        assert_eq!(rcv.blocks_held(), 0);
    }

    #[test]
    fn block_bytes_handles_short_final_block_and_encoded_space() {
        let tree = ControlTree::random(3, 2, &RngFactory::new(2));
        let mut cfg = Config::new(FileSpec::new(40 * 1024 + 100, 16 * 1024));
        cfg.transfer_mode = crate::config::TransferMode::Encoded { epsilon: 0.04 };
        let node = BulletPrimeNode::new(NodeId(0), &tree, cfg.clone());
        // Real final block is short: 40 KB + 100 B minus two full 16 KB blocks.
        assert_eq!(node.block_bytes(BlockId(2)), 40 * 1024 + 100 - 32 * 1024);
        // Blocks beyond the real file (encoded head-room) are full-sized.
        let beyond = BlockId(cfg.file.num_blocks());
        assert_eq!(node.block_bytes(beyond), 16 * 1024);
    }

    #[test]
    fn peer_targets_start_at_configured_initial() {
        let tree = ControlTree::random(4, 2, &RngFactory::new(3));
        let node = BulletPrimeNode::new(NodeId(1), &tree, small_config());
        assert_eq!(node.peer_targets(), (10, 10));
        assert_eq!(node.peer_counts(), (0, 0));
    }
}
