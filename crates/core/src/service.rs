//! Bullet′ swarms for the open-system service mode.
//!
//! [`netsim::service`] is protocol-agnostic: it manages slots, arrivals and
//! retirement, but delegates what a swarm *is* to a
//! [`netsim::SwarmSource`]. This module supplies the Bullet′
//! implementation: every arriving swarm gets its own control tree (rooted at the
//! segment base, like [`build_group_runner`](crate::build_group_runner)'s
//! groups), its own [`Config`] with a per-swarm file drawn from seeded
//! ranges, and one [`BulletPrimeNode`] per slot.

use desim::RngFactory;
use dissem_codec::FileSpec;
use netsim::{Network, NodeId, Runner, SwarmShape, SwarmSource, Topology};
use overlay::ControlTree;
use rand::Rng;

use crate::builder::CONTROL_TREE_DEGREE;
use crate::config::Config;
use crate::node::BulletPrimeNode;

/// A flash-crowd arrival pattern: only `initial` slots (source included)
/// are active at admission; the rest join spread over `window_secs`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlashShape {
    /// Slots active at admission, source included (so at least 1).
    pub initial: usize,
    /// Seconds over which the remaining receivers join, uniformly.
    pub window_secs: f64,
}

/// Draws Bullet′ swarms from seeded per-swarm distributions and builds
/// their nodes. Shape draws come from the factory's
/// `"service.shape"`-indexed streams, so the i-th swarm's size and file are
/// independent of admission timing and of every other swarm.
#[derive(Debug, Clone)]
pub struct ServiceSwarms {
    template: Config,
    rng: RngFactory,
    /// Inclusive cohort-size range (source included), drawn uniformly.
    pub size_range: (usize, usize),
    /// Inclusive file-size range in bytes, drawn uniformly.
    pub file_bytes_range: (u64, u64),
    /// Block size for every swarm's file.
    pub block_bytes: u32,
    /// Flash-crowd arrival pattern; `None` means the whole cohort is
    /// present at admission.
    pub flash: Option<FlashShape>,
}

impl ServiceSwarms {
    /// Creates a source drawing uniform cohort sizes and file sizes. The
    /// `template` config is cloned per swarm with the drawn file installed.
    pub fn new(
        template: Config,
        rng: &RngFactory,
        size_range: (usize, usize),
        file_bytes_range: (u64, u64),
    ) -> Self {
        assert!(size_range.0 >= 2, "a swarm needs a source and a receiver");
        assert!(size_range.0 <= size_range.1, "empty cohort-size range");
        assert!(
            0 < file_bytes_range.0 && file_bytes_range.0 <= file_bytes_range.1,
            "bad file-size range"
        );
        ServiceSwarms {
            block_bytes: template.file.block_bytes,
            template,
            rng: rng.clone(),
            size_range,
            file_bytes_range,
            flash: None,
        }
    }
}

impl SwarmSource<BulletPrimeNode> for ServiceSwarms {
    fn shape(&mut self, index: usize) -> SwarmShape {
        let mut draw = self.rng.stream_indexed("service.shape", index as u64);
        let size = draw.gen_range(self.size_range.0..=self.size_range.1);
        let file_bytes = draw.gen_range(self.file_bytes_range.0..=self.file_bytes_range.1);
        let (initial, join_window_secs) = match &self.flash {
            Some(f) => (f.initial.clamp(1, size), f.window_secs),
            None => (size, 0.0),
        };
        SwarmShape {
            size,
            file_bytes,
            initial,
            join_window_secs,
        }
    }

    fn build(&mut self, base: NodeId, shape: &SwarmShape) -> Vec<BulletPrimeNode> {
        let tree = ControlTree::random_rooted(base, shape.size, CONTROL_TREE_DEGREE, &self.rng);
        let mut cfg = self.template.clone();
        cfg.file = FileSpec::new(shape.file_bytes, self.block_bytes);
        (0..shape.size as u32)
            .map(|i| BulletPrimeNode::new(NodeId(base.0 + i), &tree, cfg.clone()))
            .collect()
    }
}

/// Builds the slot-pool [`Runner`] a Bullet′ service run drives: one
/// placeholder node per host (never initialised — every slot starts
/// inactive and is re-populated per admission by
/// [`run_service`](netsim::run_service)).
pub fn build_service_runner(
    topo: Topology,
    template: &Config,
    rng: &RngFactory,
) -> Runner<BulletPrimeNode> {
    let tree = ControlTree::random(topo.len(), CONTROL_TREE_DEGREE, rng);
    let nodes: Vec<BulletPrimeNode> = (0..topo.len() as u32)
        .map(|i| BulletPrimeNode::new(NodeId(i), &tree, template.clone()))
        .collect();
    Runner::new(Network::new(topo), nodes, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Role;
    use desim::{SimDuration, SimTime};
    use netsim::{run_service, topology, ArrivalGen, ServiceConfig};

    fn swarms() -> ServiceSwarms {
        let rng = RngFactory::new(20050410);
        let cfg = Config::new(FileSpec::new(256 * 1024, 16 * 1024));
        ServiceSwarms::new(cfg, &rng, (4, 8), (128 * 1024, 512 * 1024))
    }

    #[test]
    fn shapes_are_deterministic_and_in_range() {
        let mut a = swarms();
        let mut b = swarms();
        for i in 0..32 {
            let s = a.shape(i);
            assert_eq!(s, b.shape(i), "shape {i} must be a pure function");
            assert!((4..=8).contains(&s.size));
            assert!((128 * 1024..=512 * 1024).contains(&s.file_bytes));
            assert_eq!(s.initial, s.size, "no flash crowd configured");
        }
    }

    #[test]
    fn built_swarms_are_rooted_at_their_segment_base() {
        let mut src = swarms();
        let shape = src.shape(0);
        let nodes = src.build(NodeId(16), &shape);
        assert_eq!(nodes.len(), shape.size);
        assert_eq!(nodes[0].role(), Role::Source);
        assert!(nodes[1..].iter().all(|n| n.role() == Role::Receiver));
    }

    #[test]
    fn bullet_swarms_complete_through_the_service_manager() {
        // End-to-end: two sequential Bullet′ swarms over a shared-core mesh,
        // admitted, completed and reaped by the open-system manager.
        let rng = RngFactory::new(20050410);
        let topo = topology::shared_core_mesh(8, netsim::mbps(20.0), 0.0, &rng);
        let template = Config::new(FileSpec::new(128 * 1024, 16 * 1024));
        let mut runner = build_service_runner(topo, &template, &rng);
        let mut source = ServiceSwarms::new(template, &rng, (6, 6), (128 * 1024, 128 * 1024));
        let cfg = ServiceConfig {
            horizon: SimTime::from_secs_f64(600.0),
            warmup: SimTime::from_secs_f64(60.0),
            tick: SimDuration::from_secs(10),
            segment_slots: 8,
            max_arrivals: 4,
            core: None,
        };
        let gen = ArrivalGen::Trace(vec![SimTime::ZERO, SimTime::from_secs_f64(250.0)]);
        let report = run_service(&mut runner, &cfg, &gen, &mut source, &rng);
        assert_eq!(report.admitted, 2);
        assert_eq!(
            report.completed, 2,
            "both Bullet′ swarms must finish inside the horizon: {report:?}"
        );
        assert_eq!(runner.network().live_flows(), 0);
        assert!(report.cohorts[0].p50_secs > 0.0);
    }
}
