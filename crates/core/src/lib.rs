//! `bullet-prime` — the paper's contribution: an adaptive, mesh-based,
//! high-bandwidth data dissemination protocol.
//!
//! Bullet′ ("Bullet prime") distributes a large file from a single source to
//! many receivers by layering a *pull* mesh over a thin control tree:
//!
//! * the **source** pushes each block exactly once, round-robin over its
//!   control-tree children, skipping full pipes ([`node`], §3.3.5);
//! * **RanSub** (from the [`overlay`] crate) periodically delivers a changing
//!   uniformly random subset of node summaries to every participant;
//! * the **peering strategy** ([`peering`]) uses those subsets to maintain an
//!   adaptively sized set of senders and receivers, trimming peers whose
//!   bandwidth falls 1.5σ below the mean (§3.3.1, Fig 2);
//! * the **request strategy** ([`request`]) orders block requests
//!   rarest-random to maximise block diversity (§3.3.2);
//! * the **flow controller** ([`flow`]) adapts the per-sender number of
//!   outstanding requests with an XCP-style control loop targeting one block
//!   queued ahead of the socket buffer (§3.3.3, Fig 3);
//! * **incremental diffs** (`dissem_codec::diff`) keep receivers informed
//!   of new availability with self-clocking updates (§3.3.4).
//!
//! The crate exposes each mechanism as an independently testable component
//! plus the composed [`BulletPrimeNode`] protocol and deployment helpers in
//! [`builder`].

pub mod builder;
pub mod config;
pub mod flow;
pub mod messages;
pub mod metrics;
pub mod node;
pub mod peering;
pub mod request;
pub mod service;

pub use builder::{build_group_runner, build_nodes, build_nodes_with_tree, build_runner};
pub use config::{Config, OutstandingPolicy, PeerSetPolicy, RequestStrategy, TransferMode};
pub use flow::OutstandingController;
pub use messages::Msg;
pub use metrics::DownloadMetrics;
pub use node::{BulletPrimeNode, Role, Timer};
pub use peering::{EpochDecision, PeerManager, ReceiverObservation, SenderObservation};
pub use request::RequestManager;
pub use service::{build_service_runner, FlashShape, ServiceSwarms};

#[cfg(test)]
mod end_to_end {
    use super::*;
    use desim::{RngFactory, SimDuration};
    use dissem_codec::FileSpec;
    use netsim::{topology, Protocol, StopReason};

    fn run(
        n: usize,
        file_kb: u64,
        seed: u64,
        tweak: impl FnOnce(&mut Config),
    ) -> (netsim::RunReport, Vec<BulletPrimeNode>) {
        let rng = RngFactory::new(seed);
        let topo = topology::modelnet_mesh(n, 0.01, &rng);
        let mut cfg = Config::new(FileSpec::new(file_kb * 1024, 16 * 1024));
        tweak(&mut cfg);
        let mut runner = build_runner(topo, &cfg, &rng);
        let report = runner.run(SimDuration::from_secs(3_600));
        let nodes = runner.into_nodes();
        (report, nodes)
    }

    #[test]
    fn small_swarm_downloads_the_whole_file() {
        let (report, nodes) = run(12, 512, 42, |_| {});
        assert_eq!(report.reason, StopReason::AllComplete, "{report:?}");
        for node in nodes.iter().skip(1) {
            assert!(node.is_complete(), "node {} incomplete", node.id());
            // 512 KiB file / 16 KiB blocks = exactly 32 source blocks. In the
            // default unencoded mode (§3 of the paper) a receiver is complete
            // when it holds every source block, no more and no fewer — unlike
            // the encoded mode, where completion needs (1+eps)*k distinct
            // encoded blocks (see `encoded_mode_completes_with_overhead_target`).
            assert_eq!(node.blocks_held(), 32);
            assert!(node.metrics().completed_at.is_some());
        }
        for node in nodes.iter().skip(1) {
            assert!(
                node.metrics().duplicate_fraction() < 0.35,
                "node {} wasted too much bandwidth on duplicates: {}",
                node.id(),
                node.metrics().duplicate_fraction()
            );
        }
    }

    #[test]
    fn runs_are_deterministic_for_a_seed() {
        let (a, _) = run(10, 256, 7, |_| {});
        let (b, _) = run(10, 256, 7, |_| {});
        assert_eq!(a.completion_secs, b.completion_secs);
        assert_eq!(a.events, b.events);
        let (c, _) = run(10, 256, 8, |_| {});
        assert_ne!(
            a.completion_secs, c.completion_secs,
            "different seeds should differ"
        );
    }

    #[test]
    fn encoded_mode_completes_with_overhead_target() {
        let (report, nodes) = run(8, 256, 3, |cfg| {
            cfg.transfer_mode = TransferMode::Encoded { epsilon: 0.04 };
        });
        assert_eq!(report.reason, StopReason::AllComplete);
        let target = nodes[1].metrics().useful_blocks();
        assert!(
            target >= 17,
            "encoded completion needs (1+eps)*16 = 17 blocks, got {target}"
        );
    }

    #[test]
    fn joiner_whose_parent_crashed_before_the_join_reattaches_to_the_root() {
        // Regression: node 2's control-tree parent (node 1) crashes *before*
        // node 2 joins, so node 2 never sees an on_peer_failed for it. Its
        // on_init must detect the dead parent and attach at the root, or it
        // would be orphaned from every distribute wave and never complete.
        use netsim::dynamics::NodeEvent;
        use netsim::{Network, NodeId, Runner};
        use overlay::ControlTree;

        let n = 8;
        let rng = desim::RngFactory::new(5);
        let topo = netsim::topology::modelnet_mesh(n, 0.0, &rng);
        let mut parents = vec![None, Some(NodeId(0)), Some(NodeId(1))];
        parents.extend((3..n).map(|_| Some(NodeId(0))));
        let tree = ControlTree::from_parents(parents);
        let cfg = Config::new(FileSpec::new(256 * 1024, 16 * 1024));
        let nodes = build_nodes_with_tree(&topo, &tree, &cfg);
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        runner.exempt_from_completion(NodeId(0));
        runner.set_inactive_at_start(NodeId(2));
        runner.schedule_node_event(
            desim::SimTime::from_secs_f64(1.0),
            NodeEvent::Crash(NodeId(1)),
        );
        runner.schedule_node_event(
            desim::SimTime::from_secs_f64(5.0),
            NodeEvent::Join(NodeId(2)),
        );
        let report = runner.run(SimDuration::from_secs(3_600));
        assert_eq!(report.reason, StopReason::AllComplete, "{report:?}");
        assert!(
            report.completion_secs[2].is_some(),
            "the late joiner must complete despite its dead parent: {report:?}"
        );
    }

    #[test]
    fn parent_joining_after_its_child_does_not_stall_ransub() {
        // Regression: node 2's tree parent (node 1) joins *after* node 2 has
        // already re-attached to the root. Node 1 must start childless (its
        // construction-time child now reports to the root), or its collect
        // waves — and through them the whole overlay's — would wait forever
        // on a report that never comes.
        use netsim::dynamics::NodeEvent;
        use netsim::{Network, NodeId, Runner};
        use overlay::ControlTree;

        let n = 8;
        let rng = desim::RngFactory::new(6);
        let topo = netsim::topology::modelnet_mesh(n, 0.0, &rng);
        let mut parents = vec![None, Some(NodeId(0)), Some(NodeId(1))];
        parents.extend((3..n).map(|_| Some(NodeId(0))));
        let tree = ControlTree::from_parents(parents);
        let cfg = Config::new(FileSpec::new(256 * 1024, 16 * 1024));
        let nodes = build_nodes_with_tree(&topo, &tree, &cfg);
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        runner.exempt_from_completion(NodeId(0));
        runner.set_inactive_at_start(NodeId(1));
        runner.schedule_node_event(
            desim::SimTime::from_secs_f64(6.0),
            NodeEvent::Join(NodeId(1)),
        );
        let report = runner.run(SimDuration::from_secs(3_600));
        assert_eq!(report.reason, StopReason::AllComplete, "{report:?}");
        assert!(
            report.completion_secs[1].is_some(),
            "the late parent completes: {report:?}"
        );
        assert!(
            report.completion_secs[2].is_some(),
            "the re-attached child completes: {report:?}"
        );
    }

    #[test]
    fn fixed_peering_and_fixed_outstanding_still_complete() {
        let (report, _) = run(10, 256, 5, |cfg| {
            cfg.peer_policy = PeerSetPolicy::Fixed(6);
            cfg.outstanding_policy = OutstandingPolicy::Fixed(5);
            cfg.request_strategy = RequestStrategy::Random;
        });
        assert_eq!(report.reason, StopReason::AllComplete);
    }

    #[test]
    fn every_request_strategy_completes() {
        for strategy in [
            RequestStrategy::FirstEncountered,
            RequestStrategy::Random,
            RequestStrategy::Rarest,
            RequestStrategy::RarestRandom,
        ] {
            let (report, _) = run(8, 128, 11, |cfg| cfg.request_strategy = strategy);
            assert_eq!(
                report.reason,
                StopReason::AllComplete,
                "strategy {strategy:?} failed to complete"
            );
        }
    }
}
