//! The request strategy (paper §2.4, §3.3.2).
//!
//! A receiver keeps, per sender, the list of blocks that sender has
//! advertised and the receiver still needs, plus a global map of requests
//! currently outstanding anywhere. When a request slot opens towards a
//! sender, the strategy orders that sender's candidates and picks the head of
//! the list:
//!
//! * **first-encountered** — discovery order (the strawman; leads to low
//!   block diversity);
//! * **random** — uniformly random order;
//! * **rarest** — fewest advertising senders first, deterministic tie-break;
//! * **rarest-random** — fewest advertising senders first, ties broken
//!   uniformly at random (Bullet′'s default).
//!
//! A block is requested from at most one sender at a time; requests that stay
//! outstanding past a generous timeout are released so another sender can
//! provide the block (the paper notes that cancelling in-flight blocks is
//! impractical, so the timeout is insurance against pathological stalls, not
//! an optimisation).

use std::collections::BTreeMap;

use desim::{SimDuration, SimTime};
use dissem_codec::{BlockBitmap, BlockId};
use netsim::NodeId;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::RequestStrategy;

/// Per-sender availability bookkeeping.
#[derive(Debug, Clone)]
struct SenderAvailability {
    /// Blocks in the order their availability was discovered (what preserves
    /// the first-encountered semantics and the RNG-keyed candidate order).
    order: Vec<BlockId>,
    /// Membership bitmap for O(1) lookups and word-level counting.
    bits: BlockBitmap,
}

impl SenderAvailability {
    fn new(block_space: u32) -> Self {
        SenderAvailability {
            order: Vec::new(),
            bits: BlockBitmap::new(block_space),
        }
    }
}

/// A request currently outstanding to some sender.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    to: NodeId,
    since: SimTime,
}

/// Receiver-side request state across all senders.
#[derive(Debug, Clone)]
pub struct RequestManager {
    strategy: RequestStrategy,
    /// Number of senders currently advertising each block.
    rarity: Vec<u32>,
    available: BTreeMap<NodeId, SenderAvailability>,
    in_flight: BTreeMap<BlockId, InFlight>,
    /// Bitmap mirror of `in_flight`'s keys, for O(1) membership tests and
    /// word-level candidate counting.
    in_flight_bits: BlockBitmap,
}

impl RequestManager {
    /// Creates a manager for a block space of `block_space` ids.
    pub fn new(strategy: RequestStrategy, block_space: u32) -> Self {
        RequestManager {
            strategy,
            rarity: vec![0; block_space as usize],
            available: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            in_flight_bits: BlockBitmap::new(block_space),
        }
    }

    fn block_space(&self) -> u32 {
        self.rarity.len() as u32
    }

    /// The configured strategy.
    pub fn strategy(&self) -> RequestStrategy {
        self.strategy
    }

    /// Registers a new sender with no known availability yet.
    pub fn add_sender(&mut self, peer: NodeId) {
        let space = self.block_space();
        self.available
            .entry(peer)
            .or_insert_with(|| SenderAvailability::new(space));
    }

    /// Returns true if `peer` is a registered sender.
    pub fn has_sender(&self, peer: NodeId) -> bool {
        self.available.contains_key(&peer)
    }

    /// Removes a sender; its advertised blocks stop counting towards rarity
    /// and any requests outstanding to it are released. Returns the released
    /// blocks.
    pub fn remove_sender(&mut self, peer: NodeId) -> Vec<BlockId> {
        if let Some(av) = self.available.remove(&peer) {
            for b in av.bits.iter() {
                let r = &mut self.rarity[b.index()];
                *r = r.saturating_sub(1);
            }
        }
        let released: Vec<BlockId> = self
            .in_flight
            .iter()
            .filter(|(_, f)| f.to == peer)
            .map(|(b, _)| *b)
            .collect();
        for b in &released {
            self.in_flight.remove(b);
            self.in_flight_bits.remove(*b);
        }
        released
    }

    /// Records that `peer` advertised `blocks`. Blocks the receiver already
    /// holds are ignored.
    pub fn on_advertised(&mut self, peer: NodeId, blocks: &[BlockId], have: &BlockBitmap) {
        let space = self.block_space();
        let entry = self
            .available
            .entry(peer)
            .or_insert_with(|| SenderAvailability::new(space));
        for &b in blocks {
            if have.contains(b) || b.index() >= self.rarity.len() {
                continue;
            }
            if entry.bits.insert(b) {
                entry.order.push(b);
                self.rarity[b.index()] += 1;
            }
        }
    }

    /// Records a block arrival (from anywhere): clears its outstanding entry
    /// and drops it from every sender's candidate list.
    pub fn on_block_received(&mut self, block: BlockId) {
        if self.in_flight.remove(&block).is_some() {
            self.in_flight_bits.remove(block);
        }
        for av in self.available.values_mut() {
            if av.bits.remove(block) {
                let r = &mut self.rarity[block.index()];
                *r = r.saturating_sub(1);
            }
        }
        // `order` vectors are compacted lazily during selection.
    }

    /// Number of blocks `peer` has advertised that we still need and have not
    /// requested anywhere (an estimate of how soon we will run out of
    /// candidates for this sender).
    pub fn useful_candidates(&self, peer: NodeId, have: &BlockBitmap) -> usize {
        // Word-level: |advertised & !have & !in_flight|, a few cache lines
        // instead of a per-block set walk.
        self.available
            .get(&peer)
            .map(|av| {
                av.bits
                    .words()
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| {
                        let h = have.words().get(i).copied().unwrap_or(0);
                        let f = self.in_flight_bits.words().get(i).copied().unwrap_or(0);
                        (a & !h & !f).count_ones() as usize
                    })
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Number of requests currently outstanding to `peer`.
    pub fn outstanding_to(&self, peer: NodeId) -> usize {
        self.in_flight.values().filter(|f| f.to == peer).count()
    }

    /// Total number of requests outstanding anywhere.
    pub fn outstanding_total(&self) -> usize {
        self.in_flight.len()
    }

    /// Chooses up to `count` blocks to request from `peer`, marks them
    /// outstanding and returns them in request order.
    pub fn select_requests(
        &mut self,
        peer: NodeId,
        count: usize,
        have: &BlockBitmap,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Vec<BlockId> {
        if count == 0 {
            return Vec::new();
        }
        let Some(av) = self.available.get_mut(&peer) else {
            return Vec::new();
        };
        // Compact: drop blocks we already have or that left the set.
        let bits = &av.bits;
        av.order.retain(|b| bits.contains(*b) && !have.contains(*b));

        let candidates: Vec<BlockId> = av
            .order
            .iter()
            .copied()
            .filter(|b| !self.in_flight_bits.contains(*b))
            .collect();
        if candidates.is_empty() {
            return Vec::new();
        }

        let chosen = match self.strategy {
            RequestStrategy::FirstEncountered => {
                candidates.into_iter().take(count).collect::<Vec<_>>()
            }
            RequestStrategy::Random => {
                let mut keyed: Vec<(u64, BlockId)> = candidates
                    .into_iter()
                    .map(|b| (rng.gen::<u64>(), b))
                    .collect();
                keyed.sort_unstable_by_key(|(k, _)| *k);
                keyed.into_iter().take(count).map(|(_, b)| b).collect()
            }
            RequestStrategy::Rarest => {
                let mut keyed: Vec<(u32, u32, BlockId)> = candidates
                    .into_iter()
                    .map(|b| (self.rarity[b.index()], b.0, b))
                    .collect();
                keyed.sort_unstable_by_key(|(r, idx, _)| (*r, *idx));
                keyed.into_iter().take(count).map(|(_, _, b)| b).collect()
            }
            RequestStrategy::RarestRandom => {
                let mut keyed: Vec<(u32, u64, BlockId)> = candidates
                    .into_iter()
                    .map(|b| (self.rarity[b.index()], rng.gen::<u64>(), b))
                    .collect();
                keyed.sort_unstable_by_key(|(r, k, _)| (*r, *k));
                keyed.into_iter().take(count).map(|(_, _, b)| b).collect()
            }
        };

        for &b in &chosen {
            self.in_flight.insert(
                b,
                InFlight {
                    to: peer,
                    since: now,
                },
            );
            self.in_flight_bits.insert(b);
        }
        chosen
    }

    /// Releases requests that have been outstanding longer than `timeout`, so
    /// the blocks become eligible for re-requesting from other senders.
    /// Returns `(sender, block)` pairs for the released requests.
    pub fn release_stale(&mut self, now: SimTime, timeout: SimDuration) -> Vec<(NodeId, BlockId)> {
        let mut released = Vec::new();
        self.in_flight.retain(|&block, f| {
            if now.saturating_since(f.since) >= timeout {
                released.push((f.to, block));
                false
            } else {
                true
            }
        });
        for &(_, b) in &released {
            self.in_flight_bits.remove(b);
        }
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    fn ids(v: &[u32]) -> Vec<BlockId> {
        v.iter().copied().map(BlockId).collect()
    }

    #[test]
    fn first_encountered_respects_discovery_order() {
        let mut rm = RequestManager::new(RequestStrategy::FirstEncountered, 100);
        let have = BlockBitmap::new(100);
        rm.add_sender(NodeId(1));
        rm.on_advertised(NodeId(1), &ids(&[5, 3, 9]), &have);
        rm.on_advertised(NodeId(1), &ids(&[1]), &have);
        let got = rm.select_requests(NodeId(1), 3, &have, SimTime::ZERO, &mut rng());
        assert_eq!(got, ids(&[5, 3, 9]));
    }

    #[test]
    fn rarest_prefers_under_replicated_blocks() {
        let mut rm = RequestManager::new(RequestStrategy::Rarest, 100);
        let have = BlockBitmap::new(100);
        for p in 1..=3u32 {
            rm.add_sender(NodeId(p));
        }
        // Block 7 is advertised by all three peers; block 8 by two; block 9 by one.
        rm.on_advertised(NodeId(1), &ids(&[7, 8, 9]), &have);
        rm.on_advertised(NodeId(2), &ids(&[7, 8]), &have);
        rm.on_advertised(NodeId(3), &ids(&[7]), &have);
        let got = rm.select_requests(NodeId(1), 3, &have, SimTime::ZERO, &mut rng());
        assert_eq!(got, ids(&[9, 8, 7]));
    }

    #[test]
    fn rarest_random_breaks_ties_randomly_but_respects_rarity() {
        let mut rm = RequestManager::new(RequestStrategy::RarestRandom, 1000);
        let have = BlockBitmap::new(1000);
        rm.add_sender(NodeId(1));
        rm.add_sender(NodeId(2));
        // 50 blocks with rarity 2, one block (999) with rarity 1.
        let common: Vec<u32> = (0..50).collect();
        rm.on_advertised(NodeId(1), &ids(&common), &have);
        rm.on_advertised(NodeId(2), &ids(&common), &have);
        rm.on_advertised(NodeId(1), &ids(&[999]), &have);
        let got = rm.select_requests(NodeId(1), 1, &have, SimTime::ZERO, &mut rng());
        assert_eq!(got, ids(&[999]), "the uniquely rare block goes first");

        // Tie-break randomness: two fresh managers with different RNG seeds
        // pick different heads among equally-rare blocks.
        let pick = |seed: u64| -> BlockId {
            let mut rm = RequestManager::new(RequestStrategy::RarestRandom, 1000);
            let have = BlockBitmap::new(1000);
            rm.add_sender(NodeId(1));
            rm.on_advertised(NodeId(1), &ids(&common), &have);
            let mut r = StdRng::seed_from_u64(seed);
            rm.select_requests(NodeId(1), 1, &have, SimTime::ZERO, &mut r)[0]
        };
        let picks: std::collections::HashSet<u32> = (0..20).map(|s| pick(s).0).collect();
        assert!(
            picks.len() > 3,
            "random tie-break should spread choices, got {picks:?}"
        );
    }

    #[test]
    fn blocks_are_not_double_requested_across_senders() {
        let mut rm = RequestManager::new(RequestStrategy::FirstEncountered, 10);
        let have = BlockBitmap::new(10);
        rm.add_sender(NodeId(1));
        rm.add_sender(NodeId(2));
        rm.on_advertised(NodeId(1), &ids(&[0, 1, 2]), &have);
        rm.on_advertised(NodeId(2), &ids(&[0, 1, 2]), &have);
        let a = rm.select_requests(NodeId(1), 2, &have, SimTime::ZERO, &mut rng());
        let b = rm.select_requests(NodeId(2), 3, &have, SimTime::ZERO, &mut rng());
        assert_eq!(a, ids(&[0, 1]));
        assert_eq!(
            b,
            ids(&[2]),
            "blocks outstanding to peer 1 must not be re-requested"
        );
        assert_eq!(rm.outstanding_to(NodeId(1)), 2);
        assert_eq!(rm.outstanding_to(NodeId(2)), 1);
        assert_eq!(rm.outstanding_total(), 3);
    }

    #[test]
    fn received_and_already_held_blocks_are_skipped() {
        let mut rm = RequestManager::new(RequestStrategy::FirstEncountered, 10);
        let mut have = BlockBitmap::new(10);
        have.insert(BlockId(0));
        rm.add_sender(NodeId(1));
        rm.on_advertised(NodeId(1), &ids(&[0, 1, 2]), &have);
        rm.on_block_received(BlockId(1));
        let mut have2 = have.clone();
        have2.insert(BlockId(1));
        let got = rm.select_requests(NodeId(1), 5, &have2, SimTime::ZERO, &mut rng());
        assert_eq!(got, ids(&[2]));
    }

    #[test]
    fn removing_a_sender_releases_its_outstanding_requests() {
        let mut rm = RequestManager::new(RequestStrategy::FirstEncountered, 10);
        let have = BlockBitmap::new(10);
        rm.add_sender(NodeId(1));
        rm.add_sender(NodeId(2));
        rm.on_advertised(NodeId(1), &ids(&[0, 1]), &have);
        rm.on_advertised(NodeId(2), &ids(&[0, 1]), &have);
        let _ = rm.select_requests(NodeId(1), 2, &have, SimTime::ZERO, &mut rng());
        let released = rm.remove_sender(NodeId(1));
        assert_eq!(released.len(), 2);
        assert_eq!(rm.outstanding_total(), 0);
        // Blocks can now be requested from the other sender.
        let got = rm.select_requests(NodeId(2), 2, &have, SimTime::ZERO, &mut rng());
        assert_eq!(got.len(), 2);
        assert!(!rm.has_sender(NodeId(1)));
    }

    #[test]
    fn stale_requests_are_released_after_timeout() {
        let mut rm = RequestManager::new(RequestStrategy::FirstEncountered, 10);
        let have = BlockBitmap::new(10);
        rm.add_sender(NodeId(1));
        rm.on_advertised(NodeId(1), &ids(&[0]), &have);
        let _ = rm.select_requests(NodeId(1), 1, &have, SimTime::ZERO, &mut rng());
        let none = rm.release_stale(SimTime::from_secs_f64(5.0), SimDuration::from_secs(30));
        assert!(none.is_empty());
        let released = rm.release_stale(SimTime::from_secs_f64(31.0), SimDuration::from_secs(30));
        assert_eq!(released, vec![(NodeId(1), BlockId(0))]);
        assert_eq!(rm.outstanding_total(), 0);
    }

    #[test]
    fn useful_candidates_counts_unrequested_needed_blocks() {
        let mut rm = RequestManager::new(RequestStrategy::FirstEncountered, 10);
        let have = BlockBitmap::new(10);
        rm.add_sender(NodeId(1));
        rm.on_advertised(NodeId(1), &ids(&[0, 1, 2, 3]), &have);
        assert_eq!(rm.useful_candidates(NodeId(1), &have), 4);
        let _ = rm.select_requests(NodeId(1), 2, &have, SimTime::ZERO, &mut rng());
        assert_eq!(rm.useful_candidates(NodeId(1), &have), 2);
    }

    #[test]
    fn out_of_range_advertisements_are_ignored() {
        let mut rm = RequestManager::new(RequestStrategy::FirstEncountered, 4);
        let have = BlockBitmap::new(4);
        rm.add_sender(NodeId(1));
        rm.on_advertised(NodeId(1), &ids(&[2, 9]), &have);
        let got = rm.select_requests(NodeId(1), 5, &have, SimTime::ZERO, &mut rng());
        assert_eq!(got, ids(&[2]));
    }
}
