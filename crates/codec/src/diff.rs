//! Incremental availability diffs ("staying up-to-date", paper §3.3.4).
//!
//! Bullet′ senders keep each receiver informed of newly available blocks
//! using *incremental* diffs: a receiver hears about any given block from a
//! given sender at most once, which decouples the diff size from the file
//! size and avoids re-advertising the whole bitmap. Diff emission is
//! self-clocking — a diff is sent when the receiver has nothing outstanding
//! from us, or when the receiver explicitly asks because it is about to run
//! out of request candidates.

use serde::{Deserialize, Serialize};

use crate::bitmap::BlockBitmap;
use crate::block::BlockId;

/// A diff message body: blocks newly available at the sender.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diff {
    /// Newly advertised blocks, in ascending id order.
    pub blocks: Vec<BlockId>,
}

impl Diff {
    /// Approximate wire size of the diff in bytes (4 bytes per id plus a
    /// small fixed header), used by the emulator for overhead accounting.
    pub fn wire_size(&self) -> usize {
        8 + 4 * self.blocks.len()
    }

    /// Returns true if the diff advertises nothing.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Per-receiver tracker of which of our blocks the receiver has already been
/// told about.
///
/// The advertised set is a [`BlockBitmap`] grown lazily to whatever capacity
/// the observed `have` bitmaps require, so diff encoding is a word-level
/// and-not scan (O(words)) rather than a per-block set walk — the difference
/// between O(blocks·log blocks) and a few cache lines per diff once swarms
/// carry 10⁴+ block files.
#[derive(Debug, Clone)]
pub struct DiffTracker {
    advertised: BlockBitmap,
}

impl Default for DiffTracker {
    fn default() -> Self {
        DiffTracker {
            advertised: BlockBitmap::new(0),
        }
    }
}

impl DiffTracker {
    /// Creates a tracker that has advertised nothing yet.
    pub fn new() -> Self {
        DiffTracker::default()
    }

    /// Number of blocks advertised so far.
    pub fn advertised_count(&self) -> usize {
        self.advertised.count() as usize
    }

    /// Returns true if `block` was already advertised to this receiver.
    pub fn already_advertised(&self, block: BlockId) -> bool {
        self.advertised.contains(block)
    }

    /// Produces the next incremental diff: every block in `have` that has not
    /// yet been advertised to this receiver, capped at `max_entries` ids.
    ///
    /// The produced blocks are recorded so they will never be advertised
    /// again. An empty diff means the receiver is fully caught up.
    pub fn next_diff(&mut self, have: &BlockBitmap, max_entries: usize) -> Diff {
        self.advertised.grow_to(have.capacity());
        let blocks: Vec<BlockId> = have
            .and_not_iter(&self.advertised)
            .take(max_entries)
            .collect();
        for &id in &blocks {
            self.advertised.insert(id);
        }
        Diff { blocks }
    }

    /// Number of blocks in `have` that the receiver has not yet been told
    /// about (what the next diff would carry, ignoring the cap), counted a
    /// word at a time.
    pub fn pending_count(&self, have: &BlockBitmap) -> usize {
        have.difference_count(&self.advertised) as usize
    }

    /// Records blocks advertised through some other channel (e.g. the initial
    /// file-info exchange when a peering is established).
    pub fn mark_advertised(&mut self, blocks: impl IntoIterator<Item = BlockId>) {
        for id in blocks {
            self.advertised.grow_to(id.0 + 1);
            self.advertised.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bitmap_with(ids: &[u32], cap: u32) -> BlockBitmap {
        let mut bm = BlockBitmap::new(cap);
        for &i in ids {
            bm.insert(BlockId(i));
        }
        bm
    }

    #[test]
    fn diffs_are_incremental() {
        let mut tracker = DiffTracker::new();
        let have1 = bitmap_with(&[1, 2, 3], 100);
        let d1 = tracker.next_diff(&have1, usize::MAX);
        assert_eq!(d1.blocks, vec![BlockId(1), BlockId(2), BlockId(3)]);

        // Nothing new: empty diff.
        let d2 = tracker.next_diff(&have1, usize::MAX);
        assert!(d2.is_empty());

        // Only the new block appears.
        let have2 = bitmap_with(&[1, 2, 3, 7], 100);
        let d3 = tracker.next_diff(&have2, usize::MAX);
        assert_eq!(d3.blocks, vec![BlockId(7)]);
    }

    #[test]
    fn cap_limits_entries_and_remembers_only_sent() {
        let mut tracker = DiffTracker::new();
        let have = bitmap_with(&[0, 1, 2, 3, 4], 10);
        let d = tracker.next_diff(&have, 2);
        assert_eq!(d.blocks.len(), 2);
        assert_eq!(tracker.pending_count(&have), 3);
        let d2 = tracker.next_diff(&have, 10);
        assert_eq!(d2.blocks.len(), 3);
        assert_eq!(tracker.pending_count(&have), 0);
    }

    #[test]
    fn mark_advertised_suppresses_future_diffs() {
        let mut tracker = DiffTracker::new();
        tracker.mark_advertised([BlockId(5), BlockId(6)]);
        let have = bitmap_with(&[5, 6, 7], 10);
        let d = tracker.next_diff(&have, usize::MAX);
        assert_eq!(d.blocks, vec![BlockId(7)]);
        assert!(tracker.already_advertised(BlockId(5)));
    }

    #[test]
    fn wire_size_scales_with_entries() {
        let d = Diff {
            blocks: vec![BlockId(0); 10],
        };
        assert_eq!(d.wire_size(), 8 + 40);
    }
}
