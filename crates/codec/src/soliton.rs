//! Degree distributions for rateless (LT / online) erasure codes.
//!
//! The encoder draws each encoded block's *degree* — the number of source
//! blocks XOR-ed together — from the robust soliton distribution, the choice
//! that makes the peeling decoder succeed with `k + O(sqrt(k) ln^2(k/δ))`
//! received blocks with probability `1 - δ`.

use rand::Rng;

/// The robust soliton distribution over degrees `1..=k`.
#[derive(Debug, Clone)]
pub struct RobustSoliton {
    /// Cumulative distribution over degrees; `cdf[i]` is the probability of a
    /// degree `<= i + 1`.
    cdf: Vec<f64>,
    /// Expected reception overhead factor `beta = sum(rho + tau)`.
    beta: f64,
}

impl RobustSoliton {
    /// Builds the robust soliton distribution for `k` source blocks with
    /// tuning constants `c` and failure probability `delta`.
    ///
    /// Typical values (used throughout this repository): `c = 0.05`,
    /// `delta = 0.05`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, or if `c` or `delta` are not in `(0, 1]`.
    pub fn new(k: u32, c: f64, delta: f64) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(c > 0.0 && c <= 1.0, "c must be in (0, 1]");
        assert!(delta > 0.0 && delta <= 1.0, "delta must be in (0, 1]");
        let kf = f64::from(k);
        // Expected ripple size.
        let s = c * (kf / delta).ln() * kf.sqrt();
        let spike = (kf / s).floor().max(1.0) as u32;

        let mut weights = Vec::with_capacity(k as usize);
        let mut total = 0.0;
        for d in 1..=k {
            let df = f64::from(d);
            // Ideal soliton component.
            let rho = if d == 1 {
                1.0 / kf
            } else {
                1.0 / (df * (df - 1.0))
            };
            // Robust component.
            let tau = if d < spike {
                s / (df * kf)
            } else if d == spike {
                s * (s / delta).ln() / kf
            } else {
                0.0
            };
            let w = rho + tau;
            total += w;
            weights.push(total);
        }
        let beta = total;
        let cdf: Vec<f64> = weights.into_iter().map(|w| w / total).collect();
        RobustSoliton { cdf, beta }
    }

    /// Number of source blocks this distribution was built for.
    pub fn k(&self) -> u32 {
        self.cdf.len() as u32
    }

    /// The normalisation constant `beta`; the expected number of encoded
    /// blocks needed for decoding is roughly `k * beta` in the asymptotic
    /// analysis.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Probability of drawing exactly degree `d`.
    pub fn pmf(&self, d: u32) -> f64 {
        if d == 0 || d > self.k() {
            return 0.0;
        }
        let i = (d - 1) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Samples a degree in `1..=k`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        let u: f64 = rng.gen();
        // Binary search the CDF for the first entry >= u.
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i as u32 + 1,
            Err(i) => (i as u32 + 1).min(self.k()),
        }
    }

    /// Probability that an encoded block has degree 1 (an unencoded source
    /// block); the paper notes these are generated with low probability
    /// (around 0.01) yet are required to start the peeling decoder.
    pub fn degree_one_probability(&self) -> f64 {
        self.pmf(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let dist = RobustSoliton::new(1000, 0.05, 0.05);
        let sum: f64 = (1..=1000).map(|d| dist.pmf(d)).sum();
        assert!((sum - 1.0).abs() < 1e-9, "pmf sums to {sum}");
    }

    #[test]
    fn degree_one_probability_is_small_but_positive() {
        let dist = RobustSoliton::new(6400, 0.05, 0.05);
        let p1 = dist.degree_one_probability();
        assert!(p1 > 0.0 && p1 < 0.05, "p(degree 1) = {p1}");
    }

    #[test]
    fn beta_close_to_one_for_large_k() {
        // Reception overhead should be a few percent for file-scale k.
        let dist = RobustSoliton::new(6400, 0.03, 0.05);
        assert!(
            dist.beta() > 1.0 && dist.beta() < 1.25,
            "beta = {}",
            dist.beta()
        );
    }

    #[test]
    fn samples_lie_in_range_and_cover_spike() {
        let dist = RobustSoliton::new(500, 0.05, 0.05);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut max_seen = 0;
        for _ in 0..20_000 {
            let d = dist.sample(&mut rng);
            assert!((1..=500).contains(&d));
            max_seen = max_seen.max(d);
        }
        assert!(max_seen > 10, "samples never exceeded degree {max_seen}");
    }

    #[test]
    fn small_k_works() {
        let dist = RobustSoliton::new(1, 0.05, 0.05);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(dist.sample(&mut rng), 1);
        assert_eq!(dist.k(), 1);
    }

    #[test]
    fn empirical_mean_matches_pmf_mean() {
        let dist = RobustSoliton::new(200, 0.05, 0.05);
        let analytic: f64 = (1..=200).map(|d| f64::from(d) * dist.pmf(d)).sum();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let n = 50_000;
        let empirical: f64 = (0..n)
            .map(|_| f64::from(dist.sample(&mut rng)))
            .sum::<f64>()
            / f64::from(n);
        assert!(
            (empirical - analytic).abs() / analytic < 0.05,
            "empirical {empirical} vs analytic {analytic}"
        );
    }
}
