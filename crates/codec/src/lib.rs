//! `dissem-codec` — the data model of the dissemination systems.
//!
//! This crate holds everything about the *object being distributed* and is
//! deliberately independent of the network emulator and of any particular
//! protocol:
//!
//! * [`block`] — the file/block layout ([`FileSpec`], [`BlockId`]);
//! * [`bitmap`] — per-node block availability sets ([`BlockBitmap`]);
//! * [`diff`] — incremental availability diffs (paper §3.3.4);
//! * [`soliton`] / [`lt`] — rateless erasure codes (paper §2.2, §4.6);
//! * [`mod@file`] — real in-memory content, slicing and reassembly, used by the
//!   examples, Shotgun and the integrity tests.

pub mod bitmap;
pub mod block;
pub mod diff;
pub mod file;
pub mod lt;
pub mod soliton;

pub use bitmap::BlockBitmap;
pub use block::{BlockId, FileSpec};
pub use diff::{Diff, DiffTracker};
pub use file::{FileAssembler, FileData};
pub use lt::{EncodedBlock, LtDecoder, LtEncoder};
pub use soliton::RobustSoliton;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Insert/contains/count stay mutually consistent under arbitrary
        /// insert sequences.
        #[test]
        fn bitmap_count_matches_inserts(ids in proptest::collection::vec(0u32..512, 0..300)) {
            let mut bm = BlockBitmap::new(512);
            let mut reference = std::collections::BTreeSet::new();
            for &i in &ids {
                let newly = bm.insert(BlockId(i));
                prop_assert_eq!(newly, reference.insert(i));
            }
            prop_assert_eq!(bm.count() as usize, reference.len());
            for i in 0..512u32 {
                prop_assert_eq!(bm.contains(BlockId(i)), reference.contains(&i));
            }
            let iterated: Vec<u32> = bm.iter().map(|b| b.0).collect();
            let expected: Vec<u32> = reference.iter().copied().collect();
            prop_assert_eq!(iterated, expected);
        }

        /// difference_count equals the length of the materialised difference.
        #[test]
        fn bitmap_difference_consistent(
            a in proptest::collection::vec(0u32..256, 0..200),
            b in proptest::collection::vec(0u32..256, 0..200),
        ) {
            let mut ba = BlockBitmap::new(256);
            let mut bb = BlockBitmap::new(256);
            for i in a { ba.insert(BlockId(i)); }
            for i in b { bb.insert(BlockId(i)); }
            prop_assert_eq!(ba.difference(&bb).len() as u32, ba.difference_count(&bb));
        }

        /// Incremental diffs never repeat a block and eventually cover
        /// everything the sender has.
        #[test]
        fn diffs_cover_without_repeats(
            waves in proptest::collection::vec(proptest::collection::vec(0u32..128, 0..40), 1..8)
        ) {
            let mut have = BlockBitmap::new(128);
            let mut tracker = DiffTracker::new();
            let mut heard = std::collections::BTreeSet::new();
            for wave in waves {
                for i in wave {
                    have.insert(BlockId(i));
                }
                let diff = tracker.next_diff(&have, usize::MAX);
                for b in diff.blocks {
                    prop_assert!(heard.insert(b), "block {:?} advertised twice", b);
                }
            }
            // After the final diff, everything the sender has was heard.
            let have_set: std::collections::BTreeSet<BlockId> = have.iter().collect();
            prop_assert_eq!(heard, have_set);
        }

        /// Merging availability sets is idempotent and commutative: unioning
        /// the same bitmap in twice changes nothing, and either merge order
        /// yields the same set.
        #[test]
        fn bitmap_merge_idempotent_and_commutative(
            a in proptest::collection::vec(0u32..256, 0..200),
            b in proptest::collection::vec(0u32..256, 0..200),
        ) {
            let mut ba = BlockBitmap::new(256);
            let mut bb = BlockBitmap::new(256);
            for i in a { ba.insert(BlockId(i)); }
            for i in b { bb.insert(BlockId(i)); }

            let mut once = ba.clone();
            once.union_with(&bb);
            let mut twice = once.clone();
            twice.union_with(&bb);
            prop_assert_eq!(&once, &twice);

            let mut other_order = bb.clone();
            other_order.union_with(&ba);
            prop_assert_eq!(&once, &other_order);
            prop_assert!(once.count() >= ba.count().max(bb.count()));
        }

        /// A `DiffTracker` is idempotent over an unchanged availability set:
        /// once a diff is emitted, asking again (even with a tighter entry
        /// budget) advertises nothing until the sender actually gains blocks,
        /// and new acquisitions alone appear in the next diff.
        #[test]
        fn diff_tracker_does_not_readvertise(
            have in proptest::collection::vec(0u32..128, 0..80),
            gained in proptest::collection::vec(0u32..128, 0..80),
            budget in 1usize..16,
        ) {
            let mut sender = BlockBitmap::new(128);
            for &i in &have { sender.insert(BlockId(i)); }
            let mut tracker = DiffTracker::new();
            let first = tracker.next_diff(&sender, usize::MAX);
            prop_assert_eq!(first.blocks.len() as u32, sender.count());

            // Unchanged availability: repeated polls stay empty.
            prop_assert!(tracker.next_diff(&sender, usize::MAX).is_empty());
            prop_assert!(tracker.next_diff(&sender, budget).is_empty());

            // After gaining blocks, only the genuinely new ones are diffed.
            let before = sender.clone();
            for &i in &gained { sender.insert(BlockId(i)); }
            let second = tracker.next_diff(&sender, usize::MAX);
            for b in &second.blocks {
                prop_assert!(!before.contains(*b), "{b:?} re-advertised");
                prop_assert!(sender.contains(*b));
            }
            prop_assert_eq!(second.blocks.len() as u32, sender.count() - before.count());
        }

        /// LT decoding is robust to duplicated encoded blocks: feeding every
        /// block twice still converges to the original content.
        #[test]
        fn lt_round_trip_survives_duplicates(
            len in 1usize..1200,
            block in 1usize..129,
            seed in any::<u64>(),
        ) {
            let data: Vec<u8> = (0..len).map(|i| (i as u64 ^ seed) as u8).collect();
            let mut enc = LtEncoder::new(&data, block, seed);
            let k = enc.num_source_blocks();
            let mut dec = LtDecoder::new(k, block);
            let mut fed = 0u64;
            while !dec.is_complete() {
                let encoded = enc.next_block();
                dec.push(&encoded);
                dec.push(&encoded);
                fed += 1;
                prop_assert!(fed < 20 * u64::from(k) + 200, "decoder failed to converge");
            }
            prop_assert_eq!(dec.assemble(data.len()).unwrap(), data);
        }

        /// LT codes round-trip arbitrary content with arbitrary block sizes.
        #[test]
        fn lt_round_trip(
            len in 1usize..2000,
            block in 1usize..257,
            seed in any::<u64>(),
        ) {
            let data: Vec<u8> = (0..len).map(|i| (i as u64 ^ seed) as u8).collect();
            let mut enc = LtEncoder::new(&data, block, seed);
            let k = enc.num_source_blocks();
            let mut dec = LtDecoder::new(k, block.max(1));
            let mut fed = 0u64;
            while !dec.is_complete() {
                dec.push(&enc.next_block());
                fed += 1;
                prop_assert!(fed < 20 * u64::from(k) + 200, "decoder failed to converge");
            }
            prop_assert_eq!(dec.assemble(data.len()).unwrap(), data);
        }

        /// The file assembler reconstructs content for any permutation of blocks.
        #[test]
        fn assembler_any_order(len in 1u64..5000, block in 1u32..512, seed in any::<u64>()) {
            use rand::seq::SliceRandom;
            use rand::SeedableRng;
            let spec = FileSpec::new(len, block);
            let f = FileData::synthetic(spec, seed);
            let mut ids: Vec<BlockId> = spec.blocks().collect();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            ids.shuffle(&mut rng);
            let mut asm = FileAssembler::new(spec);
            for id in ids {
                asm.put(id, f.block(id));
            }
            prop_assert!(asm.is_complete());
            let rebuilt = asm.into_file().unwrap();
            prop_assert_eq!(rebuilt.bytes(), f.bytes());
        }
    }
}
