//! Block-availability bitmaps.
//!
//! Every node keeps a bitmap of the blocks it holds; senders advertise their
//! bitmaps to receivers (as incremental diffs, see [`crate::diff`]) and the
//! request strategies consult the union of the per-peer bitmaps to compute
//! block *rarity*.

use serde::{Deserialize, Serialize};

use crate::block::BlockId;

/// A fixed-capacity bitset over block indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockBitmap {
    words: Vec<u64>,
    capacity: u32,
    ones: u32,
}

impl BlockBitmap {
    /// Creates an empty bitmap able to hold `capacity` blocks.
    pub fn new(capacity: u32) -> Self {
        BlockBitmap {
            words: vec![0; (capacity as usize).div_ceil(64)],
            capacity,
            ones: 0,
        }
    }

    /// Creates a bitmap with every one of the `capacity` bits set (e.g. the
    /// source's own bitmap in unencoded mode).
    pub fn full(capacity: u32) -> Self {
        let mut bm = BlockBitmap::new(capacity);
        for i in 0..capacity {
            bm.insert(BlockId(i));
        }
        bm
    }

    /// Number of block slots this bitmap covers.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Number of blocks currently present.
    pub fn count(&self) -> u32 {
        self.ones
    }

    /// Returns true when no block is present.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Returns true when every slot is set.
    pub fn is_full(&self) -> bool {
        self.ones == self.capacity
    }

    /// Fraction of the file present, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        f64::from(self.ones) / f64::from(self.capacity)
    }

    /// Tests whether block `id` is present.
    pub fn contains(&self, id: BlockId) -> bool {
        if id.0 >= self.capacity {
            return false;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words[w] >> b & 1 == 1
    }

    /// Inserts block `id`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the bitmap capacity.
    pub fn insert(&mut self, id: BlockId) -> bool {
        assert!(
            id.0 < self.capacity,
            "block {id} outside bitmap capacity {}",
            self.capacity
        );
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Removes block `id`; returns true if it was present.
    pub fn remove(&mut self, id: BlockId) -> bool {
        if id.0 >= self.capacity {
            return false;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Iterates over the ids of present blocks in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            BitIter {
                word,
                base: wi as u32 * 64,
            }
            .filter(move |id| id.0 < self.capacity)
        })
    }

    /// Iterates over the ids of *missing* blocks in ascending order.
    pub fn iter_missing(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.capacity)
            .map(BlockId)
            .filter(move |id| !self.contains(*id))
    }

    /// Returns the blocks present in `self` but not in `other`
    /// (i.e. what `self` could offer a peer whose bitmap is `other`).
    pub fn difference(&self, other: &BlockBitmap) -> Vec<BlockId> {
        self.iter().filter(|id| !other.contains(*id)).collect()
    }

    /// Number of blocks present in `self` but not in `other`, without
    /// materialising the list.
    pub fn difference_count(&self, other: &BlockBitmap) -> u32 {
        let mut n = 0u32;
        for (i, w) in self.words.iter().enumerate() {
            let o = other.words.get(i).copied().unwrap_or(0);
            n += (w & !o).count_ones();
        }
        n
    }

    /// In-place union with `other` (must have the same capacity).
    pub fn union_with(&mut self, other: &BlockBitmap) {
        assert_eq!(self.capacity, other.capacity, "bitmap capacity mismatch");
        let mut ones = 0;
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= *o;
            ones += w.count_ones();
        }
        self.ones = ones;
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = BlockId;
    fn next(&mut self) -> Option<BlockId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(BlockId(self.base + tz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bm = BlockBitmap::new(130);
        assert!(bm.insert(BlockId(0)));
        assert!(bm.insert(BlockId(64)));
        assert!(bm.insert(BlockId(129)));
        assert!(!bm.insert(BlockId(129)), "double insert reports false");
        assert_eq!(bm.count(), 3);
        assert!(bm.contains(BlockId(64)));
        assert!(!bm.contains(BlockId(63)));
        assert!(bm.remove(BlockId(64)));
        assert!(!bm.remove(BlockId(64)));
        assert_eq!(bm.count(), 2);
    }

    #[test]
    fn full_and_fraction() {
        let bm = BlockBitmap::full(100);
        assert!(bm.is_full());
        assert_eq!(bm.count(), 100);
        assert_eq!(bm.fraction(), 1.0);
        let empty = BlockBitmap::new(100);
        assert!(empty.is_empty());
        assert_eq!(empty.fraction(), 0.0);
    }

    #[test]
    fn iter_yields_sorted_present_blocks() {
        let mut bm = BlockBitmap::new(200);
        for id in [5u32, 1, 190, 64, 65] {
            bm.insert(BlockId(id));
        }
        let got: Vec<u32> = bm.iter().map(|b| b.0).collect();
        assert_eq!(got, vec![1, 5, 64, 65, 190]);
    }

    #[test]
    fn difference_and_counts_agree() {
        let mut a = BlockBitmap::new(128);
        let mut b = BlockBitmap::new(128);
        for i in 0..50 {
            a.insert(BlockId(i));
        }
        for i in 25..80 {
            b.insert(BlockId(i));
        }
        let diff = a.difference(&b);
        assert_eq!(diff.len(), 25);
        assert_eq!(a.difference_count(&b), 25);
        assert_eq!(b.difference_count(&a), 30);
    }

    #[test]
    fn union_matches_manual() {
        let mut a = BlockBitmap::new(70);
        let mut b = BlockBitmap::new(70);
        a.insert(BlockId(3));
        b.insert(BlockId(68));
        b.insert(BlockId(3));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
        assert!(a.contains(BlockId(68)));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let bm = BlockBitmap::new(10);
        assert!(!bm.contains(BlockId(10)));
        assert!(!bm.contains(BlockId(1000)));
    }

    #[test]
    fn iter_missing_complements_iter() {
        let mut bm = BlockBitmap::new(33);
        bm.insert(BlockId(0));
        bm.insert(BlockId(32));
        let missing: Vec<u32> = bm.iter_missing().map(|b| b.0).collect();
        assert_eq!(missing.len(), 31);
        assert!(!missing.contains(&0));
        assert!(!missing.contains(&32));
    }
}
