//! Block-availability bitmaps.
//!
//! Every node keeps a bitmap of the blocks it holds; senders advertise their
//! bitmaps to receivers (as incremental diffs, see [`crate::diff`]) and the
//! request strategies consult the union of the per-peer bitmaps to compute
//! block *rarity*.

use serde::{Deserialize, Serialize};

use crate::block::BlockId;

/// A fixed-capacity bitset over block indices.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockBitmap {
    words: Vec<u64>,
    capacity: u32,
    ones: u32,
}

impl BlockBitmap {
    /// Creates an empty bitmap able to hold `capacity` blocks.
    pub fn new(capacity: u32) -> Self {
        BlockBitmap {
            words: vec![0; (capacity as usize).div_ceil(64)],
            capacity,
            ones: 0,
        }
    }

    /// Creates a bitmap with every one of the `capacity` bits set (e.g. the
    /// source's own bitmap in unencoded mode). Fills whole words; the final
    /// partial word is masked so no bit above `capacity` is ever set.
    pub fn full(capacity: u32) -> Self {
        let mut bm = BlockBitmap::new(capacity);
        if let Some(last) = bm.words.len().checked_sub(1) {
            bm.words[..last].fill(u64::MAX);
            bm.words[last] = tail_mask(capacity);
        }
        bm.ones = capacity;
        bm
    }

    /// Number of block slots this bitmap covers.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Grows the capacity to at least `capacity` (a no-op when already that
    /// big); present blocks are preserved. Used by trackers that size
    /// themselves lazily off the bitmaps they observe.
    pub fn grow_to(&mut self, capacity: u32) {
        if capacity > self.capacity {
            self.capacity = capacity;
            self.words.resize((capacity as usize).div_ceil(64), 0);
        }
    }

    /// Number of blocks currently present.
    pub fn count(&self) -> u32 {
        self.ones
    }

    /// Returns true when no block is present.
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Returns true when every slot is set.
    pub fn is_full(&self) -> bool {
        self.ones == self.capacity
    }

    /// Fraction of the file present, in `[0, 1]`.
    pub fn fraction(&self) -> f64 {
        if self.capacity == 0 {
            return 0.0;
        }
        f64::from(self.ones) / f64::from(self.capacity)
    }

    /// Tests whether block `id` is present.
    pub fn contains(&self, id: BlockId) -> bool {
        if id.0 >= self.capacity {
            return false;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        self.words[w] >> b & 1 == 1
    }

    /// Inserts block `id`; returns true if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the bitmap capacity.
    pub fn insert(&mut self, id: BlockId) -> bool {
        assert!(
            id.0 < self.capacity,
            "block {id} outside bitmap capacity {}",
            self.capacity
        );
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Removes block `id`; returns true if it was present.
    pub fn remove(&mut self, id: BlockId) -> bool {
        if id.0 >= self.capacity {
            return false;
        }
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            self.words[w] &= !mask;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Iterates over the ids of present blocks in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = BlockId> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            BitIter {
                word,
                base: wi as u32 * 64,
            }
            .filter(move |id| id.0 < self.capacity)
        })
    }

    /// Iterates over the ids of *missing* blocks in ascending order.
    /// Word-level: each 64-bit word is complemented (masked to the capacity)
    /// and its set bits walked, so a mostly-full bitmap costs O(words), not
    /// O(capacity).
    pub fn iter_missing(&self) -> impl Iterator<Item = BlockId> + '_ {
        let cap = self.capacity;
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let base = wi as u32 * 64;
            let valid = if cap >= base + 64 {
                u64::MAX
            } else {
                tail_mask(cap - base)
            };
            BitIter {
                word: !word & valid,
                base,
            }
        })
    }

    /// First id in `lo..hi` (clamped to the capacity) that is *not* present,
    /// scanning a word at a time.
    pub fn first_missing_in(&self, lo: u32, hi: u32) -> Option<BlockId> {
        let hi = hi.min(self.capacity);
        if lo >= hi {
            return None;
        }
        let mut wi = (lo / 64) as usize;
        // Mask off bits below `lo` in the first word, then walk whole words.
        let mut keep = !((1u64 << (lo % 64)) - 1);
        while (wi as u32) * 64 < hi {
            let missing = !self.words[wi] & keep;
            if missing != 0 {
                let id = wi as u32 * 64 + missing.trailing_zeros();
                return (id < hi).then_some(BlockId(id));
            }
            keep = u64::MAX;
            wi += 1;
        }
        None
    }

    /// Iterates over the ids present in `self` but absent from `other`, a
    /// word at a time (`self & !other`). `other` may have any capacity —
    /// words it does not cover are treated as empty.
    pub fn and_not_iter<'a>(
        &'a self,
        other: &'a BlockBitmap,
    ) -> impl Iterator<Item = BlockId> + 'a {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let o = other.words.get(wi).copied().unwrap_or(0);
            BitIter {
                word: word & !o,
                base: wi as u32 * 64,
            }
        })
    }

    /// Returns the blocks present in `self` but not in `other`
    /// (i.e. what `self` could offer a peer whose bitmap is `other`).
    pub fn difference(&self, other: &BlockBitmap) -> Vec<BlockId> {
        self.and_not_iter(other).collect()
    }

    /// Number of blocks present in `self` but not in `other`, without
    /// materialising the list.
    pub fn difference_count(&self, other: &BlockBitmap) -> u32 {
        let mut n = 0u32;
        for (i, w) in self.words.iter().enumerate() {
            let o = other.words.get(i).copied().unwrap_or(0);
            n += (w & !o).count_ones();
        }
        n
    }

    /// In-place union with `other` (must have the same capacity).
    pub fn union_with(&mut self, other: &BlockBitmap) {
        assert_eq!(self.capacity, other.capacity, "bitmap capacity mismatch");
        let mut ones = 0;
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= *o;
            ones += w.count_ones();
        }
        self.ones = ones;
    }

    /// ORs `self` into `out` (the accumulator form used when folding many
    /// per-peer bitmaps into one union without reallocating).
    pub fn union_into(&self, out: &mut BlockBitmap) {
        out.union_with(self);
    }

    /// Raw 64-bit words, low blocks first (read-only; bits above the
    /// capacity are always zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

/// Mask covering the low `bits` bits of a word (`bits` in `1..=64`; a
/// multiple-of-64 capacity wants the full word).
fn tail_mask(bits: u32) -> u64 {
    let rem = bits % 64;
    if rem == 0 {
        u64::MAX
    } else {
        (1u64 << rem) - 1
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = BlockId;
    fn next(&mut self) -> Option<BlockId> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(BlockId(self.base + tz))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut bm = BlockBitmap::new(130);
        assert!(bm.insert(BlockId(0)));
        assert!(bm.insert(BlockId(64)));
        assert!(bm.insert(BlockId(129)));
        assert!(!bm.insert(BlockId(129)), "double insert reports false");
        assert_eq!(bm.count(), 3);
        assert!(bm.contains(BlockId(64)));
        assert!(!bm.contains(BlockId(63)));
        assert!(bm.remove(BlockId(64)));
        assert!(!bm.remove(BlockId(64)));
        assert_eq!(bm.count(), 2);
    }

    #[test]
    fn full_and_fraction() {
        let bm = BlockBitmap::full(100);
        assert!(bm.is_full());
        assert_eq!(bm.count(), 100);
        assert_eq!(bm.fraction(), 1.0);
        let empty = BlockBitmap::new(100);
        assert!(empty.is_empty());
        assert_eq!(empty.fraction(), 0.0);
    }

    #[test]
    fn word_filled_full_matches_per_bit_construction() {
        // The word-granular fill must agree with inserting every bit, for
        // capacities hitting every partial-word shape (0, <64, =64, >64,
        // multiple-of-64, off-by-one around word boundaries).
        for cap in [0u32, 1, 5, 63, 64, 65, 127, 128, 129, 1000] {
            let fast = BlockBitmap::full(cap);
            let mut slow = BlockBitmap::new(cap);
            for i in 0..cap {
                slow.insert(BlockId(i));
            }
            assert_eq!(fast, slow, "capacity {cap}");
            assert_eq!(fast.count(), cap);
            assert!(cap == 0 || fast.is_full());
            assert!(fast.iter_missing().next().is_none());
            // No stray bits above the capacity: removing an out-of-range id
            // is a no-op and the word-level count stays exact.
            let popcount: u32 = fast.words().iter().map(|w| w.count_ones()).sum();
            assert_eq!(popcount, cap, "capacity {cap} has stray high bits");
        }
    }

    #[test]
    fn and_not_iter_matches_difference() {
        let mut a = BlockBitmap::new(300);
        let mut b = BlockBitmap::new(300);
        for i in (0..300).step_by(3) {
            a.insert(BlockId(i));
        }
        for i in (0..300).step_by(5) {
            b.insert(BlockId(i));
        }
        let fast: Vec<BlockId> = a.and_not_iter(&b).collect();
        let slow: Vec<BlockId> = a.iter().filter(|id| !b.contains(*id)).collect();
        assert_eq!(fast, slow);
        assert_eq!(fast.len() as u32, a.difference_count(&b));
    }

    #[test]
    fn and_not_iter_tolerates_capacity_mismatch() {
        let mut a = BlockBitmap::new(130);
        a.insert(BlockId(0));
        a.insert(BlockId(129));
        let b = BlockBitmap::new(10); // shorter word vector: missing words = 0
        let got: Vec<u32> = a.and_not_iter(&b).map(|id| id.0).collect();
        assert_eq!(got, vec![0, 129]);
    }

    #[test]
    fn first_missing_in_scans_words() {
        let mut bm = BlockBitmap::new(200);
        for i in 0..150 {
            bm.insert(BlockId(i));
        }
        bm.remove(BlockId(70));
        assert_eq!(bm.first_missing_in(0, 200), Some(BlockId(70)));
        assert_eq!(bm.first_missing_in(71, 200), Some(BlockId(150)));
        assert_eq!(bm.first_missing_in(71, 150), None);
        assert_eq!(bm.first_missing_in(0, 70), None);
        assert_eq!(bm.first_missing_in(70, 71), Some(BlockId(70)));
        // The range clamps to the capacity and empty ranges yield nothing.
        assert_eq!(bm.first_missing_in(199, 10_000), Some(BlockId(199)));
        assert_eq!(bm.first_missing_in(60, 60), None);
        assert_eq!(BlockBitmap::full(64).first_missing_in(0, 64), None);
    }

    #[test]
    fn union_into_accumulates() {
        let mut acc = BlockBitmap::new(70);
        let mut a = BlockBitmap::new(70);
        let mut b = BlockBitmap::new(70);
        a.insert(BlockId(3));
        b.insert(BlockId(68));
        b.insert(BlockId(3));
        a.union_into(&mut acc);
        b.union_into(&mut acc);
        assert_eq!(acc.count(), 2);
        assert!(acc.contains(BlockId(3)) && acc.contains(BlockId(68)));
    }

    #[test]
    fn iter_yields_sorted_present_blocks() {
        let mut bm = BlockBitmap::new(200);
        for id in [5u32, 1, 190, 64, 65] {
            bm.insert(BlockId(id));
        }
        let got: Vec<u32> = bm.iter().map(|b| b.0).collect();
        assert_eq!(got, vec![1, 5, 64, 65, 190]);
    }

    #[test]
    fn difference_and_counts_agree() {
        let mut a = BlockBitmap::new(128);
        let mut b = BlockBitmap::new(128);
        for i in 0..50 {
            a.insert(BlockId(i));
        }
        for i in 25..80 {
            b.insert(BlockId(i));
        }
        let diff = a.difference(&b);
        assert_eq!(diff.len(), 25);
        assert_eq!(a.difference_count(&b), 25);
        assert_eq!(b.difference_count(&a), 30);
    }

    #[test]
    fn union_matches_manual() {
        let mut a = BlockBitmap::new(70);
        let mut b = BlockBitmap::new(70);
        a.insert(BlockId(3));
        b.insert(BlockId(68));
        b.insert(BlockId(3));
        a.union_with(&b);
        assert_eq!(a.count(), 2);
        assert!(a.contains(BlockId(68)));
    }

    #[test]
    fn out_of_range_contains_is_false() {
        let bm = BlockBitmap::new(10);
        assert!(!bm.contains(BlockId(10)));
        assert!(!bm.contains(BlockId(1000)));
    }

    #[test]
    fn iter_missing_complements_iter() {
        let mut bm = BlockBitmap::new(33);
        bm.insert(BlockId(0));
        bm.insert(BlockId(32));
        let missing: Vec<u32> = bm.iter_missing().map(|b| b.0).collect();
        assert_eq!(missing.len(), 31);
        assert!(!missing.contains(&0));
        assert!(!missing.contains(&32));
    }
}
