//! LT-style rateless erasure codes (paper §2.2, §4.6).
//!
//! The paper implemented the publicly specified rateless codes of
//! Maymounkov–Mazières to study *source encoding*: the source emits an
//! unbounded stream of encoded blocks, and any `(1 + ε)·n` correctly received
//! distinct blocks reconstruct the original `n` blocks, removing the
//! "last-block" problem. This module provides a working encoder and peeling
//! decoder so the reproduction can measure the reception overhead (the paper
//! observed ≈4%), the decode-progress curve (only ~30% of the file is
//! recoverable after receiving `n` blocks), and the sensitivity to degree-1
//! blocks.

use rand::seq::index::sample as index_sample;
use rand::Rng;
use rand::SeedableRng;

use crate::soliton::RobustSoliton;

/// An encoded block: the XOR of `sources` original blocks.
#[derive(Debug, Clone)]
pub struct EncodedBlock {
    /// Sequence number assigned by the encoder (unique per stream).
    pub seq: u64,
    /// Indices of the source blocks XOR-ed into this block.
    pub sources: Vec<u32>,
    /// XOR-ed payload, `block_size` bytes.
    pub payload: Vec<u8>,
}

impl EncodedBlock {
    /// Degree of the block (number of source blocks combined).
    pub fn degree(&self) -> usize {
        self.sources.len()
    }
}

/// Streaming LT encoder over an in-memory file.
#[derive(Debug)]
pub struct LtEncoder {
    blocks: Vec<Vec<u8>>,
    dist: RobustSoliton,
    rng: rand::rngs::StdRng,
    next_seq: u64,
}

impl LtEncoder {
    /// Creates an encoder over `data`, split into `block_size`-byte source
    /// blocks (the final block is zero-padded).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or `block_size` is zero.
    pub fn new(data: &[u8], block_size: usize, seed: u64) -> Self {
        assert!(!data.is_empty(), "cannot encode an empty file");
        assert!(block_size > 0, "block size must be positive");
        let mut blocks: Vec<Vec<u8>> = data.chunks(block_size).map(|c| c.to_vec()).collect();
        for b in &mut blocks {
            b.resize(block_size, 0);
        }
        let k = blocks.len() as u32;
        LtEncoder {
            blocks,
            dist: RobustSoliton::new(k, 0.05, 0.05),
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            next_seq: 0,
        }
    }

    /// Number of source blocks `k`.
    pub fn num_source_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Size of each (padded) source block.
    pub fn block_size(&self) -> usize {
        self.blocks[0].len()
    }

    /// Produces the next encoded block in the stream.
    pub fn next_block(&mut self) -> EncodedBlock {
        let k = self.blocks.len();
        let degree = self.dist.sample(&mut self.rng) as usize;
        let degree = degree.min(k);
        let mut sources: Vec<u32> = index_sample(&mut self.rng, k, degree)
            .into_iter()
            .map(|i| i as u32)
            .collect();
        sources.sort_unstable();
        let mut payload = vec![0u8; self.block_size()];
        for &s in &sources {
            xor_into(&mut payload, &self.blocks[s as usize]);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        EncodedBlock {
            seq,
            sources,
            payload,
        }
    }

    /// Produces a degree-1 (systematic) encoded block for a specific source
    /// index. The source uses a sprinkling of these to seed the decoder.
    pub fn systematic_block(&mut self, source: u32) -> EncodedBlock {
        let seq = self.next_seq;
        self.next_seq += 1;
        EncodedBlock {
            seq,
            sources: vec![source],
            payload: self.blocks[source as usize].clone(),
        }
    }
}

/// Incremental peeling (belief-propagation) decoder.
#[derive(Debug)]
pub struct LtDecoder {
    k: u32,
    block_size: usize,
    /// Recovered source blocks.
    recovered: Vec<Option<Vec<u8>>>,
    recovered_count: u32,
    /// Buffered encoded blocks that still reference >= 2 unknown sources.
    pending: Vec<PendingBlock>,
    received: u64,
}

#[derive(Debug)]
struct PendingBlock {
    remaining: Vec<u32>,
    payload: Vec<u8>,
}

impl LtDecoder {
    /// Creates a decoder expecting `k` source blocks of `block_size` bytes.
    pub fn new(k: u32, block_size: usize) -> Self {
        assert!(k > 0 && block_size > 0);
        LtDecoder {
            k,
            block_size,
            recovered: vec![None; k as usize],
            recovered_count: 0,
            pending: Vec::new(),
            received: 0,
        }
    }

    /// Number of encoded blocks fed to the decoder so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Number of source blocks recovered so far.
    pub fn recovered_count(&self) -> u32 {
        self.recovered_count
    }

    /// Fraction of the file recovered so far, in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        f64::from(self.recovered_count) / f64::from(self.k)
    }

    /// Returns true once every source block has been recovered.
    pub fn is_complete(&self) -> bool {
        self.recovered_count == self.k
    }

    /// Feeds one encoded block. Returns the number of source blocks newly
    /// recovered as a consequence (possibly zero).
    pub fn push(&mut self, block: &EncodedBlock) -> u32 {
        self.received += 1;
        let before = self.recovered_count;

        // Reduce the incoming block by already-recovered sources.
        let mut remaining = Vec::with_capacity(block.sources.len());
        let mut payload = block.payload.clone();
        payload.resize(self.block_size, 0);
        for &s in &block.sources {
            debug_assert!(s < self.k, "source index out of range");
            match &self.recovered[s as usize] {
                Some(known) => xor_into(&mut payload, known),
                None => remaining.push(s),
            }
        }

        match remaining.len() {
            0 => {} // Redundant block; nothing new.
            1 => self.recover(remaining[0], payload),
            _ => self.pending.push(PendingBlock { remaining, payload }),
        }
        self.recovered_count - before
    }

    /// Records `source` as recovered and propagates through the pending set
    /// (the "ripple").
    fn recover(&mut self, source: u32, payload: Vec<u8>) {
        let mut ripple = vec![(source, payload)];
        while let Some((s, data)) = ripple.pop() {
            let slot = &mut self.recovered[s as usize];
            if slot.is_some() {
                continue;
            }
            *slot = Some(data);
            self.recovered_count += 1;

            // Subtract the newly recovered block from every pending block that
            // references it; any block dropping to degree 1 joins the ripple.
            let mut i = 0;
            while i < self.pending.len() {
                let refers = self.pending[i].remaining.contains(&s);
                if refers {
                    let known = self.recovered[s as usize]
                        .as_ref()
                        .expect("just recovered")
                        .clone();
                    let pb = &mut self.pending[i];
                    xor_into(&mut pb.payload, &known);
                    pb.remaining.retain(|&x| x != s);
                    if pb.remaining.len() <= 1 {
                        let pb = self.pending.swap_remove(i);
                        if let [last] = pb.remaining[..] {
                            if self.recovered[last as usize].is_none() {
                                ripple.push((last, pb.payload));
                            }
                        }
                        continue; // Do not advance `i`: swap_remove moved an entry in.
                    }
                }
                i += 1;
            }
        }
    }

    /// Reassembles the decoded file, truncated to `file_len` bytes.
    ///
    /// Returns `None` until decoding is complete.
    pub fn assemble(&self, file_len: usize) -> Option<Vec<u8>> {
        if !self.is_complete() {
            return None;
        }
        let mut out = Vec::with_capacity(self.k as usize * self.block_size);
        for b in &self.recovered {
            out.extend_from_slice(b.as_ref().expect("complete decoder has all blocks"));
        }
        out.truncate(file_len);
        Some(out)
    }
}

fn xor_into(dst: &mut [u8], src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

/// Measures the reception overhead of the code for a `k`-block file: encodes
/// a random file, feeds encoded blocks to a decoder until completion, and
/// returns `(received_blocks / k) - 1`.
pub fn measure_reception_overhead(k: u32, block_size: usize, seed: u64) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xDEC0DE);
    let data: Vec<u8> = (0..k as usize * block_size).map(|_| rng.gen()).collect();
    let mut enc = LtEncoder::new(&data, block_size, seed);
    let mut dec = LtDecoder::new(k, block_size);
    // Safety valve: a correct implementation finishes well before 3k blocks.
    for _ in 0..3 * k as u64 + 100 {
        let b = enc.next_block();
        dec.push(&b);
        if dec.is_complete() {
            break;
        }
    }
    assert!(
        dec.is_complete(),
        "decoder failed to complete within 3k blocks"
    );
    dec.received() as f64 / f64::from(k) - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_file() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        let mut enc = LtEncoder::new(&data, 256, 42);
        let mut dec = LtDecoder::new(enc.num_source_blocks(), 256);
        while !dec.is_complete() {
            let b = enc.next_block();
            dec.push(&b);
        }
        assert_eq!(dec.assemble(data.len()).unwrap(), data);
    }

    #[test]
    fn systematic_blocks_decode_immediately() {
        let data = vec![7u8; 1024];
        let mut enc = LtEncoder::new(&data, 128, 1);
        let k = enc.num_source_blocks();
        let mut dec = LtDecoder::new(k, 128);
        for i in 0..k {
            dec.push(&enc.systematic_block(i));
        }
        assert!(dec.is_complete());
        assert_eq!(dec.received(), u64::from(k));
        assert_eq!(dec.assemble(data.len()).unwrap(), data);
    }

    #[test]
    fn progress_is_partial_at_k_received_blocks() {
        // The paper (§2.2) notes that with n received encoded blocks only a
        // fraction (~30%) of the file is reconstructable; verify progress is
        // substantially below 1.0 at exactly k received blocks.
        let k = 500u32;
        let block = 64usize;
        let data: Vec<u8> = (0..k as usize * block)
            .map(|i| (i * 31 % 255) as u8)
            .collect();
        let mut enc = LtEncoder::new(&data, block, 9);
        let mut dec = LtDecoder::new(k, block);
        for _ in 0..k {
            dec.push(&enc.next_block());
        }
        assert!(
            dec.progress() < 0.9,
            "progress at k received blocks should be partial, got {}",
            dec.progress()
        );
        assert!(!dec.is_complete());
    }

    #[test]
    fn reception_overhead_is_a_few_percent() {
        let overhead = measure_reception_overhead(1000, 32, 7);
        assert!(
            (0.0..0.35).contains(&overhead),
            "overhead {overhead} out of plausible range"
        );
    }

    #[test]
    fn duplicate_blocks_are_harmless() {
        let data = vec![3u8; 4096];
        let mut enc = LtEncoder::new(&data, 64, 5);
        let mut dec = LtDecoder::new(enc.num_source_blocks(), 64);
        let b = enc.next_block();
        dec.push(&b);
        let before = dec.recovered_count();
        dec.push(&b);
        assert_eq!(dec.recovered_count(), before);
        while !dec.is_complete() {
            let b = enc.next_block();
            dec.push(&b);
        }
        assert_eq!(dec.assemble(data.len()).unwrap(), data);
    }

    #[test]
    fn short_final_block_is_padded_and_truncated() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let mut enc = LtEncoder::new(&data, 300, 3);
        assert_eq!(enc.num_source_blocks(), 4);
        let mut dec = LtDecoder::new(4, 300);
        while !dec.is_complete() {
            dec.push(&enc.next_block());
        }
        assert_eq!(dec.assemble(data.len()).unwrap(), data);
    }
}
