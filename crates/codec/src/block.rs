//! The file/block model shared by every dissemination protocol in the
//! workspace.
//!
//! Throughout the paper the source transmits the file as a sequence of
//! fixed-size *blocks*, the smallest transfer unit (16 KB in the ModelNet
//! experiments, 100 KB on PlanetLab, 8 KB in the flow-control study). A
//! [`FileSpec`] captures the file size and block size and provides the
//! derived quantities the protocols need.

use serde::{Deserialize, Serialize};

/// Identifier of a block within a file: its index in `0..num_blocks` for the
/// unencoded mode, or the encoding sequence number in the encoded mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// Describes the object being disseminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileSpec {
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Transfer-unit size in bytes.
    pub block_bytes: u32,
}

impl FileSpec {
    /// Creates a spec, panicking on a zero block size or zero file size.
    pub fn new(file_bytes: u64, block_bytes: u32) -> Self {
        assert!(file_bytes > 0, "file must be non-empty");
        assert!(block_bytes > 0, "block size must be non-zero");
        FileSpec {
            file_bytes,
            block_bytes,
        }
    }

    /// Convenience constructor from megabytes / kilobytes, matching how the
    /// paper states its workloads (e.g. "100 MB file, 16 KB blocks").
    pub fn from_mb_kb(file_mb: u64, block_kb: u32) -> Self {
        FileSpec::new(file_mb * 1024 * 1024, block_kb * 1024)
    }

    /// Number of blocks, rounding the final partial block up.
    pub fn num_blocks(&self) -> u32 {
        self.file_bytes.div_ceil(u64::from(self.block_bytes)) as u32
    }

    /// Size of block `id` in bytes (the final block may be short).
    pub fn block_size(&self, id: BlockId) -> u32 {
        let n = self.num_blocks();
        assert!(id.0 < n, "block {id} out of range (file has {n} blocks)");
        if id.0 + 1 == n {
            let rem = self.file_bytes - u64::from(self.block_bytes) * u64::from(n - 1);
            rem as u32
        } else {
            self.block_bytes
        }
    }

    /// Iterator over all block ids in index order.
    pub fn blocks(&self) -> impl Iterator<Item = BlockId> {
        (0..self.num_blocks()).map(BlockId)
    }

    /// Number of distinct blocks a receiver must collect to declare the
    /// download complete when the source encodes the stream with a rateless
    /// code of reception overhead `epsilon` (the paper uses a fixed 4%).
    ///
    /// In unencoded mode pass `epsilon = 0.0`.
    pub fn completion_target(&self, epsilon: f64) -> u32 {
        let n = f64::from(self.num_blocks());
        (n * (1.0 + epsilon.max(0.0))).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_counts_round_up() {
        let spec = FileSpec::new(100, 30);
        assert_eq!(spec.num_blocks(), 4);
        assert_eq!(spec.block_size(BlockId(0)), 30);
        assert_eq!(spec.block_size(BlockId(3)), 10);
    }

    #[test]
    fn exact_multiple_has_full_last_block() {
        let spec = FileSpec::new(90, 30);
        assert_eq!(spec.num_blocks(), 3);
        assert_eq!(spec.block_size(BlockId(2)), 30);
    }

    #[test]
    fn paper_workload_sizes() {
        // 100 MB file with 16 KB blocks: 6400 blocks (paper Fig 13 x-axis).
        let spec = FileSpec::from_mb_kb(100, 16);
        assert_eq!(spec.num_blocks(), 6400);
        // 50 MB file with 100 KB blocks: 512 blocks (PlanetLab experiment).
        let spec = FileSpec::from_mb_kb(50, 100);
        assert_eq!(spec.num_blocks(), 512);
    }

    #[test]
    fn completion_target_applies_overhead() {
        let spec = FileSpec::from_mb_kb(10, 16);
        assert_eq!(spec.completion_target(0.0), spec.num_blocks());
        assert_eq!(
            spec.completion_target(0.04),
            (f64::from(spec.num_blocks()) * 1.04).ceil() as u32
        );
        // Negative overhead is clamped.
        assert_eq!(spec.completion_target(-1.0), spec.num_blocks());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_block_panics() {
        FileSpec::new(100, 30).block_size(BlockId(4));
    }

    #[test]
    fn blocks_iterator_covers_file() {
        let spec = FileSpec::new(1000, 64);
        let total: u64 = spec.blocks().map(|b| u64::from(spec.block_size(b))).sum();
        assert_eq!(total, spec.file_bytes);
    }
}
