//! In-memory file content and reassembly.
//!
//! The emulated experiments only need block *identities* and *sizes*, but the
//! examples, the Shotgun tool and the integrity tests operate on real bytes.
//! [`FileData`] provides deterministic synthetic content plus block slicing
//! and reassembly with integrity checking.

use rand::Rng;
use rand::SeedableRng;

use crate::block::{BlockId, FileSpec};

/// A file held in memory together with its block layout.
#[derive(Debug, Clone)]
pub struct FileData {
    spec: FileSpec,
    bytes: Vec<u8>,
}

impl FileData {
    /// Wraps existing content, deriving the block layout from `block_bytes`.
    pub fn from_bytes(bytes: Vec<u8>, block_bytes: u32) -> Self {
        let spec = FileSpec::new(bytes.len() as u64, block_bytes);
        FileData { spec, bytes }
    }

    /// Generates deterministic pseudo-random content for `spec` from `seed`.
    pub fn synthetic(spec: FileSpec, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let bytes: Vec<u8> = (0..spec.file_bytes).map(|_| rng.gen()).collect();
        FileData { spec, bytes }
    }

    /// The block layout.
    pub fn spec(&self) -> FileSpec {
        self.spec
    }

    /// The full content.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The content of block `id`.
    pub fn block(&self, id: BlockId) -> &[u8] {
        let start = id.index() * self.spec.block_bytes as usize;
        let end = start + self.spec.block_size(id) as usize;
        &self.bytes[start..end]
    }

    /// A 64-bit FNV-1a digest of the whole file, used by tests and by Shotgun
    /// to verify reassembly.
    pub fn digest(&self) -> u64 {
        fnv1a(&self.bytes)
    }
}

/// Reassembles a file from blocks received out of order and verifies its
/// completeness.
#[derive(Debug, Clone)]
pub struct FileAssembler {
    spec: FileSpec,
    bytes: Vec<u8>,
    present: Vec<bool>,
    missing: u32,
}

impl FileAssembler {
    /// Creates an assembler for `spec` with no blocks yet.
    pub fn new(spec: FileSpec) -> Self {
        FileAssembler {
            spec,
            bytes: vec![0; spec.file_bytes as usize],
            present: vec![false; spec.num_blocks() as usize],
            missing: spec.num_blocks(),
        }
    }

    /// Stores block `id`; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if the payload length does not match the block's expected size.
    pub fn put(&mut self, id: BlockId, payload: &[u8]) -> bool {
        let expected = self.spec.block_size(id) as usize;
        assert_eq!(payload.len(), expected, "block {id} has wrong length");
        if self.present[id.index()] {
            return false;
        }
        let start = id.index() * self.spec.block_bytes as usize;
        self.bytes[start..start + expected].copy_from_slice(payload);
        self.present[id.index()] = true;
        self.missing -= 1;
        true
    }

    /// Number of blocks still missing.
    pub fn missing(&self) -> u32 {
        self.missing
    }

    /// Returns true when every block has been stored.
    pub fn is_complete(&self) -> bool {
        self.missing == 0
    }

    /// Returns the reassembled file once complete.
    pub fn into_file(self) -> Option<FileData> {
        if self.is_complete() {
            Some(FileData {
                spec: self.spec,
                bytes: self.bytes,
            })
        } else {
            None
        }
    }
}

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_content_is_deterministic() {
        let spec = FileSpec::new(10_000, 1024);
        let a = FileData::synthetic(spec, 5);
        let b = FileData::synthetic(spec, 5);
        let c = FileData::synthetic(spec, 6);
        assert_eq!(a.digest(), b.digest());
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn block_slicing_covers_file() {
        let spec = FileSpec::new(10_000, 1024);
        let f = FileData::synthetic(spec, 1);
        let total: usize = spec.blocks().map(|b| f.block(b).len()).sum();
        assert_eq!(total, 10_000);
        assert_eq!(f.block(BlockId(9)).len(), 10_000 - 9 * 1024);
    }

    #[test]
    fn assembler_round_trips_out_of_order() {
        let spec = FileSpec::new(5_000, 512);
        let f = FileData::synthetic(spec, 2);
        let mut asm = FileAssembler::new(spec);
        let mut ids: Vec<BlockId> = spec.blocks().collect();
        ids.reverse();
        for id in ids {
            assert!(asm.put(id, f.block(id)));
        }
        assert!(asm.is_complete());
        let rebuilt = asm.into_file().unwrap();
        assert_eq!(rebuilt.digest(), f.digest());
        assert_eq!(rebuilt.bytes(), f.bytes());
    }

    #[test]
    fn duplicate_put_is_ignored() {
        let spec = FileSpec::new(2048, 1024);
        let f = FileData::synthetic(spec, 3);
        let mut asm = FileAssembler::new(spec);
        assert!(asm.put(BlockId(0), f.block(BlockId(0))));
        assert!(!asm.put(BlockId(0), f.block(BlockId(0))));
        assert_eq!(asm.missing(), 1);
        assert!(asm.into_file().is_none());
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn wrong_length_panics() {
        let spec = FileSpec::new(2048, 1024);
        let mut asm = FileAssembler::new(spec);
        asm.put(BlockId(0), &[0u8; 100]);
    }
}
