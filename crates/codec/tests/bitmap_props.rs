//! Property tests for the word-level `BlockBitmap` bulk operations.
//!
//! Every bulk op (union, and-not difference, first-missing scan, word-filled
//! `full()`) is checked against the obvious per-bit reference on random
//! bitmaps, with capacities ranging from sub-word to the 10⁵-block scale the
//! fig20 swarm scenarios use. The references are deliberately naive — the
//! point is that the word-granular implementations agree bit for bit.

use dissem_codec::{BlockBitmap, BlockId};
use proptest::prelude::*;

/// Builds a bitmap of `capacity` whose members are chosen by `picks`
/// (indices taken modulo the capacity, so any u32 vector is a valid case).
fn bitmap_from(capacity: u32, picks: &[u32]) -> BlockBitmap {
    let mut bm = BlockBitmap::new(capacity);
    if capacity > 0 {
        for &p in picks {
            bm.insert(BlockId(p % capacity));
        }
    }
    bm
}

proptest! {
    #[test]
    fn full_equals_per_bit_insertion(capacity in 0u32..100_000) {
        let fast = BlockBitmap::full(capacity);
        let mut slow = BlockBitmap::new(capacity);
        for i in 0..capacity {
            slow.insert(BlockId(i));
        }
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(fast.count(), capacity);
    }

    #[test]
    fn union_with_matches_per_bit_merge(
        capacity in 1u32..100_000,
        a in proptest::collection::vec(any::<u32>(), 0..200),
        b in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let bm_a = bitmap_from(capacity, &a);
        let bm_b = bitmap_from(capacity, &b);
        let mut fast = bm_a.clone();
        fast.union_with(&bm_b);
        let mut acc = BlockBitmap::new(capacity);
        bm_a.union_into(&mut acc);
        bm_b.union_into(&mut acc);
        let mut slow = bm_a.clone();
        for id in bm_b.iter() {
            slow.insert(id);
        }
        prop_assert_eq!(&fast, &slow);
        prop_assert_eq!(&acc, &slow);
    }

    #[test]
    fn and_not_matches_per_bit_difference(
        capacity in 1u32..100_000,
        other_capacity in 1u32..100_000,
        a in proptest::collection::vec(any::<u32>(), 0..200),
        b in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        // Different capacities on purpose: the diff tracker subtracts a
        // lazily grown "advertised" bitmap from a fixed-capacity "have".
        let bm_a = bitmap_from(capacity, &a);
        let bm_b = bitmap_from(other_capacity, &b);
        let fast: Vec<BlockId> = bm_a.and_not_iter(&bm_b).collect();
        let slow: Vec<BlockId> = bm_a.iter().filter(|&id| !bm_b.contains(id)).collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn first_missing_matches_linear_scan(
        capacity in 1u32..100_000,
        picks in proptest::collection::vec(any::<u32>(), 0..300),
        lo in 0u32..110_000,
        hi in 0u32..110_000,
    ) {
        let bm = bitmap_from(capacity, &picks);
        let fast = bm.first_missing_in(lo, hi);
        let slow = (lo..hi.min(capacity))
            .map(BlockId)
            .find(|&id| !bm.contains(id));
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn iter_missing_complements_iter_on_random_bitmaps(
        capacity in 1u32..100_000,
        picks in proptest::collection::vec(any::<u32>(), 0..200),
    ) {
        let bm = bitmap_from(capacity, &picks);
        let missing: Vec<BlockId> = bm.iter_missing().collect();
        let slow: Vec<BlockId> = (0..capacity)
            .map(BlockId)
            .filter(|&id| !bm.contains(id))
            .collect();
        prop_assert_eq!(missing, slow);
    }
}
