//! The overlay control tree.
//!
//! Bullet′ (like Bullet before it) joins every participant into a simple
//! random tree rooted at the source. The tree carries only *control*
//! traffic — RanSub collect/distribute waves — plus the source's block pushes
//! to its direct children; the high-volume data mesh is layered on top of it
//! by the peering strategy.

use desim::RngFactory;
use netsim::NodeId;
use rand::seq::SliceRandom;

/// An overlay tree over a contiguous id range `base..base + n`, rooted at
/// `base` (the source). Trees built with [`ControlTree::random`] or
/// [`ControlTree::from_parents`] cover `0..n`; [`ControlTree::random_rooted`]
/// places the tree anywhere in a larger topology, so several independent
/// meshes can coexist in one emulation (the shared-bottleneck scenarios).
#[derive(Debug, Clone)]
pub struct ControlTree {
    /// First (root) node id of the member range.
    base: u32,
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl ControlTree {
    /// Builds a random tree over `n` nodes with at most `max_degree` children
    /// per node, rooted at node 0.
    ///
    /// Nodes join in a random order and each picks a uniformly random parent
    /// among the already-joined nodes that still have a free child slot,
    /// mirroring the "random tree" join procedure of the MACEDON toolkit.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `max_degree == 0`.
    pub fn random(n: usize, max_degree: usize, rng: &RngFactory) -> Self {
        Self::random_over(rng.stream("overlay.tree"), 0, n, max_degree)
    }

    /// Builds a random tree over the id range `base.0..base.0 + n`, rooted at
    /// `base`: the multi-mesh variant of [`ControlTree::random`]. Each mesh
    /// of one emulation gets its own RNG stream (indexed by the base id), so
    /// concurrent meshes are independently — and reproducibly — shaped.
    ///
    /// ```
    /// use desim::RngFactory;
    /// use netsim::NodeId;
    /// use overlay::ControlTree;
    ///
    /// // Two meshes of 8 nodes each in one 16-node emulation.
    /// let rng = RngFactory::new(1);
    /// let a = ControlTree::random_rooted(NodeId(0), 8, 4, &rng);
    /// let b = ControlTree::random_rooted(NodeId(8), 8, 4, &rng);
    /// assert_eq!(a.root(), NodeId(0));
    /// assert_eq!(b.root(), NodeId(8));
    /// assert!(b.members().all(|m| !a.contains(m)));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `max_degree == 0`.
    pub fn random_rooted(base: NodeId, n: usize, max_degree: usize, rng: &RngFactory) -> Self {
        Self::random_over(
            rng.stream_indexed("overlay.tree", u64::from(base.0)),
            base.0,
            n,
            max_degree,
        )
    }

    fn random_over(mut rng: impl rand::Rng, base: u32, n: usize, max_degree: usize) -> Self {
        assert!(n >= 2, "a control tree needs at least two nodes");
        assert!(max_degree >= 1, "max_degree must be at least 1");
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];

        // Join order: receivers in random order (ids relative to the base).
        let mut order: Vec<u32> = (1..n as u32).collect();
        order.shuffle(&mut rng);

        // Candidates with a free slot.
        let mut open: Vec<u32> = vec![0];
        for node in order {
            // Pick a random open node as parent.
            let pick = *open
                .as_slice()
                .choose(&mut rng)
                .expect("there is always at least one open node");
            parent[node as usize] = Some(NodeId(base + pick));
            children[pick as usize].push(NodeId(base + node));
            if children[pick as usize].len() >= max_degree {
                open.retain(|&x| x != pick);
            }
            open.push(node);
        }
        ControlTree {
            base,
            parent,
            children,
        }
    }

    /// Builds an explicit tree from a parent table (index 0 must be the root).
    ///
    /// # Panics
    ///
    /// Panics if node 0 has a parent, another node lacks one, or the edges do
    /// not form a tree reaching every node.
    pub fn from_parents(parents: Vec<Option<NodeId>>) -> Self {
        let n = parents.len();
        assert!(n >= 2);
        assert!(parents[0].is_none(), "the root must not have a parent");
        let mut children = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate() {
            if i == 0 {
                continue;
            }
            let p = p.unwrap_or_else(|| panic!("node {i} has no parent"));
            children[p.index()].push(NodeId(i as u32));
        }
        let tree = ControlTree {
            base: 0,
            parent: parents,
            children,
        };
        // Validate connectivity.
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        while let Some(x) = stack.pop() {
            if std::mem::replace(&mut seen[x.index()], true) {
                panic!("cycle detected in control tree");
            }
            stack.extend(tree.children(x).iter().copied());
        }
        assert!(
            seen.iter().all(|&s| s),
            "control tree does not reach every node"
        );
        tree
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns true if the tree is empty (never for constructed trees).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root (the first id of the member range; the source).
    pub fn root(&self) -> NodeId {
        NodeId(self.base)
    }

    /// Returns true if `node` lies in this tree's member range.
    pub fn contains(&self, node: NodeId) -> bool {
        node.0 >= self.base && ((node.0 - self.base) as usize) < self.parent.len()
    }

    /// Index of `node` into the member tables.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a member of this tree.
    fn idx(&self, node: NodeId) -> usize {
        assert!(self.contains(node), "{node} is not a member of this tree");
        (node.0 - self.base) as usize
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[self.idx(node)]
    }

    /// Children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[self.idx(node)]
    }

    /// Returns true if `node` has no children.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children[self.idx(node)].is_empty()
    }

    /// Number of nodes in the subtree rooted at `node` (including itself).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        1 + self
            .children(node)
            .iter()
            .map(|&c| self.subtree_size(c))
            .sum::<usize>()
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum depth over all nodes.
    pub fn height(&self) -> usize {
        (0..self.len() as u32)
            .map(|i| self.depth(NodeId(self.base + i)))
            .max()
            .unwrap_or(0)
    }

    /// Iterator over the member node ids, root first.
    pub fn members(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len() as u32).map(|i| NodeId(self.base + i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tree_is_connected_and_respects_degree() {
        let rng = RngFactory::new(17);
        let tree = ControlTree::random(100, 4, &rng);
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.subtree_size(tree.root()), 100);
        for i in 0..100u32 {
            assert!(tree.children(NodeId(i)).len() <= 4);
            if i != 0 {
                assert!(tree.parent(NodeId(i)).is_some());
            }
        }
        assert!(tree.parent(NodeId(0)).is_none());
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let a = ControlTree::random(50, 6, &RngFactory::new(1));
        let b = ControlTree::random(50, 6, &RngFactory::new(1));
        let c = ControlTree::random(50, 6, &RngFactory::new(2));
        for i in 0..50u32 {
            assert_eq!(a.parent(NodeId(i)), b.parent(NodeId(i)));
        }
        assert!((0..50u32).any(|i| a.parent(NodeId(i)) != c.parent(NodeId(i))));
    }

    #[test]
    fn depth_and_height_consistent() {
        let tree = ControlTree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(3)),
        ]);
        assert_eq!(tree.depth(NodeId(0)), 0);
        assert_eq!(tree.depth(NodeId(4)), 3);
        assert_eq!(tree.height(), 3);
        assert!(tree.is_leaf(NodeId(4)));
        assert!(!tree.is_leaf(NodeId(1)));
        assert_eq!(tree.subtree_size(NodeId(1)), 3);
    }

    #[test]
    fn rooted_tree_spans_its_member_range_only() {
        let rng = RngFactory::new(21);
        let tree = ControlTree::random_rooted(NodeId(32), 32, 4, &rng);
        assert_eq!(tree.len(), 32);
        assert_eq!(tree.root(), NodeId(32));
        assert!(tree.parent(NodeId(32)).is_none());
        assert_eq!(tree.subtree_size(tree.root()), 32);
        for node in tree.members() {
            assert!(tree.contains(node));
            assert!(node.0 >= 32 && node.0 < 64);
            for &c in tree.children(node) {
                assert!(c.0 >= 32 && c.0 < 64, "children stay in range");
            }
            if node != tree.root() {
                let p = tree.parent(node).expect("non-root has a parent");
                assert!(p.0 >= 32 && p.0 < 64, "parents stay in range");
            }
        }
        assert!(!tree.contains(NodeId(0)));
        assert!(!tree.contains(NodeId(64)));
        // Trees at different bases are shaped independently (distinct RNG
        // streams), and deterministically per base.
        let a = ControlTree::random_rooted(NodeId(0), 32, 4, &RngFactory::new(21));
        let again = ControlTree::random_rooted(NodeId(32), 32, 4, &RngFactory::new(21));
        assert!(
            (0..32u32).any(|i| {
                a.parent(NodeId(i)).map(|p| p.0) != tree.parent(NodeId(32 + i)).map(|p| p.0 - 32)
            }),
            "different bases should draw different shapes"
        );
        for node in tree.members() {
            assert_eq!(tree.parent(node), again.parent(node));
        }
    }

    #[test]
    #[should_panic(expected = "not a member of this tree")]
    fn out_of_range_lookup_rejected() {
        let tree = ControlTree::random_rooted(NodeId(10), 4, 2, &RngFactory::new(3));
        tree.parent(NodeId(2));
    }

    #[test]
    fn degree_one_tree_is_a_chain() {
        let tree = ControlTree::random(10, 1, &RngFactory::new(9));
        assert_eq!(tree.height(), 9);
        for i in 0..10u32 {
            assert!(tree.children(NodeId(i)).len() <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "does not reach every node")]
    fn disconnected_tree_rejected() {
        ControlTree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(3)),
            Some(NodeId(2)),
        ]);
    }
}
