//! The overlay control tree.
//!
//! Bullet′ (like Bullet before it) joins every participant into a simple
//! random tree rooted at the source. The tree carries only *control*
//! traffic — RanSub collect/distribute waves — plus the source's block pushes
//! to its direct children; the high-volume data mesh is layered on top of it
//! by the peering strategy.

use desim::RngFactory;
use netsim::NodeId;
use rand::seq::SliceRandom;

/// An overlay tree over nodes `0..n`, rooted at node 0 (the source).
#[derive(Debug, Clone)]
pub struct ControlTree {
    parent: Vec<Option<NodeId>>,
    children: Vec<Vec<NodeId>>,
}

impl ControlTree {
    /// Builds a random tree over `n` nodes with at most `max_degree` children
    /// per node, rooted at node 0.
    ///
    /// Nodes join in a random order and each picks a uniformly random parent
    /// among the already-joined nodes that still have a free child slot,
    /// mirroring the "random tree" join procedure of the MACEDON toolkit.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `max_degree == 0`.
    pub fn random(n: usize, max_degree: usize, rng: &RngFactory) -> Self {
        assert!(n >= 2, "a control tree needs at least two nodes");
        assert!(max_degree >= 1, "max_degree must be at least 1");
        let mut rng = rng.stream("overlay.tree");
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];

        // Join order: receivers in random order.
        let mut order: Vec<u32> = (1..n as u32).collect();
        order.shuffle(&mut rng);

        // Candidates with a free slot.
        let mut open: Vec<u32> = vec![0];
        for node in order {
            // Pick a random open node as parent.
            let pick = *open
                .as_slice()
                .choose(&mut rng)
                .expect("there is always at least one open node");
            parent[node as usize] = Some(NodeId(pick));
            children[pick as usize].push(NodeId(node));
            if children[pick as usize].len() >= max_degree {
                open.retain(|&x| x != pick);
            }
            open.push(node);
        }
        ControlTree { parent, children }
    }

    /// Builds an explicit tree from a parent table (index 0 must be the root).
    ///
    /// # Panics
    ///
    /// Panics if node 0 has a parent, another node lacks one, or the edges do
    /// not form a tree reaching every node.
    pub fn from_parents(parents: Vec<Option<NodeId>>) -> Self {
        let n = parents.len();
        assert!(n >= 2);
        assert!(parents[0].is_none(), "the root must not have a parent");
        let mut children = vec![Vec::new(); n];
        for (i, p) in parents.iter().enumerate() {
            if i == 0 {
                continue;
            }
            let p = p.unwrap_or_else(|| panic!("node {i} has no parent"));
            children[p.index()].push(NodeId(i as u32));
        }
        let tree = ControlTree {
            parent: parents,
            children,
        };
        // Validate connectivity.
        let mut seen = vec![false; n];
        let mut stack = vec![NodeId(0)];
        while let Some(x) = stack.pop() {
            if std::mem::replace(&mut seen[x.index()], true) {
                panic!("cycle detected in control tree");
            }
            stack.extend(tree.children(x).iter().copied());
        }
        assert!(
            seen.iter().all(|&s| s),
            "control tree does not reach every node"
        );
        tree
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns true if the tree is empty (never for constructed trees).
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The root (always node 0, the source).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Parent of `node` (`None` for the root).
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent[node.index()]
    }

    /// Children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.children[node.index()]
    }

    /// Returns true if `node` has no children.
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.children[node.index()].is_empty()
    }

    /// Number of nodes in the subtree rooted at `node` (including itself).
    pub fn subtree_size(&self, node: NodeId) -> usize {
        1 + self
            .children(node)
            .iter()
            .map(|&c| self.subtree_size(c))
            .sum::<usize>()
    }

    /// Depth of `node` (root = 0).
    pub fn depth(&self, node: NodeId) -> usize {
        let mut d = 0;
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum depth over all nodes.
    pub fn height(&self) -> usize {
        (0..self.len() as u32)
            .map(|i| self.depth(NodeId(i)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_tree_is_connected_and_respects_degree() {
        let rng = RngFactory::new(17);
        let tree = ControlTree::random(100, 4, &rng);
        assert_eq!(tree.len(), 100);
        assert_eq!(tree.subtree_size(tree.root()), 100);
        for i in 0..100u32 {
            assert!(tree.children(NodeId(i)).len() <= 4);
            if i != 0 {
                assert!(tree.parent(NodeId(i)).is_some());
            }
        }
        assert!(tree.parent(NodeId(0)).is_none());
    }

    #[test]
    fn random_tree_is_deterministic_per_seed() {
        let a = ControlTree::random(50, 6, &RngFactory::new(1));
        let b = ControlTree::random(50, 6, &RngFactory::new(1));
        let c = ControlTree::random(50, 6, &RngFactory::new(2));
        for i in 0..50u32 {
            assert_eq!(a.parent(NodeId(i)), b.parent(NodeId(i)));
        }
        assert!((0..50u32).any(|i| a.parent(NodeId(i)) != c.parent(NodeId(i))));
    }

    #[test]
    fn depth_and_height_consistent() {
        let tree = ControlTree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(0)),
            Some(NodeId(1)),
            Some(NodeId(3)),
        ]);
        assert_eq!(tree.depth(NodeId(0)), 0);
        assert_eq!(tree.depth(NodeId(4)), 3);
        assert_eq!(tree.height(), 3);
        assert!(tree.is_leaf(NodeId(4)));
        assert!(!tree.is_leaf(NodeId(1)));
        assert_eq!(tree.subtree_size(NodeId(1)), 3);
    }

    #[test]
    fn degree_one_tree_is_a_chain() {
        let tree = ControlTree::random(10, 1, &RngFactory::new(9));
        assert_eq!(tree.height(), 9);
        for i in 0..10u32 {
            assert!(tree.children(NodeId(i)).len() <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "does not reach every node")]
    fn disconnected_tree_rejected() {
        ControlTree::from_parents(vec![
            None,
            Some(NodeId(0)),
            Some(NodeId(3)),
            Some(NodeId(2)),
        ]);
    }
}
