//! `overlay` — the control-plane substrate shared by Bullet and Bullet′.
//!
//! Two pieces live here:
//!
//! * [`tree`] — the random overlay **control tree** used for joining the
//!   system and carrying control information (paper §3.1, step 1);
//! * [`ransub`] — **RanSub**, the decentralized protocol that periodically
//!   delivers changing, uniformly random subsets of node summaries to every
//!   participant over that tree (paper §3.2.2), which the peering strategies
//!   use to discover candidate senders and receivers.
//!
//! Both are transport-agnostic libraries: the dissemination protocols embed
//! them and map the emitted actions onto their own control messages.

pub mod ransub;
pub mod tree;

pub use ransub::{merge_samples, NodeSummary, RanSubAgent, RanSubEmit, Sample};
pub use tree::ControlTree;

#[cfg(test)]
mod proptests {
    use super::*;
    use desim::RngFactory;
    use proptest::prelude::*;
    use rand::SeedableRng;

    proptest! {
        /// Random control trees are always connected, acyclic (by
        /// construction: `n-1` edges + connectivity) and respect the degree cap.
        #[test]
        fn random_trees_well_formed(n in 2usize..120, degree in 1usize..8, seed in any::<u64>()) {
            let tree = ControlTree::random(n, degree, &RngFactory::new(seed));
            prop_assert_eq!(tree.subtree_size(tree.root()), n);
            for i in 0..n as u32 {
                prop_assert!(tree.children(netsim::NodeId(i)).len() <= degree);
            }
            // Every non-root node reaches the root by following parents.
            for i in 1..n as u32 {
                prop_assert!(tree.depth(netsim::NodeId(i)) <= n);
            }
        }

        /// Sample merging never exceeds the target size, never invents nodes,
        /// never duplicates a node, and sums the weights.
        #[test]
        fn merge_samples_invariants(
            sizes in proptest::collection::vec(1u32..40, 1..6),
            target in 1usize..20,
            seed in any::<u64>(),
        ) {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut groups = Vec::new();
            let mut next_node = 0u32;
            for (gi, sz) in sizes.iter().enumerate() {
                let entries: Vec<NodeSummary> = (0..*sz).map(|_| {
                    let s = NodeSummary { node: next_node, have_count: gi as u32, has_everything: false };
                    next_node += 1;
                    s
                }).collect();
                groups.push(Sample { entries, weight: *sz });
            }
            let merged = merge_samples(&mut rng, target, &groups);
            prop_assert!(merged.entries.len() <= target);
            prop_assert_eq!(merged.weight, sizes.iter().sum::<u32>());
            let mut seen = std::collections::HashSet::new();
            for e in &merged.entries {
                prop_assert!(e.node < next_node, "merge invented a node");
                prop_assert!(seen.insert(e.node), "merge duplicated a node");
            }
        }
    }
}
