//! RanSub: periodic distribution of changing, uniformly random subsets of
//! per-node state over the control tree (paper §3.2.2).
//!
//! Every epoch (5 seconds in Bullet′) the root starts a **collect** wave:
//! each leaf reports a summary of itself; interior nodes wait for their
//! children, merge the reported samples (weighted by subtree size so the
//! result stays uniform over the subtree) together with their own summary,
//! and forward a compacted sample upward. Once the root has merged every
//! subtree it starts the **distribute** wave, sending a random subset down
//! the tree; each interior node re-mixes the incoming subset with the samples
//! it collected from its other children so that different nodes receive
//! different (but still uniformly distributed) subsets.
//!
//! The [`RanSubAgent`] encapsulates this state machine in a
//! message-transport-agnostic way: protocols feed it incoming collect /
//! distribute payloads and it returns the messages to emit, so both Bullet
//! and Bullet′ reuse it unchanged.

use std::borrow::Borrow;
use std::collections::BTreeMap;

use netsim::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::tree::ControlTree;

/// Application state advertised through RanSub: enough for a receiver to
/// judge whether a node is worth peering with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSummary {
    /// The advertised node.
    pub node: u32,
    /// Number of distinct blocks the node currently holds.
    pub have_count: u32,
    /// True once the node holds the entire file (the source advertises itself
    /// this way after pushing every block once).
    pub has_everything: bool,
}

impl NodeSummary {
    /// Wire size of one summary entry in bytes.
    pub const WIRE_SIZE: usize = 9;

    /// The advertised node as a [`NodeId`].
    pub fn node_id(&self) -> NodeId {
        NodeId(self.node)
    }
}

/// A weighted sample of node summaries flowing up (collect) or down
/// (distribute) the control tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// The sampled summaries.
    pub entries: Vec<NodeSummary>,
    /// Number of nodes this sample represents (its subtree population during
    /// collect; the whole overlay during distribute).
    pub weight: u32,
}

impl Sample {
    /// An empty sample representing zero nodes.
    pub fn empty() -> Self {
        Sample {
            entries: Vec::new(),
            weight: 0,
        }
    }

    /// Wire size of the sample in bytes.
    pub fn wire_size(&self) -> usize {
        8 + self.entries.len() * NodeSummary::WIRE_SIZE
    }
}

/// Merges weighted samples into a single sample of at most `target` entries.
///
/// Each input sample is an (approximately) uniform sample of a disjoint
/// population of `weight` nodes; the merge draws entries so that every node
/// in the union remains equally likely to appear, then deduplicates.
///
/// Generic over [`Borrow`] so callers can pass groups by value
/// (`&[Sample]`) or — on the per-epoch hot path, where copying every
/// child's sample per merge would be the dominant cost — by reference
/// (`&[&Sample]`). The merge itself is O(total entries), and every input on
/// the tree paths is already compacted to the subset size, so one epoch
/// costs O(children) merges of fixed-size samples: no whole-subtree copies.
pub fn merge_samples<R: Rng + ?Sized, S: Borrow<Sample>>(
    rng: &mut R,
    target: usize,
    groups: &[S],
) -> Sample {
    let total_weight: u32 = groups.iter().map(|g| g.borrow().weight).sum();
    // Weighted sampling without replacement via exponential jumps
    // (Efraimidis–Spirakis keys): one key per entry, weighted by the
    // population the entry stands in for.
    let total_entries = groups.iter().map(|g| g.borrow().entries.len()).sum();
    let mut keyed: Vec<(f64, NodeSummary)> = Vec::with_capacity(total_entries);
    for g in groups {
        let g = g.borrow();
        if g.entries.is_empty() {
            continue;
        }
        let per_entry = f64::from(g.weight) / g.entries.len() as f64;
        for e in &g.entries {
            let u: f64 = rng.gen_range(1e-12..1.0);
            keyed.push((u.powf(1.0 / per_entry.max(1e-9)), *e));
        }
    }
    keyed.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("keys are finite"));

    let mut seen = std::collections::HashSet::new();
    let mut entries = Vec::with_capacity(target);
    for (_, e) in keyed {
        if entries.len() >= target {
            break;
        }
        if seen.insert(e.node) {
            entries.push(e);
        }
    }
    Sample {
        entries,
        weight: total_weight,
    }
}

/// Messages the agent asks the embedding protocol to emit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RanSubEmit {
    /// Send a collect payload to the parent.
    CollectToParent {
        /// Destination (the node's tree parent).
        parent: NodeId,
        /// Collected sample for the subtree rooted here.
        sample: Sample,
        /// Epoch number.
        epoch: u64,
    },
    /// Send a distribute payload to a child.
    DistributeToChild {
        /// Destination child.
        child: NodeId,
        /// The subset the child should receive.
        sample: Sample,
        /// Epoch number.
        epoch: u64,
    },
    /// The local node's subset for this epoch is ready.
    Deliver {
        /// The subset delivered to the local application (peering strategy).
        sample: Sample,
        /// Epoch number.
        epoch: u64,
    },
}

/// Per-node RanSub state machine.
#[derive(Debug, Clone)]
pub struct RanSubAgent {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    subset_size: usize,
    epoch: u64,
    /// Collect samples received from children for the current epoch.
    collected: BTreeMap<NodeId, Sample>,
    /// Our own summary for the current epoch.
    own: Option<NodeSummary>,
    /// True once this epoch's collect wave has been completed (forwarded to
    /// the parent or, at the root, turned into the distribute wave); guards
    /// against re-emitting when a child is removed after the fact.
    wave_done: bool,
}

impl RanSubAgent {
    /// Creates the agent for `node` given its position in the control tree.
    pub fn new(node: NodeId, tree: &ControlTree, subset_size: usize) -> Self {
        RanSubAgent {
            parent: tree.parent(node),
            children: tree.children(node).to_vec(),
            subset_size,
            epoch: 0,
            collected: BTreeMap::new(),
            own: None,
            wave_done: false,
        }
    }

    /// The current epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True if this node is the RanSub root.
    pub fn is_root(&self) -> bool {
        self.parent.is_none()
    }

    /// This node's current tree parent (`None` at the root).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// This node's current tree children.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }

    /// Re-parents this node (tree repair after the parent failed).
    pub fn set_parent(&mut self, parent: Option<NodeId>) {
        self.parent = parent;
    }

    /// Adopts `child` (tree repair: an orphaned node reattached here). The
    /// child starts counting towards collect-wave completion from the next
    /// epoch; the current wave, if already complete, is unaffected.
    pub fn add_child(&mut self, child: NodeId) {
        if !self.children.contains(&child) {
            self.children.push(child);
        }
    }

    /// Forgets all children (tree repair: a node that joins the overlay late
    /// must not wait on construction-time children that re-registered with
    /// another parent while it was absent; real children re-attach).
    pub fn clear_children(&mut self) {
        self.children.clear();
        self.collected.clear();
    }

    /// Starts a new epoch at this node with its current application summary.
    /// Returns the messages to emit: leaves immediately report to their
    /// parent; the root of a two-node tree may even deliver immediately.
    pub fn begin_epoch<R: Rng + ?Sized>(
        &mut self,
        summary: NodeSummary,
        rng: &mut R,
    ) -> Vec<RanSubEmit> {
        self.epoch += 1;
        self.collected.clear();
        self.own = Some(summary);
        self.wave_done = false;
        self.try_complete_collect(rng)
    }

    /// Removes a dead child from the tree links. Without this, an epoch whose
    /// collect wave is waiting on the crashed child would block forever — and
    /// with it every distribute below this node. If the removal completes the
    /// current wave, the resulting messages are returned.
    pub fn on_child_failed<R: Rng + ?Sized>(
        &mut self,
        child: NodeId,
        rng: &mut R,
    ) -> Vec<RanSubEmit> {
        let before = self.children.len();
        self.children.retain(|&c| c != child);
        if self.children.len() == before {
            return Vec::new(); // Not one of our children.
        }
        self.collected.remove(&child);
        self.try_complete_collect(rng)
    }

    /// Handles a collect payload from a child.
    pub fn on_collect<R: Rng + ?Sized>(
        &mut self,
        from: NodeId,
        sample: Sample,
        epoch: u64,
        rng: &mut R,
    ) -> Vec<RanSubEmit> {
        if epoch > self.epoch {
            // A child can be one epoch ahead if our timer is late; adopt the
            // newer epoch so the wave is not lost.
            self.epoch = epoch;
            self.collected.clear();
            self.wave_done = false;
        }
        // A *behind* child still delivers its freshest data: nodes that
        // joined the overlay late run a permanently lagging epoch counter,
        // so re-stamp their reports into the current epoch instead of
        // dropping them (which would block every wave through this node).
        self.collected.insert(from, sample);
        self.try_complete_collect(rng)
    }

    /// Handles a distribute payload from the parent: delivers the local
    /// subset and forwards re-mixed subsets to children.
    pub fn on_distribute<R: Rng + ?Sized>(
        &mut self,
        sample: Sample,
        epoch: u64,
        rng: &mut R,
    ) -> Vec<RanSubEmit> {
        let mut out = Vec::with_capacity(1 + self.children.len());
        out.push(RanSubEmit::Deliver {
            sample: sample.clone(),
            epoch,
        });
        let own_sample = self.own.map(|own| Sample {
            entries: vec![own],
            weight: 1,
        });
        let mut groups: Vec<&Sample> = Vec::with_capacity(2 + self.collected.len());
        for &child in &self.children {
            // Re-mix the incoming subset with what the *other* children (and
            // we ourselves) reported, so each child sees a different subset.
            // All groups are borrowed: each child's merge reads the collected
            // samples in place instead of copying them.
            groups.clear();
            groups.push(&sample);
            if let Some(own) = &own_sample {
                groups.push(own);
            }
            for (&c, s) in &self.collected {
                if c != child {
                    groups.push(s);
                }
            }
            let mixed = merge_samples(rng, self.subset_size, &groups);
            out.push(RanSubEmit::DistributeToChild {
                child,
                sample: mixed,
                epoch,
            });
        }
        out
    }

    /// If every child has reported for the current epoch, produce either the
    /// upward collect message (interior node) or the distribute wave (root).
    fn try_complete_collect<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<RanSubEmit> {
        let Some(own) = self.own else {
            return Vec::new();
        };
        if self.wave_done || self.collected.len() < self.children.len() {
            return Vec::new();
        }
        self.wave_done = true;
        let own_sample = Sample {
            entries: vec![own],
            weight: 1,
        };
        let mut groups: Vec<&Sample> = Vec::with_capacity(1 + self.collected.len());
        groups.push(&own_sample);
        groups.extend(self.collected.values());
        let merged = merge_samples(rng, self.subset_size, &groups);

        match self.parent {
            Some(parent) => vec![RanSubEmit::CollectToParent {
                parent,
                sample: merged,
                epoch: self.epoch,
            }],
            None => {
                // Root: the collect wave is complete; start distribution.
                self.on_distribute(merged, self.epoch, rng)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::RngFactory;
    use rand::SeedableRng;

    fn summary(node: u32, have: u32) -> NodeSummary {
        NodeSummary {
            node,
            have_count: have,
            has_everything: false,
        }
    }

    #[test]
    fn merge_respects_target_and_dedups() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = Sample {
            entries: (0..10).map(|i| summary(i, 0)).collect(),
            weight: 10,
        };
        let b = Sample {
            entries: (5..15).map(|i| summary(i, 0)).collect(),
            weight: 10,
        };
        let merged = merge_samples(&mut rng, 8, &[a, b]);
        assert_eq!(merged.entries.len(), 8);
        assert_eq!(merged.weight, 20);
        let nodes: std::collections::HashSet<u32> = merged.entries.iter().map(|e| e.node).collect();
        assert_eq!(nodes.len(), 8, "no duplicates after merge");
    }

    #[test]
    fn merge_is_roughly_uniform() {
        // Two groups of very different sizes must be represented roughly in
        // proportion to their populations.
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let big = Sample {
            entries: (0..30).map(|i| summary(i, 0)).collect(),
            weight: 90,
        };
        let small = Sample {
            entries: (100..110).map(|i| summary(i, 0)).collect(),
            weight: 10,
        };
        let mut from_big = 0usize;
        let trials = 400;
        for _ in 0..trials {
            let merged = merge_samples(&mut rng, 10, &[big.clone(), small.clone()]);
            from_big += merged.entries.iter().filter(|e| e.node < 100).count();
        }
        let frac = from_big as f64 / (trials * 10) as f64;
        assert!(
            (0.80..0.98).contains(&frac),
            "expected ~90% of entries from the large group, got {frac}"
        );
    }

    /// Runs one full epoch over an arbitrary tree by hand-delivering the
    /// emitted messages, and returns the subset delivered at each node.
    fn run_epoch(tree: &ControlTree, subset: usize, seed: u64) -> Vec<Option<Sample>> {
        let n = tree.len();
        let factory = RngFactory::new(seed);
        let mut rngs: Vec<_> = (0..n)
            .map(|i| factory.stream_indexed("ransub", i as u64))
            .collect();
        let mut agents: Vec<RanSubAgent> = (0..n as u32)
            .map(|i| RanSubAgent::new(NodeId(i), tree, subset))
            .collect();
        let mut delivered: Vec<Option<Sample>> = vec![None; n];
        let mut queue: Vec<RanSubEmit> = Vec::new();
        // Every node begins its epoch (ordering does not matter).
        for i in (0..n).rev() {
            let s = summary(i as u32, i as u32);
            let emitted = agents[i].begin_epoch(s, &mut rngs[i]);
            annotate(&mut queue, i, emitted, &mut delivered);
        }
        while let Some(msg) = queue.pop() {
            match msg {
                RanSubEmit::CollectToParent {
                    parent,
                    sample,
                    epoch,
                } => {
                    // Sender is implicit; find it by scanning children lists.
                    let sender = find_sender(tree, parent, &sample);
                    let p = parent.index();
                    let emitted = agents[p].on_collect(sender, sample, epoch, &mut rngs[p]);
                    annotate(&mut queue, p, emitted, &mut delivered);
                }
                RanSubEmit::DistributeToChild {
                    child,
                    sample,
                    epoch,
                } => {
                    let c = child.index();
                    let emitted = agents[c].on_distribute(sample, epoch, &mut rngs[c]);
                    annotate(&mut queue, c, emitted, &mut delivered);
                }
                RanSubEmit::Deliver { .. } => unreachable!("handled in annotate"),
            }
        }
        return delivered;

        fn annotate(
            queue: &mut Vec<RanSubEmit>,
            node: usize,
            emitted: Vec<RanSubEmit>,
            delivered: &mut [Option<Sample>],
        ) {
            for e in emitted {
                if let RanSubEmit::Deliver { sample, .. } = e {
                    delivered[node] = Some(sample);
                } else {
                    queue.push(e);
                }
            }
        }

        /// Identifies which child of `parent` sent `sample` — in the real
        /// protocols the transport supplies the sender, so the test only
        /// needs a stand-in that picks the child whose subtree contains the
        /// sample's first entry.
        fn find_sender(tree: &ControlTree, parent: NodeId, sample: &Sample) -> NodeId {
            let first = sample
                .entries
                .first()
                .expect("samples are never empty")
                .node;
            for &c in tree.children(parent) {
                if subtree_contains(tree, c, first) {
                    return c;
                }
            }
            panic!("no child of {parent} contains node {first}");
        }

        fn subtree_contains(tree: &ControlTree, root: NodeId, target: u32) -> bool {
            if root.0 == target {
                return true;
            }
            tree.children(root)
                .iter()
                .any(|&c| subtree_contains(tree, c, target))
        }
    }

    #[test]
    fn full_epoch_delivers_subsets_to_every_node() {
        let tree = ControlTree::random(30, 3, &RngFactory::new(4));
        let delivered = run_epoch(&tree, 8, 9);
        for (i, d) in delivered.iter().enumerate() {
            let d = d
                .as_ref()
                .unwrap_or_else(|| panic!("node {i} got no subset"));
            assert!(!d.entries.is_empty());
            assert!(d.entries.len() <= 8);
            // The sample must only reference real nodes.
            for e in &d.entries {
                assert!(e.node < 30);
            }
        }
        // Different nodes should not all receive the identical subset.
        let distinct: std::collections::HashSet<Vec<u32>> = delivered
            .iter()
            .map(|d| d.as_ref().unwrap().entries.iter().map(|e| e.node).collect())
            .collect();
        assert!(
            distinct.len() > 1,
            "re-mixing should diversify per-node subsets"
        );
    }

    #[test]
    fn epochs_advance_and_behind_collects_are_restamped() {
        let tree = ControlTree::from_parents(vec![None, Some(NodeId(0)), Some(NodeId(0))]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut root = RanSubAgent::new(NodeId(0), &tree, 5);
        assert!(root.is_root());
        let out = root.begin_epoch(summary(0, 100), &mut rng);
        assert!(out.is_empty(), "root with unreported children must wait");
        assert_eq!(root.epoch(), 1);

        // A behind (epoch 0) collect counts as the child's current report —
        // late joiners run permanently lagging epoch counters — but one
        // report alone does not complete a two-child wave.
        let behind = root.on_collect(
            NodeId(1),
            Sample {
                entries: vec![summary(1, 1)],
                weight: 1,
            },
            0,
            &mut rng,
        );
        assert!(behind.is_empty());

        // The second child's report completes the wave, even though the
        // first child's was re-stamped from an older epoch.
        let out = root.on_collect(
            NodeId(2),
            Sample {
                entries: vec![summary(2, 2)],
                weight: 1,
            },
            1,
            &mut rng,
        );
        let delivers = out
            .iter()
            .filter(|e| matches!(e, RanSubEmit::Deliver { .. }))
            .count();
        let dists = out
            .iter()
            .filter(|e| matches!(e, RanSubEmit::DistributeToChild { .. }))
            .count();
        assert_eq!(delivers, 1);
        assert_eq!(dists, 2);
        assert_eq!(root.epoch(), 1, "behind collects never advance the epoch");
    }

    #[test]
    fn child_failure_unblocks_a_waiting_collect_wave() {
        let tree = ControlTree::from_parents(vec![None, Some(NodeId(0)), Some(NodeId(0))]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let mut root = RanSubAgent::new(NodeId(0), &tree, 5);
        assert!(root.begin_epoch(summary(0, 100), &mut rng).is_empty());
        // Child 1 reports; the wave still waits on child 2.
        let out = root.on_collect(
            NodeId(1),
            Sample {
                entries: vec![summary(1, 1)],
                weight: 1,
            },
            1,
            &mut rng,
        );
        assert!(out.is_empty());
        // Child 2 crashes: the wave completes with the survivors.
        let out = root.on_child_failed(NodeId(2), &mut rng);
        assert!(
            out.iter().any(|e| matches!(e, RanSubEmit::Deliver { .. })),
            "root must deliver once the dead child stops being waited on: {out:?}"
        );
        // The dead child gets no distribute; the survivor does.
        for e in &out {
            if let RanSubEmit::DistributeToChild { child, .. } = e {
                assert_eq!(*child, NodeId(1));
            }
        }
        // Removing an unrelated node is a no-op.
        assert!(root.on_child_failed(NodeId(9), &mut rng).is_empty());
    }

    #[test]
    fn completed_wave_is_not_reemitted_after_child_failure() {
        let tree = ControlTree::from_parents(vec![None, Some(NodeId(0)), Some(NodeId(0))]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let mut root = RanSubAgent::new(NodeId(0), &tree, 5);
        root.begin_epoch(summary(0, 100), &mut rng);
        for c in [1u32, 2] {
            root.on_collect(
                NodeId(c),
                Sample {
                    entries: vec![summary(c, c)],
                    weight: 1,
                },
                1,
                &mut rng,
            );
        }
        // The wave already completed; a late failure must not re-run it.
        assert!(root.on_child_failed(NodeId(2), &mut rng).is_empty());
        // The next epoch only waits for the surviving child.
        assert!(root.begin_epoch(summary(0, 100), &mut rng).is_empty());
        let out = root.on_collect(
            NodeId(1),
            Sample {
                entries: vec![summary(1, 1)],
                weight: 1,
            },
            2,
            &mut rng,
        );
        assert!(out.iter().any(|e| matches!(e, RanSubEmit::Deliver { .. })));
    }

    #[test]
    fn reattached_orphan_counts_from_the_next_epoch() {
        let tree = ControlTree::from_parents(vec![None, Some(NodeId(0))]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(10);
        let mut root = RanSubAgent::new(NodeId(0), &tree, 5);
        root.add_child(NodeId(7)); // orphan adopted via tree repair
        root.add_child(NodeId(7)); // idempotent
        root.begin_epoch(summary(0, 1), &mut rng);
        let out = root.on_collect(
            NodeId(1),
            Sample {
                entries: vec![summary(1, 1)],
                weight: 1,
            },
            1,
            &mut rng,
        );
        assert!(
            out.is_empty(),
            "the wave now waits for the adopted child too"
        );
        let out = root.on_collect(
            NodeId(7),
            Sample {
                entries: vec![summary(7, 3)],
                weight: 1,
            },
            1,
            &mut rng,
        );
        let dists: Vec<_> = out
            .iter()
            .filter(|e| matches!(e, RanSubEmit::DistributeToChild { .. }))
            .collect();
        assert_eq!(dists.len(), 2, "both children receive distributes: {out:?}");
    }

    #[test]
    fn leaf_reports_immediately_on_epoch_start() {
        let tree = ControlTree::from_parents(vec![None, Some(NodeId(0))]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut leaf = RanSubAgent::new(NodeId(1), &tree, 5);
        let out = leaf.begin_epoch(summary(1, 7), &mut rng);
        assert_eq!(out.len(), 1);
        match &out[0] {
            RanSubEmit::CollectToParent {
                parent,
                sample,
                epoch,
            } => {
                assert_eq!(*parent, NodeId(0));
                assert_eq!(*epoch, 1);
                assert_eq!(sample.entries, vec![summary(1, 7)]);
                assert_eq!(sample.weight, 1);
            }
            other => panic!("unexpected emit {other:?}"),
        }
    }
}
