//! The rsync block-matching delta algorithm.
//!
//! Shotgun wraps rsync (paper §4.8): the update source computes, for every
//! file, a delta of the new version against the old one, batches the deltas
//! into an archive and multicasts the archive over Bullet′. The delta format
//! is the classic rsync one:
//!
//! 1. the *old* file is summarised as a [`Signature`]: a weak rolling
//!    checksum and a strong hash per fixed-size block;
//! 2. the sender slides a window over the *new* file; whenever the weak
//!    checksum hits an entry of the signature and the strong hash confirms
//!    it, it emits a `CopyBlock` op and jumps the window, otherwise it emits
//!    literal bytes;
//! 3. the receiver reconstructs the new file from its old copy plus the delta.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::rolling::RollingChecksum;
use crate::strong::{strong_hash, StrongHash};

/// Per-block summary of an old file.
#[derive(Debug, Clone)]
pub struct Signature {
    /// Block size the signature was computed with.
    pub block_size: usize,
    /// Length of the old file in bytes.
    pub file_len: usize,
    /// Weak-checksum → candidate block indices.
    weak_index: HashMap<u32, Vec<u32>>,
    /// Strong hash per block.
    strong: Vec<StrongHash>,
}

impl Signature {
    /// Computes the signature of `old` with the given block size.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn compute(old: &[u8], block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        let mut weak_index: HashMap<u32, Vec<u32>> = HashMap::new();
        let mut strong = Vec::new();
        for (i, chunk) in old.chunks(block_size).enumerate() {
            // Only full blocks participate in matching (rsync's behaviour);
            // the trailing partial block is always sent literally.
            if chunk.len() < block_size {
                break;
            }
            let weak = RollingChecksum::new(chunk).digest();
            weak_index.entry(weak).or_default().push(i as u32);
            strong.push(strong_hash(chunk));
        }
        Signature {
            block_size,
            file_len: old.len(),
            weak_index,
            strong,
        }
    }

    /// Number of whole blocks summarised.
    pub fn num_blocks(&self) -> usize {
        self.strong.len()
    }

    fn lookup(&self, weak: u32, window: &[u8]) -> Option<u32> {
        let candidates = self.weak_index.get(&weak)?;
        let h = strong_hash(window);
        candidates
            .iter()
            .copied()
            .find(|&i| self.strong[i as usize] == h)
    }
}

/// One instruction of a delta.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaOp {
    /// Copy block `index` (of the signature's block size) from the old file.
    CopyBlock {
        /// Index of the old-file block to copy.
        index: u32,
    },
    /// Append these literal bytes.
    Literal {
        /// Raw bytes that had no match in the old file.
        bytes: Vec<u8>,
    },
}

/// A complete delta transforming an old file into a new one.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Delta {
    /// Block size the delta was generated against.
    pub block_size: u32,
    /// The instruction stream.
    pub ops: Vec<DeltaOp>,
}

impl Delta {
    /// Bytes of literal data carried by the delta (what actually needs to
    /// travel when the old file is present at the receiver).
    pub fn literal_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Literal { bytes } => bytes.len(),
                DeltaOp::CopyBlock { .. } => 0,
            })
            .sum()
    }

    /// Number of copy instructions.
    pub fn copied_blocks(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, DeltaOp::CopyBlock { .. }))
            .count()
    }

    /// Approximate encoded size of the delta on the wire: literals plus a
    /// small fixed cost per instruction.
    pub fn wire_size(&self) -> usize {
        16 + self.ops.len() * 8 + self.literal_bytes()
    }
}

/// Generates the delta turning `old` into `new` using `block_size` blocks.
pub fn generate_delta(old: &[u8], new: &[u8], block_size: usize) -> Delta {
    let sig = Signature::compute(old, block_size);
    generate_delta_from_signature(&sig, new)
}

/// Generates a delta against a precomputed signature (what the rsync sender
/// actually does, since it never sees the old file).
pub fn generate_delta_from_signature(sig: &Signature, new: &[u8]) -> Delta {
    let block_size = sig.block_size;
    let mut ops: Vec<DeltaOp> = Vec::new();
    let mut literal: Vec<u8> = Vec::new();
    let mut pos = 0usize;

    let flush = |literal: &mut Vec<u8>, ops: &mut Vec<DeltaOp>| {
        if !literal.is_empty() {
            ops.push(DeltaOp::Literal {
                bytes: std::mem::take(literal),
            });
        }
    };

    if sig.num_blocks() > 0 {
        let mut rc: Option<RollingChecksum> = None;
        while pos + block_size <= new.len() {
            let window = &new[pos..pos + block_size];
            let checksum = match rc {
                Some(c) => c,
                None => RollingChecksum::new(window),
            };
            if let Some(index) = sig.lookup(checksum.digest(), window) {
                flush(&mut literal, &mut ops);
                ops.push(DeltaOp::CopyBlock { index });
                pos += block_size;
                rc = None;
            } else {
                literal.push(new[pos]);
                let mut next = checksum;
                if pos + block_size < new.len() {
                    next.roll(new[pos], new[pos + block_size]);
                    rc = Some(next);
                } else {
                    rc = None;
                }
                pos += 1;
            }
        }
    }
    // Tail (and the whole file when the old file had no whole blocks).
    literal.extend_from_slice(&new[pos..]);
    flush(&mut literal, &mut ops);
    Delta {
        block_size: block_size as u32,
        ops,
    }
}

/// Applies `delta` to `old`, producing the new file.
///
/// # Errors
///
/// Returns an error if the delta references a block beyond the old file.
pub fn apply_delta(old: &[u8], delta: &Delta) -> Result<Vec<u8>, String> {
    let block_size = delta.block_size as usize;
    let mut out = Vec::new();
    for op in &delta.ops {
        match op {
            DeltaOp::Literal { bytes } => out.extend_from_slice(bytes),
            DeltaOp::CopyBlock { index } => {
                let start = *index as usize * block_size;
                let end = start + block_size;
                if end > old.len() {
                    return Err(format!(
                        "delta references old block {index} beyond file of {} bytes",
                        old.len()
                    ));
                }
                out.extend_from_slice(&old[start..end]);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_bytes(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen()).collect()
    }

    #[test]
    fn identical_files_produce_copy_only_delta() {
        let old = random_bytes(64 * 1024, 1);
        let delta = generate_delta(&old, &old, 4096);
        assert_eq!(delta.literal_bytes(), 0);
        assert_eq!(delta.copied_blocks(), 16);
        assert_eq!(apply_delta(&old, &delta).unwrap(), old);
    }

    #[test]
    fn small_edit_produces_small_delta() {
        let old = random_bytes(256 * 1024, 2);
        let mut new = old.clone();
        // Overwrite 1 KB in the middle.
        for (i, b) in new[100_000..101_024].iter_mut().enumerate() {
            *b = i as u8;
        }
        let delta = generate_delta(&old, &new, 4096);
        assert_eq!(apply_delta(&old, &delta).unwrap(), new);
        assert!(
            delta.literal_bytes() <= 2 * 4096 + 1024,
            "literal bytes {} should be around the edited region",
            delta.literal_bytes()
        );
    }

    #[test]
    fn insertion_shifts_are_found_by_rolling() {
        let old = random_bytes(128 * 1024, 3);
        let mut new = Vec::new();
        new.extend_from_slice(&old[..50_000]);
        new.extend_from_slice(b"INSERTED DATA THAT SHIFTS EVERYTHING AFTER IT");
        new.extend_from_slice(&old[50_000..]);
        let delta = generate_delta(&old, &new, 2048);
        assert_eq!(apply_delta(&old, &delta).unwrap(), new);
        // Despite the shift, most of the file must still be copied, not literal.
        assert!(
            delta.literal_bytes() < 8 * 2048,
            "rolling match failed: {} literal bytes",
            delta.literal_bytes()
        );
    }

    #[test]
    fn completely_new_file_is_all_literals() {
        let old = random_bytes(32 * 1024, 4);
        let new = random_bytes(32 * 1024, 5);
        let delta = generate_delta(&old, &new, 4096);
        assert_eq!(delta.copied_blocks(), 0);
        assert_eq!(delta.literal_bytes(), new.len());
        assert_eq!(apply_delta(&old, &delta).unwrap(), new);
    }

    #[test]
    fn empty_old_file_works() {
        let new = random_bytes(10_000, 6);
        let delta = generate_delta(&[], &new, 4096);
        assert_eq!(apply_delta(&[], &delta).unwrap(), new);
    }

    #[test]
    fn empty_new_file_works() {
        let old = random_bytes(10_000, 7);
        let delta = generate_delta(&old, &[], 4096);
        assert_eq!(apply_delta(&old, &delta).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupt_delta_is_rejected() {
        let old = random_bytes(8192, 8);
        let delta = Delta {
            block_size: 4096,
            ops: vec![DeltaOp::CopyBlock { index: 99 }],
        };
        assert!(apply_delta(&old, &delta).is_err());
    }

    #[test]
    fn wire_size_tracks_literals() {
        let old = random_bytes(64 * 1024, 9);
        let delta_same = generate_delta(&old, &old, 4096);
        let delta_new = generate_delta(&old, &random_bytes(64 * 1024, 10), 4096);
        assert!(delta_new.wire_size() > delta_same.wire_size() * 10);
    }
}
