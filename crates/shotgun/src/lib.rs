//! `shotgun` — rapid software-image synchronization over Bullet′ (paper §4.8).
//!
//! Shotgun wraps the rsync algorithm around Bullet′: instead of the source
//! opening one rsync-over-ssh session per client (all competing for its CPU,
//! disk and uplink), it computes every file's delta **once**, batches the
//! deltas into a single [`archive::UpdateArchive`], multicasts that archive
//! with Bullet′, and lets every client replay the deltas locally if the
//! archive is newer than its installed version.
//!
//! Layout:
//!
//! * [`rolling`] / [`strong`] — the rsync weak rolling checksum and the
//!   strong block hash;
//! * [`delta`] — block-matching delta generation and application;
//! * [`archive`] — batched multi-file update archives with version gating;
//! * [`model`] — the Fig 15 experiment: Shotgun (real Bullet′ run + replay
//!   cost) vs N parallel rsync sessions (source-contention model).

pub mod archive;
pub mod delta;
pub mod model;
pub mod rolling;
pub mod strong;

pub use archive::{ArchiveEntry, FileSet, UpdateArchive};
pub use delta::{apply_delta, generate_delta, Delta, DeltaOp, Signature};
pub use model::{
    parallel_rsync_times, planetlab_client_bandwidths, simulate_shotgun, RsyncModelParams,
    ShotgunResult,
};
pub use rolling::RollingChecksum;
pub use strong::{strong_hash, StrongHash};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// apply(generate(old, new)) == new for arbitrary contents, edits and
        /// block sizes.
        #[test]
        fn delta_round_trips(
            old in proptest::collection::vec(any::<u8>(), 0..4000),
            new in proptest::collection::vec(any::<u8>(), 0..4000),
            block in 1usize..700,
        ) {
            let delta = generate_delta(&old, &new, block);
            prop_assert_eq!(apply_delta(&old, &delta).unwrap(), new);
        }

        /// When new = old with a small splice, the delta carries far fewer
        /// literal bytes than the file (the whole point of rsync).
        #[test]
        fn small_edits_give_small_deltas(
            seed in any::<u64>(),
            splice_at in 0usize..30_000,
            splice_len in 1usize..500,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let old: Vec<u8> = (0..40_000).map(|_| rng.gen()).collect();
            let mut new = old.clone();
            let at = splice_at.min(old.len());
            let splice: Vec<u8> = (0..splice_len).map(|_| rng.gen()).collect();
            new.splice(at..at, splice);
            let delta = generate_delta(&old, &new, 2048);
            prop_assert_eq!(apply_delta(&old, &delta).unwrap(), new);
            prop_assert!(
                delta.literal_bytes() < splice_len + 3 * 2048,
                "literals {} for a {}-byte splice", delta.literal_bytes(), splice_len
            );
        }

        /// The rolling checksum matches from-scratch recomputation at every
        /// offset, for arbitrary data and window sizes.
        #[test]
        fn rolling_checksum_consistency(
            data in proptest::collection::vec(any::<u8>(), 2..800),
            window_frac in 1usize..100,
        ) {
            let window = (data.len() * window_frac / 100).clamp(1, data.len() - 1);
            let mut rc = RollingChecksum::new(&data[..window]);
            for i in 0..data.len() - window {
                prop_assert_eq!(rc.digest(), RollingChecksum::new(&data[i..i + window]).digest());
                rc.roll(data[i], data[i + window]);
            }
        }

        /// Archives round-trip through encode/decode for arbitrary small images.
        #[test]
        fn archive_encoding_round_trips(
            n_files in 1usize..5,
            file_len in 1usize..3000,
            version in 1u64..1000,
            seed in any::<u64>(),
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let old: FileSet = (0..n_files)
                .map(|i| (format!("f{i}"), (0..file_len).map(|_| rng.gen()).collect()))
                .collect();
            let mut new = old.clone();
            for data in new.values_mut() {
                let at = rng.gen_range(0..data.len());
                data[at] ^= 0xFF;
            }
            let archive = UpdateArchive::build(&old, &new, version, 512);
            let decoded = UpdateArchive::decode(&archive.encode()).unwrap();
            prop_assert_eq!(&archive, &decoded);
            let mut client = old.clone();
            prop_assert!(decoded.apply(&mut client, version - 1).unwrap());
            prop_assert_eq!(client, new);
        }
    }
}
