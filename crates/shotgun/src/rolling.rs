//! The rolling weak checksum used by the rsync algorithm.
//!
//! rsync's first-pass filter is a 32-bit Adler-style checksum that can be
//! *rolled*: given the checksum of `data[i..i+len]`, the checksum of
//! `data[i+1..i+1+len]` is computed in O(1) by removing the leading byte and
//! appending the trailing one. Shotgun uses it exactly as rsync does: the
//! receiver publishes per-block checksums of the *old* file, and the sender
//! slides a window over the *new* file looking for matches.

/// Modulus of the two 16-bit component sums.
const MOD: u32 = 1 << 16;

/// A rolling Adler-style weak checksum over a fixed-length window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollingChecksum {
    a: u32,
    b: u32,
    len: usize,
}

impl RollingChecksum {
    /// Computes the checksum of `window` from scratch.
    pub fn new(window: &[u8]) -> Self {
        let mut a: u32 = 0;
        let mut b: u32 = 0;
        let len = window.len();
        for (i, &x) in window.iter().enumerate() {
            a = (a + u32::from(x)) % MOD;
            b = (b + (len - i) as u32 * u32::from(x)) % MOD;
        }
        RollingChecksum { a, b, len }
    }

    /// The 32-bit digest.
    pub fn digest(&self) -> u32 {
        self.a | (self.b << 16)
    }

    /// Window length this checksum covers.
    pub fn window_len(&self) -> usize {
        self.len
    }

    /// Rolls the window one byte forward: removes `out` (the byte leaving the
    /// window) and appends `incoming`.
    pub fn roll(&mut self, out: u8, incoming: u8) {
        let out = u32::from(out);
        let incoming = u32::from(incoming);
        // a' = a - out + in ; b' = b - len*out + a'
        self.a = (self.a + MOD - out + incoming) % MOD;
        self.b = (self.b + MOD - (self.len as u32 * out) % MOD + self.a) % MOD;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn rolling_matches_recomputation() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let data: Vec<u8> = (0..4096).map(|_| rng.gen()).collect();
        let window = 700;
        let mut rc = RollingChecksum::new(&data[..window]);
        for i in 0..data.len() - window {
            assert_eq!(
                rc.digest(),
                RollingChecksum::new(&data[i..i + window]).digest(),
                "mismatch at offset {i}"
            );
            rc.roll(data[i], data[i + window]);
        }
    }

    #[test]
    fn different_windows_usually_differ() {
        let a = RollingChecksum::new(b"The quick brown fox jumps");
        let b = RollingChecksum::new(b"The quick brown fox jumpt");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn empty_window_is_zero() {
        assert_eq!(RollingChecksum::new(&[]).digest(), 0);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = RollingChecksum::new(b"abcd");
        let b = RollingChecksum::new(b"dcba");
        assert_ne!(a.digest(), b.digest(), "the b-sum weights positions");
    }
}
