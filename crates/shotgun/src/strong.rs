//! The strong block hash used to confirm weak-checksum matches.
//!
//! rsync uses MD4/MD5 truncated to 16 bytes; any collision-resistant-enough
//! digest works for the algorithm (the weak checksum only pre-filters). To
//! stay within the approved dependency set we implement a 128-bit hash from
//! two independently keyed 64-bit FNV-1a passes with avalanche finalisation —
//! not cryptographic, but with a 2^-128 accidental collision probability it
//! plays the same role MD4 plays in rsync.

/// A 128-bit strong digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrongHash(pub u128);

/// Computes the strong digest of `data`.
pub fn strong_hash(data: &[u8]) -> StrongHash {
    let lo = keyed_fnv(data, 0xcbf2_9ce4_8422_2325);
    let hi = keyed_fnv(data, 0x6c62_272e_07bb_0142);
    StrongHash((u128::from(hi) << 64) | u128::from(lo))
}

fn keyed_fnv(data: &[u8], seed: u64) -> u64 {
    let mut h = seed;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Avalanche finalisation (SplitMix64) so short inputs spread across bits.
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(strong_hash(b"hello"), strong_hash(b"hello"));
        assert_ne!(strong_hash(b"hello"), strong_hash(b"hellp"));
        assert_ne!(strong_hash(b"hello"), strong_hash(b"hell"));
        assert_ne!(strong_hash(b""), strong_hash(b"\0"));
    }

    #[test]
    fn no_collisions_over_many_small_inputs() {
        let mut seen = HashSet::new();
        for i in 0u32..20_000 {
            let data = i.to_le_bytes();
            assert!(seen.insert(strong_hash(&data)), "collision at input {i}");
        }
    }

    #[test]
    fn single_bit_flips_change_many_bits() {
        let base = strong_hash(b"block of data for avalanche check").0;
        let flipped = strong_hash(b"block of data for avalanche checj").0;
        let differing = (base ^ flipped).count_ones();
        assert!(differing > 30, "only {differing} bits differ");
    }
}
