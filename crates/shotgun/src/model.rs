//! The Fig 15 experiment: Shotgun vs N parallel rsync processes.
//!
//! The paper pushes a 24 MB update to 40 PlanetLab nodes two ways:
//!
//! * **parallel rsync** — the source runs `k` simultaneous rsync-over-ssh
//!   sessions (2, 4, 8, 16), all competing for the source's CPU, disk and
//!   uplink; remaining nodes wait for a free slot (the "staggered" approach);
//! * **Shotgun** — the source builds one update archive and multicasts it
//!   with Bullet′; every client then replays the deltas against its local
//!   disk. The paper reports both the download-only and download+update
//!   CDFs, and observes that replaying dominates (“the constraining factor
//!   for PlanetLab nodes is the disk, not the network”).
//!
//! The rsync side is an analytic contention model (the paper itself measures
//! a real rsync; what matters for the comparison is the source bottleneck
//! scaling), while the Shotgun side reuses the full Bullet′ protocol over the
//! PlanetLab-like emulated topology.

use desim::{RngFactory, SimDuration};
use netsim::{mbps, topology, BytesPerSec, NodeId};

use bullet_prime::{build_runner, Config};
use dissem_codec::FileSpec;

/// Parameters of the parallel-rsync contention model.
#[derive(Debug, Clone)]
pub struct RsyncModelParams {
    /// Source uplink capacity shared by all concurrent sessions.
    pub source_uplink: BytesPerSec,
    /// Source disk read throughput shared by all concurrent sessions.
    pub source_disk: BytesPerSec,
    /// Source CPU throughput for checksumming/ssh encryption, shared.
    pub source_cpu: BytesPerSec,
    /// Per-client replay (disk) throughput applied to the delta bytes.
    pub client_replay: BytesPerSec,
    /// Fixed per-session start-up cost (ssh handshake, file-list walk), seconds.
    pub session_overhead: f64,
}

impl Default for RsyncModelParams {
    fn default() -> Self {
        RsyncModelParams {
            // A well-connected university source of the era.
            source_uplink: mbps(10.0),
            // Contended PlanetLab-class disk and CPU.
            source_disk: mbps(60.0),
            source_cpu: mbps(24.0),
            client_replay: mbps(1.6),
            session_overhead: 4.0,
        }
    }
}

/// Completion times (seconds, one per client, unsorted) for pushing
/// `update_bytes` to every client with `parallelism` concurrent rsync
/// sessions.
///
/// `client_download` gives each client's own bottleneck bandwidth in
/// bytes/second (from the emulated topology), so slow sites take longer even
/// when the source is idle.
pub fn parallel_rsync_times(
    client_download: &[BytesPerSec],
    parallelism: usize,
    update_bytes: u64,
    params: &RsyncModelParams,
) -> Vec<f64> {
    assert!(parallelism >= 1, "need at least one rsync slot");
    let k = parallelism.min(client_download.len().max(1)) as f64;
    // Each concurrent session's share of the source's resources.
    let source_share = (params.source_uplink / k)
        .min(params.source_disk / k)
        .min(params.source_cpu / k);

    // Greedy slot scheduler: clients are assigned to the first free slot in
    // index order (the staggered approach of the paper).
    let mut slot_free_at = vec![0.0f64; parallelism];
    let mut completions = Vec::with_capacity(client_download.len());
    for &down in client_download {
        // Earliest available slot.
        let (slot, start) = slot_free_at
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))
            .expect("at least one slot");
        let rate = source_share.min(down).max(1.0);
        let transfer = update_bytes as f64 / rate;
        let replay = update_bytes as f64 / params.client_replay.max(1.0);
        let finish = start + params.session_overhead + transfer + replay;
        slot_free_at[slot] = start + params.session_overhead + transfer;
        completions.push(finish);
    }
    completions
}

/// Result of a Shotgun dissemination experiment.
#[derive(Debug, Clone)]
pub struct ShotgunResult {
    /// Per-receiver archive download completion times (seconds), unsorted.
    pub download_only: Vec<f64>,
    /// Per-receiver download + local delta replay times (seconds), unsorted.
    pub download_plus_update: Vec<f64>,
}

/// Runs the Shotgun side of Fig 15: multicast an `update_bytes` archive to
/// `nodes - 1` receivers over a PlanetLab-like topology with Bullet′, then
/// add the local replay cost.
pub fn simulate_shotgun(
    nodes: usize,
    update_bytes: u64,
    block_kb: u32,
    replay_rate: BytesPerSec,
    seed: u64,
) -> ShotgunResult {
    let rng = RngFactory::new(seed);
    let topo = topology::planetlab_like(nodes, &rng);
    let cfg = Config::new(FileSpec::new(update_bytes, block_kb * 1024));
    let mut runner = build_runner(topo, &cfg, &rng);
    let report = runner.run(SimDuration::from_secs(24 * 3600));

    let mut download_only = Vec::new();
    let mut download_plus_update = Vec::new();
    let replay = update_bytes as f64 / replay_rate.max(1.0);
    for (i, completion) in report.completion_secs.iter().enumerate() {
        if i == 0 {
            continue; // The source neither downloads nor replays.
        }
        let t = completion.unwrap_or(report.end_time.as_secs_f64());
        download_only.push(t);
        download_plus_update.push(t + replay);
    }
    ShotgunResult {
        download_only,
        download_plus_update,
    }
}

/// Per-client bottleneck download bandwidth for the rsync model, derived from
/// the same PlanetLab-like topology Shotgun runs on (so both sides face the
/// same clients).
pub fn planetlab_client_bandwidths(nodes: usize, seed: u64) -> Vec<BytesPerSec> {
    let rng = RngFactory::new(seed);
    let topo = topology::planetlab_like(nodes, &rng);
    (1..nodes)
        .map(|i| {
            let id = NodeId(i as u32);
            let down = topo.node(id).down;
            let core = topo.path(NodeId(0), id).bw;
            down.min(core)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_clients(n: usize, bw_mbps: f64) -> Vec<BytesPerSec> {
        vec![mbps(bw_mbps); n]
    }

    #[test]
    fn more_parallelism_helps_until_the_source_saturates() {
        let clients = uniform_clients(40, 10.0);
        let params = RsyncModelParams::default();
        let update = 24 * 1024 * 1024;
        let t2 = parallel_rsync_times(&clients, 2, update, &params);
        let t8 = parallel_rsync_times(&clients, 8, update, &params);
        let t16 = parallel_rsync_times(&clients, 16, update, &params);
        let last = |v: &Vec<f64>| v.iter().cloned().fold(0.0f64, f64::max);
        assert!(last(&t8) < last(&t2), "8 slots should beat 2");
        // Returns diminish: the aggregate work is source-bound, so 16 slots is
        // not twice as good as 8.
        assert!(last(&t16) > last(&t8) * 0.5);
    }

    #[test]
    fn rsync_slots_serialise_clients() {
        let clients = uniform_clients(4, 100.0);
        let params = RsyncModelParams {
            session_overhead: 0.0,
            client_replay: mbps(1_000.0),
            ..RsyncModelParams::default()
        };
        let times = parallel_rsync_times(&clients, 1, 10 * 1024 * 1024, &params);
        // With one slot, completions must be strictly increasing.
        for w in times.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn shotgun_beats_parallel_rsync_by_a_wide_margin() {
        let nodes = 21;
        let update = 6 * 1024 * 1024;
        let seed = 5;
        let shotgun = simulate_shotgun(nodes, update, 64, mbps(1.6), seed);
        assert_eq!(shotgun.download_only.len(), nodes - 1);
        let clients = planetlab_client_bandwidths(nodes, seed);
        let rsync = parallel_rsync_times(&clients, 4, update, &RsyncModelParams::default());
        let slowest = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            slowest(&shotgun.download_plus_update) < slowest(&rsync),
            "Shotgun ({:.0}s) should finish well before 4-way rsync ({:.0}s)",
            slowest(&shotgun.download_plus_update),
            slowest(&rsync)
        );
    }

    #[test]
    fn replay_cost_is_added_to_every_node() {
        // Download+update must exceed download-only by exactly the modelled
        // replay time (update bytes over the client replay rate).
        let update = 4 * 1024 * 1024u64;
        let replay_rate = mbps(1.6);
        let shotgun = simulate_shotgun(15, update, 64, replay_rate, 9);
        let expected_replay = update as f64 / replay_rate;
        for (d, t) in shotgun
            .download_only
            .iter()
            .zip(&shotgun.download_plus_update)
        {
            assert!((t - d - expected_replay).abs() < 1e-9);
        }
        assert!(
            expected_replay > 15.0,
            "the modelled replay cost is substantial"
        );
    }

    #[test]
    fn client_bandwidths_are_heterogeneous_and_deterministic() {
        let a = planetlab_client_bandwidths(30, 3);
        let b = planetlab_client_bandwidths(30, 3);
        assert_eq!(a, b);
        let distinct: std::collections::BTreeSet<u64> = a.iter().map(|x| *x as u64).collect();
        assert!(distinct.len() > 1);
    }
}
