//! The Shotgun update archive.
//!
//! `shotgun_sync` runs rsync in batch mode between the old and new software
//! images, collects the per-file deltas and version numbers into a single
//! archive (the paper tars the rsync batch logs), and hands that one blob to
//! the Bullet′ daemon for dissemination. Receivers unpack the archive and
//! replay the deltas locally if the archive's version is newer than theirs.
//!
//! The archive has a small hand-rolled binary encoding so it is a real byte
//! artifact whose size drives the dissemination experiment (Fig 15).

use std::collections::BTreeMap;

use crate::delta::{generate_delta, Delta, DeltaOp};

/// A software image: a set of files addressed by path.
pub type FileSet = BTreeMap<String, Vec<u8>>;

/// One file's entry in an update archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchiveEntry {
    /// Path of the file relative to the image root.
    pub path: String,
    /// Delta against the previous version (an empty-old delta for new files).
    pub delta: Delta,
}

/// A batched update: every changed file's delta plus the target version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateArchive {
    /// Version number of the image this archive upgrades to.
    pub version: u64,
    /// Per-file deltas (files that did not change are omitted).
    pub entries: Vec<ArchiveEntry>,
    /// Paths present in the old image but absent from the new one.
    pub deletions: Vec<String>,
}

impl UpdateArchive {
    /// Builds the archive that upgrades `old` to `new`, labelled `version`.
    pub fn build(old: &FileSet, new: &FileSet, version: u64, block_size: usize) -> Self {
        let mut entries = Vec::new();
        let empty: Vec<u8> = Vec::new();
        for (path, new_bytes) in new {
            let old_bytes = old.get(path).unwrap_or(&empty);
            if old.get(path) == Some(new_bytes) {
                continue; // Unchanged.
            }
            let delta = generate_delta(old_bytes, new_bytes, block_size);
            entries.push(ArchiveEntry {
                path: path.clone(),
                delta,
            });
        }
        let deletions = old
            .keys()
            .filter(|p| !new.contains_key(*p))
            .cloned()
            .collect();
        UpdateArchive {
            version,
            entries,
            deletions,
        }
    }

    /// Applies the archive to `image`, upgrading it in place. Returns `false`
    /// (and leaves the image untouched) if the archive is not newer than
    /// `current_version`.
    ///
    /// # Errors
    ///
    /// Returns an error if any delta fails to apply.
    pub fn apply(&self, image: &mut FileSet, current_version: u64) -> Result<bool, String> {
        if self.version <= current_version {
            return Ok(false);
        }
        let empty: Vec<u8> = Vec::new();
        let mut updated = image.clone();
        for entry in &self.entries {
            let old_bytes = image.get(&entry.path).unwrap_or(&empty);
            let new_bytes = crate::delta::apply_delta(old_bytes, &entry.delta)
                .map_err(|e| format!("{}: {e}", entry.path))?;
            updated.insert(entry.path.clone(), new_bytes);
        }
        for path in &self.deletions {
            updated.remove(path);
        }
        *image = updated;
        Ok(true)
    }

    /// Total bytes of literal (non-copied) data across all entries.
    pub fn literal_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.delta.literal_bytes()).sum()
    }

    /// Serialises the archive to bytes (the blob Bullet′ disseminates).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"SHOTGUN1");
        out.extend_from_slice(&self.version.to_le_bytes());
        write_u32(&mut out, self.entries.len() as u32);
        for e in &self.entries {
            write_bytes(&mut out, e.path.as_bytes());
            write_u32(&mut out, e.delta.block_size);
            write_u32(&mut out, e.delta.ops.len() as u32);
            for op in &e.delta.ops {
                match op {
                    DeltaOp::CopyBlock { index } => {
                        out.push(0);
                        write_u32(&mut out, *index);
                    }
                    DeltaOp::Literal { bytes } => {
                        out.push(1);
                        write_bytes(&mut out, bytes);
                    }
                }
            }
        }
        write_u32(&mut out, self.deletions.len() as u32);
        for d in &self.deletions {
            write_bytes(&mut out, d.as_bytes());
        }
        out
    }

    /// Decodes an archive previously produced by [`UpdateArchive::encode`].
    ///
    /// # Errors
    ///
    /// Returns an error on truncated or malformed input.
    pub fn decode(data: &[u8]) -> Result<Self, String> {
        let mut r = Reader { data, pos: 0 };
        let magic = r.take(8)?;
        if magic != b"SHOTGUN1" {
            return Err("bad magic".into());
        }
        let version = u64::from_le_bytes(r.take(8)?.try_into().expect("8 bytes"));
        let n_entries = r.read_u32()? as usize;
        let mut entries = Vec::with_capacity(n_entries.min(1 << 20));
        for _ in 0..n_entries {
            let path = String::from_utf8(r.read_bytes()?.to_vec())
                .map_err(|_| "non-utf8 path".to_string())?;
            let block_size = r.read_u32()?;
            let n_ops = r.read_u32()? as usize;
            let mut ops = Vec::with_capacity(n_ops.min(1 << 20));
            for _ in 0..n_ops {
                let tag = r.take(1)?[0];
                match tag {
                    0 => ops.push(DeltaOp::CopyBlock {
                        index: r.read_u32()?,
                    }),
                    1 => ops.push(DeltaOp::Literal {
                        bytes: r.read_bytes()?.to_vec(),
                    }),
                    other => return Err(format!("unknown op tag {other}")),
                }
            }
            entries.push(ArchiveEntry {
                path,
                delta: Delta { block_size, ops },
            });
        }
        let n_del = r.read_u32()? as usize;
        let mut deletions = Vec::with_capacity(n_del.min(1 << 20));
        for _ in 0..n_del {
            deletions.push(
                String::from_utf8(r.read_bytes()?.to_vec())
                    .map_err(|_| "non-utf8 path".to_string())?,
            );
        }
        Ok(UpdateArchive {
            version,
            entries,
            deletions,
        })
    }
}

fn write_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn write_bytes(out: &mut Vec<u8>, b: &[u8]) {
    write_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.pos + n > self.data.len() {
            return Err("truncated archive".into());
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn read_bytes(&mut self) -> Result<&'a [u8], String> {
        let len = self.read_u32()? as usize;
        self.take(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn image(seed: u64, files: usize, file_len: usize) -> FileSet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..files)
            .map(|i| {
                let data: Vec<u8> = (0..file_len).map(|_| rng.gen()).collect();
                (format!("bin/file{i}"), data)
            })
            .collect()
    }

    fn evolve(old: &FileSet, seed: u64) -> FileSet {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut new = old.clone();
        // Edit a slice of every other file, add one file, delete one file.
        for (i, (_, data)) in new.iter_mut().enumerate() {
            if i % 2 == 0 && data.len() > 2048 {
                for b in data[1024..2048].iter_mut() {
                    *b = rng.gen();
                }
            }
        }
        new.insert(
            "bin/new_tool".into(),
            (0..5000).map(|_| rng.gen()).collect(),
        );
        let first = old.keys().next().cloned();
        if let Some(k) = first {
            new.remove(&k);
        }
        new
    }

    #[test]
    fn archive_upgrades_an_old_image_exactly() {
        let old = image(1, 6, 20_000);
        let new = evolve(&old, 2);
        let archive = UpdateArchive::build(&old, &new, 2, 4096);
        let mut client = old.clone();
        assert!(archive.apply(&mut client, 1).unwrap());
        assert_eq!(client, new);
    }

    #[test]
    fn stale_archives_are_ignored() {
        let old = image(3, 2, 4096);
        let new = evolve(&old, 4);
        let archive = UpdateArchive::build(&old, &new, 5, 2048);
        let mut client = old.clone();
        assert!(!archive.apply(&mut client, 5).unwrap());
        assert_eq!(client, old, "stale apply must not modify the image");
    }

    #[test]
    fn unchanged_files_are_omitted_and_literals_are_small() {
        let old = image(5, 8, 32_768);
        let new = evolve(&old, 6);
        let archive = UpdateArchive::build(&old, &new, 2, 4096);
        // Files 0/2/4/6 are edited but file 0 is also deleted, plus one new file.
        assert_eq!(archive.entries.len(), 4);
        assert_eq!(archive.deletions.len(), 1);
        let total_new: usize = new.values().map(Vec::len).sum();
        assert!(
            archive.literal_bytes() < total_new / 4,
            "deltas should be much smaller than the image ({} vs {total_new})",
            archive.literal_bytes()
        );
    }

    #[test]
    fn encode_decode_round_trips() {
        let old = image(7, 4, 10_000);
        let new = evolve(&old, 8);
        let archive = UpdateArchive::build(&old, &new, 9, 2048);
        let encoded = archive.encode();
        let decoded = UpdateArchive::decode(&encoded).unwrap();
        assert_eq!(archive, decoded);
        // Applying the decoded archive gives the same result.
        let mut client = old.clone();
        assert!(decoded.apply(&mut client, 0).unwrap());
        assert_eq!(client, new);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(UpdateArchive::decode(b"not an archive").is_err());
        let old = image(9, 1, 4096);
        let archive = UpdateArchive::build(&old, &old, 1, 2048);
        let mut encoded = archive.encode();
        encoded.truncate(encoded.len().saturating_sub(2));
        // Truncation may or may not hit a length field; either way it must not panic.
        let _ = UpdateArchive::decode(&encoded);
    }

    #[test]
    fn bad_delta_application_reports_path() {
        let mut archive = UpdateArchive {
            version: 3,
            entries: vec![ArchiveEntry {
                path: "bin/broken".into(),
                delta: Delta {
                    block_size: 4096,
                    ops: vec![DeltaOp::CopyBlock { index: 7 }],
                },
            }],
            deletions: vec![],
        };
        archive.entries[0].delta.block_size = 4096;
        let mut image = FileSet::new();
        let err = archive.apply(&mut image, 0).unwrap_err();
        assert!(err.contains("bin/broken"));
    }
}
