//! `netsim` — a ModelNet-equivalent network emulator for overlay protocols.
//!
//! The Bullet′ paper evaluates its protocols on ModelNet: real protocol code,
//! emulated hop-by-hop bandwidth, delay and loss. This crate plays the same
//! role for the reproduction, as a deterministic fluid-model emulator on top
//! of the [`desim`] event engine:
//!
//! * [`topology`] — the emulated topologies (full-mesh ModelNet configuration,
//!   constrained-access, high-BDP clique, cascading-slowdown, PlanetLab-like,
//!   shared-core bottleneck) and their explicit directed link graph
//!   ([`LinkId`]);
//! * [`tcp`] — the per-flow TCP ceilings (Mathis loss limit + slow start);
//! * [`network`] — the global **max-min fair fluid model**: per-connection
//!   block queues whose rates are assigned by progressive filling over the
//!   link graph, with incremental (connected-component) repricing, plus the
//!   sender-side `in_front`/`wasted` measurements Bullet′'s flow controller
//!   uses (see `docs/NETWORK_MODEL.md`);
//! * [`protocol`] — the [`Protocol`] trait implemented by every dissemination
//!   system in this workspace (message and timer types are *associated
//!   types*, so downstream signatures are `Runner<P>`, `Ctx<'_, P>`,
//!   `Probe<P>`), and the command-buffer [`Ctx`];
//! * [`runner`] — the experiment driver (allocation-free dispatch over a
//!   reusable command buffer);
//! * [`conformance`] — a reusable trait-level conformance harness any
//!   protocol implementation can be run through;
//! * [`dynamics`] — scripted bandwidth-change, cross-traffic and churn
//!   scenarios;
//! * [`probe`] — run-time observers sampled on a virtual-time tick, feeding
//!   the bandwidth-over-time analyses;
//! * [`trace`] / [`metrics`] / [`profile`] — the observability layer
//!   (structured trace records, the always-on counters/gauges registry, and
//!   the wall-clock profiler; see `docs/OBSERVABILITY.md` for the schema and
//!   the zero-overhead-when-off contract).

pub mod conformance;
pub mod dynamics;
pub mod metrics;
pub mod network;
pub mod probe;
pub mod profile;
pub mod protocol;
pub mod runner;
pub mod service;
pub mod snapshot;
pub mod tcp;
pub mod topology;
pub mod trace;
pub mod units;

pub use dynamics::{
    BandwidthChange, ChangeSchedule, CrossSchedule, CrossTraffic, LinkChangeBatch, NodeEvent,
    NodeSchedule,
};
pub use metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot, VtHistogram};
pub use network::{BlockReceipt, ConnUpdate, Network, NodeTraffic, SolverStats};
pub use probe::{NodeSample, Probe, ProbeStats, StatsProbe, TimeSample, TimeSeries};
pub use profile::{EventKind, HookKind, ProfileReport, ProfileRow, VtProfiler};
pub use protocol::{Command, Ctx, Protocol, TimerToken, WireSize};
pub use runner::{RunReport, Runner, StopReason};
pub use service::{
    arrival_schedule, run_service, ArrivalGen, CohortReport, ServiceConfig, ServiceReport,
    ServiceSample, SwarmShape, SwarmSource,
};
pub use snapshot::{ForkState, Snapshot};
pub use topology::{LinkId, NodeId, NodeSpec, PathSpec, Topology};
pub use trace::{
    replay_goodput, summarize, CountingSink, JsonlSink, ReplaySample, RingSink, TraceEvent,
    TraceRecord, TraceSink, TraceSummary,
};
pub use units::{gbps, kbps, mbps, to_mbps, BytesPerSec};

#[cfg(test)]
mod lifecycle_tests {
    use super::*;
    use desim::{RngFactory, SimDuration, SimTime};

    /// A minimal instrumented protocol: records every hook invocation so the
    /// tests can assert exactly what the runner delivered.
    struct Recorder {
        id: NodeId,
        init_at: Option<f64>,
        inits: u32,
        shutdowns: usize,
        failed_peers: Vec<NodeId>,
        timer_fires: u32,
        ctrl_received: Vec<NodeId>,
        complete: bool,
        /// Peers to send a control message to at init.
        greet: Vec<NodeId>,
        /// Re-arm a 1 s timer forever.
        recurring_timer: bool,
        /// Peer to wave goodbye to from on_shutdown.
        farewell_to: Option<NodeId>,
    }

    #[derive(Debug)]
    struct PMsg;

    impl WireSize for PMsg {
        fn wire_size(&self) -> usize {
            8
        }
    }

    impl Recorder {
        fn new(id: NodeId) -> Self {
            Recorder {
                id,
                init_at: None,
                inits: 0,
                shutdowns: 0,
                failed_peers: Vec::new(),
                timer_fires: 0,
                ctrl_received: Vec::new(),
                complete: false,
                greet: Vec::new(),
                recurring_timer: false,
                farewell_to: None,
            }
        }
    }

    impl Protocol for Recorder {
        type Msg = PMsg;
        type Timer = ();

        fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
            self.init_at = Some(ctx.now().as_secs_f64());
            self.inits += 1;
            for &peer in &self.greet {
                ctx.send(peer, PMsg);
            }
            if self.recurring_timer {
                ctx.set_timer(SimDuration::from_secs(1), ());
            }
        }

        fn on_control(&mut self, _ctx: &mut Ctx<'_, Self>, from: NodeId, _msg: PMsg) {
            self.ctrl_received.push(from);
        }

        fn on_block_received(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, _r: BlockReceipt) {
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, _timer: ()) {
            self.timer_fires += 1;
            if self.recurring_timer {
                ctx.set_timer(SimDuration::from_secs(1), ());
            }
        }

        fn on_peer_failed(&mut self, _ctx: &mut Ctx<'_, Self>, peer: NodeId) {
            self.failed_peers.push(peer);
        }

        fn on_shutdown(&mut self, ctx: &mut Ctx<'_, Self>) {
            self.shutdowns += 1;
            if let Some(peer) = self.farewell_to {
                ctx.send(peer, PMsg);
            }
        }

        fn is_complete(&self) -> bool {
            self.complete
        }
    }

    fn probe_runner(n: usize, tweak: impl Fn(&mut Recorder)) -> Runner<Recorder> {
        let rng = RngFactory::new(77);
        let topo = topology::constrained_access(n);
        let nodes: Vec<Recorder> = (0..n as u32)
            .map(|i| {
                let mut p = Recorder::new(NodeId(i));
                tweak(&mut p);
                p
            })
            .collect();
        Runner::new(Network::new(topo), nodes, &rng)
    }

    #[test]
    fn graceful_leave_runs_shutdown_then_notifies_survivors() {
        let mut runner = probe_runner(3, |p| {
            if p.id == NodeId(1) {
                p.farewell_to = Some(NodeId(2));
            }
        });
        runner.schedule_node_event(SimTime::from_secs_f64(2.0), NodeEvent::Leave(NodeId(1)));
        let report = runner.run_until(SimTime::from_secs_f64(10.0));
        assert_eq!(report.reason, StopReason::Drained);
        assert_eq!(report.departed, vec![false, true, false]);
        let nodes = runner.into_nodes();
        assert_eq!(
            nodes[1].shutdowns, 1,
            "the leaver gets exactly one on_shutdown"
        );
        assert_eq!(nodes[0].failed_peers, vec![NodeId(1)]);
        assert_eq!(nodes[2].failed_peers, vec![NodeId(1)]);
        assert_eq!(nodes[1].failed_peers, Vec::<NodeId>::new());
        // The farewell control message sent from on_shutdown was delivered.
        assert_eq!(nodes[2].ctrl_received, vec![NodeId(1)]);
    }

    #[test]
    fn crash_skips_shutdown_and_drops_timers() {
        let mut runner = probe_runner(3, |p| {
            p.recurring_timer = true;
        });
        runner.schedule_node_event(SimTime::from_secs_f64(3.5), NodeEvent::Crash(NodeId(2)));
        let report = runner.run_until(SimTime::from_secs_f64(10.0));
        assert_eq!(report.reason, StopReason::TimeLimit);
        let nodes = runner.into_nodes();
        assert_eq!(nodes[2].shutdowns, 0, "crashes get no goodbye");
        // Timers at 1, 2, 3 s fired; the 4 s one was dropped.
        assert_eq!(nodes[2].timer_fires, 3);
        assert!(nodes[0].timer_fires >= 9, "survivors keep ticking");
        assert_eq!(nodes[0].failed_peers, vec![NodeId(2)]);
    }

    #[test]
    fn join_initialises_late_and_drops_earlier_messages() {
        let mut runner = probe_runner(3, |p| {
            if p.id == NodeId(0) {
                // Greets the not-yet-joined node 2 at t = 0: lost.
                p.greet = vec![NodeId(2)];
            }
            if p.id == NodeId(1) {
                p.recurring_timer = true; // keeps the run alive
            }
        });
        runner.set_inactive_at_start(NodeId(2));
        runner.schedule_node_event(SimTime::from_secs_f64(5.0), NodeEvent::Join(NodeId(2)));
        let report = runner.run_until(SimTime::from_secs_f64(8.0));
        assert_eq!(report.reason, StopReason::TimeLimit);
        let nodes = runner.into_nodes();
        assert_eq!(
            nodes[2].init_at,
            Some(5.0),
            "joiner initialises at the join instant"
        );
        assert!(
            nodes[2].ctrl_received.is_empty(),
            "messages sent before the join never arrive"
        );
        assert_eq!(nodes[0].init_at, Some(0.0));
    }

    #[test]
    fn staged_run_until_does_not_reinitialise() {
        // Regression for the Protocol contract: on_init is delivered exactly
        // once per participant, even when run_until is called again on the
        // same runner (a staged continuation). A joiner is initialised at its
        // join instant — once — regardless of which stage it joins in.
        let mut runner = probe_runner(3, |p| p.recurring_timer = true);
        runner.set_inactive_at_start(NodeId(2));
        runner.schedule_node_event(SimTime::from_secs_f64(4.0), NodeEvent::Join(NodeId(2)));
        let first = runner.run_until(SimTime::from_secs_f64(2.0));
        assert_eq!(first.reason, StopReason::TimeLimit);
        let second = runner.run_until(SimTime::from_secs_f64(6.0));
        assert_eq!(second.reason, StopReason::TimeLimit);
        let nodes = runner.into_nodes();
        assert_eq!(nodes[0].inits, 1, "staged continuation must not re-init");
        assert_eq!(nodes[1].inits, 1);
        assert_eq!(
            nodes[2].inits, 1,
            "the joiner is initialised exactly once, at the join"
        );
        assert_eq!(nodes[2].init_at, Some(4.0));
    }

    #[test]
    fn not_yet_joined_nodes_block_all_complete() {
        let mut runner = probe_runner(2, |p| {
            p.complete = true;
        });
        runner.set_inactive_at_start(NodeId(1));
        runner.schedule_node_event(SimTime::from_secs_f64(4.0), NodeEvent::Join(NodeId(1)));
        let report = runner.run_until(SimTime::from_secs_f64(10.0));
        assert_eq!(report.reason, StopReason::AllComplete);
        assert_eq!(
            report.end_time,
            SimTime::from_secs_f64(4.0),
            "the run must wait for the joiner instead of stopping at t=0"
        );
    }

    #[test]
    fn event_limit_stops_the_runner() {
        let mut runner = probe_runner(2, |p| p.recurring_timer = true);
        runner.set_event_limit(7);
        let report = runner.run_until(SimTime::from_secs_f64(1_000.0));
        assert_eq!(report.reason, StopReason::EventLimit);
        assert_eq!(report.events, 7);
    }

    #[test]
    fn drained_reports_unfinished_non_exempt_nodes() {
        // Nobody schedules anything and nobody is complete: the queue drains
        // right after init with zero completions.
        let mut runner = probe_runner(3, |_| {});
        let report = runner.run_until(SimTime::from_secs_f64(100.0));
        assert_eq!(report.reason, StopReason::Drained);
        assert!(report.completion_secs.iter().all(Option::is_none));
        assert_eq!(report.completion_fraction(1), 0.0);
    }

    #[test]
    fn exempt_nodes_stop_the_run_but_still_count_as_unfinished() {
        let mut runner = probe_runner(3, |p| {
            p.complete = p.id != NodeId(2);
        });
        runner.exempt_from_completion(NodeId(2));
        let report = runner.run_until(SimTime::from_secs_f64(100.0));
        assert_eq!(report.reason, StopReason::AllComplete);
        // completion_fraction does not know about exemptions: node 2 never
        // finished and is reported as such.
        assert!(report.completion_secs[2].is_none());
        assert!((report.completion_fraction(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_limit_clamps_end_time_to_the_limit() {
        // Regression: the runner used to report the time of the last
        // *processed* event on TimeLimit while the engine clamps to the
        // limit; both must agree on the limit itself.
        let mut runner = probe_runner(2, |p| p.recurring_timer = true);
        let report = runner.run_until(SimTime::from_secs_f64(2.5));
        assert_eq!(report.reason, StopReason::TimeLimit);
        assert_eq!(
            report.end_time,
            SimTime::from_secs_f64(2.5),
            "end_time must be exactly the limit, not the last event time"
        );
    }
}

#[cfg(test)]
mod runner_tests {
    use super::*;
    use desim::{RngFactory, SimDuration};
    use dissem_codec::{BlockBitmap, BlockId, FileSpec};

    /// A deliberately simple protocol used to exercise the runner: node 0
    /// (the source) pushes every block to every other node directly, keeping
    /// at most `window` blocks queued per receiver; receivers just record
    /// what they get.
    struct Flood {
        id: NodeId,
        spec: FileSpec,
        window: usize,
        have: BlockBitmap,
        next_to_send: Vec<u32>,
        receipts: usize,
    }

    #[derive(Debug)]
    enum Msg {}

    impl WireSize for Msg {
        fn wire_size(&self) -> usize {
            0
        }
    }

    impl Flood {
        fn new(id: NodeId, n: usize, spec: FileSpec, window: usize) -> Self {
            let have = if id == NodeId(0) {
                BlockBitmap::full(spec.num_blocks())
            } else {
                BlockBitmap::new(spec.num_blocks())
            };
            Flood {
                id,
                spec,
                window,
                have,
                next_to_send: vec![0; n],
                receipts: 0,
            }
        }

        fn is_source(&self) -> bool {
            self.id == NodeId(0)
        }

        fn fill_pipe(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId) {
            let idx = to.index();
            // `ctx.pending_to` reflects network state before this handler's
            // commands are applied, so track what this call queues separately.
            let mut queued_now = 0usize;
            while ctx.pending_to(to) + queued_now < self.window
                && self.next_to_send[idx] < self.spec.num_blocks()
            {
                let b = BlockId(self.next_to_send[idx]);
                ctx.queue_block(to, b, u64::from(self.spec.block_size(b)));
                self.next_to_send[idx] += 1;
                queued_now += 1;
            }
        }
    }

    impl Protocol for Flood {
        type Msg = Msg;
        type Timer = ();

        fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
            if self.is_source() {
                for i in 1..ctx.num_nodes() as u32 {
                    // Queue the initial window towards each receiver.
                    let to = NodeId(i);
                    for _ in 0..self.window {
                        let next = self.next_to_send[to.index()];
                        if next >= self.spec.num_blocks() {
                            break;
                        }
                        let b = BlockId(next);
                        ctx.queue_block(to, b, u64::from(self.spec.block_size(b)));
                        self.next_to_send[to.index()] += 1;
                    }
                }
            }
        }

        fn on_control(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, _msg: Msg) {}

        fn on_block_received(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, r: BlockReceipt) {
            self.have.insert(r.block);
            self.receipts += 1;
        }

        fn on_block_sent(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, _block: BlockId) {
            if self.is_source() {
                self.fill_pipe(ctx, to);
            }
        }

        fn is_complete(&self) -> bool {
            self.have.is_full()
        }
    }

    fn run_flood(n: usize, file_kb: u64, window: usize) -> RunReport {
        let rng = RngFactory::new(11);
        let topo = topology::constrained_access(n);
        let spec = FileSpec::new(file_kb * 1024, 16 * 1024);
        let nodes: Vec<Flood> = (0..n)
            .map(|i| Flood::new(NodeId(i as u32), n, spec, window))
            .collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        runner.run(SimDuration::from_secs(3_000))
    }

    #[test]
    fn direct_flood_completes_all_receivers() {
        let report = run_flood(4, 256, 4);
        assert_eq!(report.reason, StopReason::AllComplete);
        for (i, c) in report.completion_secs.iter().enumerate() {
            if i == 0 {
                continue;
            }
            assert!(c.is_some(), "node {i} did not complete");
        }
        // 256 KB to three receivers over a shared 800 Kbps uplink cannot finish
        // faster than the uplink allows: 3 * 256 KB / 100 KB/s ≈ 7.9 s.
        let slowest = report.finished_times().last().copied().unwrap();
        assert!(
            slowest > 7.0,
            "slowest receiver finished impossibly fast: {slowest}"
        );
        assert!(slowest < 200.0, "flood took unreasonably long: {slowest}");
    }

    #[test]
    fn deeper_window_is_not_slower_on_clean_links() {
        let small = run_flood(3, 128, 1);
        let large = run_flood(3, 128, 8);
        let s = small.finished_times().last().copied().unwrap();
        let l = large.finished_times().last().copied().unwrap();
        assert!(
            l <= s + 1e-6,
            "a deeper pipeline should not slow the transfer (window 1: {s}, window 8: {l})"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_flood(5, 128, 3);
        let b = run_flood(5, 128, 3);
        assert_eq!(a.completion_secs, b.completion_secs);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn crashed_receiver_is_excluded_and_survivors_complete() {
        let rng = RngFactory::new(11);
        let topo = topology::constrained_access(4);
        let spec = FileSpec::new(256 * 1024, 16 * 1024);
        let nodes: Vec<Flood> = (0..4)
            .map(|i| Flood::new(NodeId(i as u32), 4, spec, 4))
            .collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        runner.schedule_node_event(
            desim::SimTime::from_secs_f64(2.0),
            NodeEvent::Crash(NodeId(2)),
        );
        let report = runner.run(SimDuration::from_secs(3_000));
        assert_eq!(
            report.reason,
            StopReason::AllComplete,
            "the crashed node must not block the all-complete stop: {report:?}"
        );
        assert!(
            report.completion_secs[2].is_none(),
            "a crashed node never completes"
        );
        assert_eq!(report.departed, vec![false, false, true, false]);
        assert!(report.completion_secs[1].is_some());
        assert!(report.completion_secs[3].is_some());
    }

    #[test]
    fn blocks_queued_to_inactive_peers_are_discarded() {
        // Regression for the `Ctx::queue_block` path: the source floods every
        // receiver without checking liveness, and node 2 never joins. The
        // runner must discard the QueueBlock commands addressed to it — no
        // bytes may reach it, no connection may sit waiting to drain — while
        // the active receiver completes normally.
        let rng = RngFactory::new(11);
        let topo = topology::constrained_access(3);
        let spec = FileSpec::new(64 * 1024, 16 * 1024);
        let nodes: Vec<Flood> = (0..3)
            .map(|i| Flood::new(NodeId(i as u32), 3, spec, 4))
            .collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        runner.set_inactive_at_start(NodeId(2));
        let report = runner.run(SimDuration::from_secs(3_000));
        // Node 2 never joins, so the run drains instead of completing.
        assert_eq!(report.reason, StopReason::Drained);
        assert!(
            report.completion_secs[1].is_some(),
            "active receiver finishes"
        );
        assert_eq!(
            runner.network().traffic(NodeId(2)).data_bytes_in,
            0,
            "no data may reach the inactive node"
        );
        assert_eq!(
            runner.network().pending_blocks(NodeId(0), NodeId(2)),
            0,
            "discarded blocks must not linger in a queue towards the inactive node"
        );
        assert_eq!(runner.node(NodeId(2)).receipts, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "no self-transfers")]
    fn queueing_a_block_to_self_is_rejected() {
        // Mirror of the `Ctx::send` self-messaging guard: a protocol that
        // queues a block towards itself is a bug, caught at record time.
        struct SelfSender;
        impl Protocol for SelfSender {
            type Msg = Msg;
            type Timer = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
                let me = ctx.node_id();
                ctx.queue_block(me, BlockId(0), 1024);
            }
            fn on_control(&mut self, _c: &mut Ctx<'_, Self>, _f: NodeId, _m: Msg) {}
            fn on_block_received(&mut self, _c: &mut Ctx<'_, Self>, _f: NodeId, _r: BlockReceipt) {}
        }
        let rng = RngFactory::new(1);
        let topo = topology::constrained_access(2);
        let mut runner = Runner::new(Network::new(topo), vec![SelfSender, SelfSender], &rng);
        runner.run(SimDuration::from_secs(1));
    }

    /// Drives deliberate connection churn against the runner's dense
    /// completion-event table (regression for the `(from, to) → EventKey`
    /// map it replaced): a mid-flight close must cancel the connection's
    /// single live event (its block never arrives), re-queueing afterwards
    /// must create a fresh event, and shared-uplink rate changes in between
    /// must *move* the survivor's event rather than duplicate it.
    struct Churn {
        id: NodeId,
        got: Vec<BlockId>,
    }

    impl Protocol for Churn {
        type Msg = Msg;
        type Timer = u64;

        fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
            if self.id == NodeId(0) {
                // Two small blocks towards node 1 and one large one towards
                // node 2, sharing node 0's uplink.
                ctx.queue_block(NodeId(1), BlockId(0), 100_000);
                ctx.queue_block(NodeId(1), BlockId(1), 100_000);
                ctx.queue_block(NodeId(2), BlockId(10), 1_000_000);
                ctx.set_timer(SimDuration::from_millis(200), 1);
                ctx.set_timer(SimDuration::from_millis(400), 2);
            }
        }

        fn on_control(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, _msg: Msg) {}

        fn on_block_received(&mut self, _c: &mut Ctx<'_, Self>, _from: NodeId, r: BlockReceipt) {
            self.got.push(r.block);
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: u64) {
            match timer {
                // Cancel: the 1 MB block to node 2 is still in flight (its
                // uplink share is at most 100 KB/s); closing discards it and
                // speeds node 1's flow up (rescheduling its live event).
                1 => ctx.close_connection(NodeId(2)),
                // Fresh event on a previously cancelled connection; node 1's
                // flow slows down again (another reschedule).
                2 => ctx.queue_block(NodeId(2), BlockId(11), 100_000),
                _ => unreachable!("unknown timer"),
            }
        }

        fn is_complete(&self) -> bool {
            match self.id {
                NodeId(1) => self.got.len() >= 2,
                NodeId(2) => self.got.contains(&BlockId(11)),
                _ => false,
            }
        }
    }

    fn run_churn() -> (RunReport, Vec<Churn>) {
        let rng = RngFactory::new(9);
        let topo = topology::constrained_access(3);
        let nodes: Vec<Churn> = (0..3)
            .map(|i| Churn {
                id: NodeId(i),
                got: Vec::new(),
            })
            .collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        runner.exempt_from_completion(NodeId(0));
        let report = runner.run(SimDuration::from_secs(1_000));
        assert_eq!(
            runner.network().pending_blocks(NodeId(0), NodeId(2)),
            0,
            "nothing may linger on the cancelled-then-reopened connection"
        );
        (report, runner.into_nodes())
    }

    #[test]
    fn cancel_and_reschedule_bookkeeping_survives_churn() {
        let (report, nodes) = run_churn();
        assert_eq!(report.reason, StopReason::AllComplete);
        assert_eq!(
            nodes[1].got,
            vec![BlockId(0), BlockId(1)],
            "the rescheduled (never cancelled) connection delivers in order"
        );
        assert_eq!(
            nodes[2].got,
            vec![BlockId(11)],
            "the cancelled block must never arrive; the re-queued one must"
        );
        // The whole churn sequence is deterministic: a second run replays the
        // exact event count and completion instants.
        let (again, _) = run_churn();
        assert_eq!(report.completion_secs, again.completion_secs);
        assert_eq!(report.events, again.events);
    }

    #[test]
    fn time_limit_is_respected() {
        let rng = RngFactory::new(11);
        let topo = topology::constrained_access(3);
        let spec = FileSpec::new(10 * 1024 * 1024, 16 * 1024);
        let nodes: Vec<Flood> = (0..3)
            .map(|i| Flood::new(NodeId(i as u32), 3, spec, 2))
            .collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        let report = runner.run(SimDuration::from_secs(5));
        assert_eq!(report.reason, StopReason::TimeLimit);
        assert!(report.end_time.as_secs_f64() <= 5.0 + 1e-9);
    }

    #[test]
    fn completion_fraction_counts_receivers() {
        let report = run_flood(4, 64, 2);
        assert_eq!(report.completion_fraction(1), 1.0);
    }

    #[test]
    fn link_change_slows_transfer() {
        let rng = RngFactory::new(3);
        let spec = FileSpec::new(512 * 1024, 16 * 1024);

        let run_with = |degrade: bool| -> f64 {
            let topo = topology::constrained_access(2);
            let nodes: Vec<Flood> = (0..2)
                .map(|i| Flood::new(NodeId(i as u32), 2, spec, 4))
                .collect();
            let mut runner = Runner::new(Network::new(topo), nodes, &rng);
            if degrade {
                runner.schedule_link_change(
                    desim::SimTime::from_secs_f64(1.0),
                    LinkChangeBatch {
                        changes: vec![(NodeId(0), NodeId(1), BandwidthChange::Set(kbps(50.0)))],
                    },
                );
            }
            let report = runner.run(SimDuration::from_secs(10_000));
            report
                .finished_times()
                .last()
                .copied()
                .expect("receiver finished")
        };

        let clean = run_with(false);
        let degraded = run_with(true);
        assert!(
            degraded > clean * 2.0,
            "cutting the path to 50 Kbps must slow the transfer (clean {clean}, degraded {degraded})"
        );
    }

    #[test]
    fn traffic_counters_match_file_volume() {
        let rng = RngFactory::new(2);
        let topo = topology::constrained_access(2);
        let spec = FileSpec::new(128 * 1024, 16 * 1024);
        let nodes: Vec<Flood> = (0..2)
            .map(|i| Flood::new(NodeId(i as u32), 2, spec, 4))
            .collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        let report = runner.run(SimDuration::from_secs(1_000));
        assert_eq!(report.reason, StopReason::AllComplete);
        assert_eq!(
            runner.network().traffic(NodeId(1)).data_bytes_in,
            128 * 1024
        );
        assert_eq!(
            runner.network().traffic(NodeId(0)).data_bytes_out,
            128 * 1024
        );
    }
}

#[cfg(test)]
mod probe_tests {
    use super::*;
    use desim::{RngFactory, SimDuration, SimTime};
    use probe::ProbeStats;

    /// A protocol that "downloads" a fixed number of bytes per second via a
    /// timer, so probe goodput has a known closed form.
    struct Ticker {
        bytes: u64,
        per_tick: u64,
        ticks_left: u32,
        duplicates: u64,
    }

    #[derive(Debug)]
    enum NoMsg {}

    impl WireSize for NoMsg {
        fn wire_size(&self) -> usize {
            0
        }
    }

    impl Protocol for Ticker {
        type Msg = NoMsg;
        type Timer = ();

        // No started-guard needed: the runner delivers on_init exactly once,
        // even across staged run_until continuations (see the staged test).
        fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
            if self.ticks_left > 0 {
                ctx.set_timer(SimDuration::from_secs(1), ());
            }
        }
        fn on_control(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, _msg: NoMsg) {}
        fn on_block_received(&mut self, _c: &mut Ctx<'_, Self>, _f: NodeId, _r: BlockReceipt) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, _timer: ()) {
            self.bytes += self.per_tick;
            self.duplicates += 1;
            self.ticks_left -= 1;
            if self.ticks_left > 0 {
                ctx.set_timer(SimDuration::from_secs(1), ());
            }
        }
        fn probe_stats(&self) -> ProbeStats {
            ProbeStats {
                useful_bytes: self.bytes,
                useful_blocks: self.bytes / self.per_tick.max(1),
                duplicate_blocks: self.duplicates,
                senders: 2,
                receivers: 3,
            }
        }
    }

    fn ticker_runner(n: usize, per_tick: u64, ticks: u32) -> Runner<Ticker> {
        let rng = RngFactory::new(5);
        let topo = topology::constrained_access(n);
        let nodes: Vec<Ticker> = (0..n)
            .map(|_| Ticker {
                bytes: 0,
                per_tick,
                ticks_left: ticks,
                duplicates: 0,
            })
            .collect();
        Runner::new(Network::new(topo), nodes, &rng)
    }

    #[test]
    fn timeseries_samples_at_t0_and_every_tick() {
        let mut runner = ticker_runner(2, 1000, 10);
        runner.record_timeseries(SimDuration::from_secs(2));
        let report = runner.run_until(SimTime::from_secs_f64(100.0));
        let series = report.timeseries.expect("probe installed");
        assert_eq!(series.interval_secs, 2.0);
        // Protocol timers stop at t = 10; samples at 0,2,4,6,8,10 all fire
        // before the queue holds nothing but the next probe tick.
        let times: Vec<f64> = series.samples.iter().map(|s| s.time_secs).collect();
        assert_eq!(times, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        assert_eq!(
            report.reason,
            StopReason::Drained,
            "probe ticks alone must not keep the run alive"
        );
    }

    #[test]
    fn goodput_is_differenced_between_ticks() {
        let mut runner = ticker_runner(2, 1000, 10);
        runner.record_timeseries(SimDuration::from_secs(2));
        let report = runner.run_until(SimTime::from_secs_f64(100.0));
        let series = report.timeseries.unwrap();
        // 1000 bytes/s of "useful" data = 8000 bps. A sample observes state
        // *as of* its instant: a protocol event landing exactly on a tick is
        // counted in the next interval (the tick was enqueued first), so the
        // first interval (0, 2] sees only the t = 1 timer: 4000 bps.
        for s in &series.samples[2..] {
            for node in &s.nodes {
                assert!(
                    (node.goodput_bps - 8000.0).abs() < 1e-6,
                    "at {}: {}",
                    s.time_secs,
                    node.goodput_bps
                );
                assert_eq!(node.senders, 2);
                assert_eq!(node.receivers, 3);
                assert!(node.active);
            }
        }
        for node in &series.samples[1].nodes {
            assert!((node.goodput_bps - 4000.0).abs() < 1e-6);
        }
        // The t = 0 sample has no elapsed interval: goodput reads 0.
        assert!(series.samples[0].nodes.iter().all(|n| n.goodput_bps == 0.0));
    }

    #[test]
    fn probes_observe_departures() {
        let mut runner = ticker_runner(3, 500, 30);
        runner.record_timeseries(SimDuration::from_secs(1));
        runner.schedule_node_event(SimTime::from_secs_f64(4.5), NodeEvent::Crash(NodeId(2)));
        let report = runner.run_until(SimTime::from_secs_f64(20.0));
        let series = report.timeseries.unwrap();
        let at = |t: f64| series.samples.iter().find(|s| s.time_secs == t).unwrap();
        assert!(at(4.0).nodes[2].active);
        assert!(!at(5.0).nodes[2].active);
        assert!(at(5.0).nodes[1].active);
    }

    #[test]
    fn staged_run_until_continues_a_single_tick_chain() {
        // Regression: a second `run_until` on the same runner must continue
        // the existing probe-tick chain, not start a duplicate one (which
        // would double-sample instants and keep the drain check from ever
        // seeing "only the next tick left").
        let mut runner = ticker_runner(2, 1000, 10);
        runner.record_timeseries(SimDuration::from_secs(2));
        let first = runner.run_until(SimTime::from_secs_f64(5.0));
        assert_eq!(first.reason, StopReason::TimeLimit);
        let head: Vec<f64> = first
            .timeseries
            .unwrap()
            .samples
            .iter()
            .map(|s| s.time_secs)
            .collect();
        assert_eq!(head, vec![0.0, 2.0, 4.0]);

        let second = runner.run_until(SimTime::from_secs_f64(100.0));
        assert_eq!(
            second.reason,
            StopReason::Drained,
            "a duplicated tick chain would keep the queue alive to the limit"
        );
        let tail: Vec<f64> = second
            .timeseries
            .unwrap()
            .samples
            .iter()
            .map(|s| s.time_secs)
            .collect();
        assert_eq!(
            tail,
            vec![6.0, 8.0, 10.0],
            "no re-sampled or duplicate instants"
        );
    }

    #[test]
    fn runs_without_probes_report_no_series_and_identical_events() {
        let mut plain = ticker_runner(2, 100, 5);
        let plain_report = plain.run_until(SimTime::from_secs_f64(50.0));
        assert!(plain_report.timeseries.is_none());

        // Installing a probe adds tick events but must not change virtual
        // outcomes (completions, departures) — only the observation.
        let mut probed = ticker_runner(2, 100, 5);
        probed.record_timeseries(SimDuration::from_secs(1));
        let probed_report = probed.run_until(SimTime::from_secs_f64(50.0));
        assert_eq!(plain_report.completion_secs, probed_report.completion_secs);
        assert_eq!(plain_report.departed, probed_report.departed);
        assert!(probed_report.events > plain_report.events);
    }
}
