//! `netsim` — a ModelNet-equivalent network emulator for overlay protocols.
//!
//! The Bullet′ paper evaluates its protocols on ModelNet: real protocol code,
//! emulated hop-by-hop bandwidth, delay and loss. This crate plays the same
//! role for the reproduction, as a deterministic fluid-model emulator on top
//! of the [`desim`] event engine:
//!
//! * [`topology`] — the emulated topologies (full-mesh ModelNet configuration,
//!   constrained-access, high-BDP clique, cascading-slowdown, PlanetLab-like);
//! * [`tcp`] — the per-connection TCP throughput model (Mathis loss limit +
//!   slow start);
//! * [`network`] — per-connection block queues with fair sharing of access
//!   links and the sender-side `in_front`/`wasted` measurements Bullet′'s
//!   flow controller uses;
//! * [`protocol`] — the [`Protocol`] trait implemented by every dissemination
//!   system in this workspace, and the command-buffer [`Ctx`];
//! * [`runner`] — the experiment driver;
//! * [`dynamics`] — scripted bandwidth-change scenarios.

pub mod dynamics;
pub mod network;
pub mod protocol;
pub mod runner;
pub mod tcp;
pub mod topology;
pub mod units;

pub use dynamics::{BandwidthChange, ChangeSchedule, LinkChangeBatch};
pub use network::{BlockReceipt, Network, NodeTraffic};
pub use protocol::{Command, Ctx, Protocol, WireSize};
pub use runner::{RunReport, Runner, StopReason};
pub use topology::{NodeId, NodeSpec, PathSpec, Topology};
pub use units::{gbps, kbps, mbps, to_mbps, BytesPerSec};

#[cfg(test)]
mod runner_tests {
    use super::*;
    use desim::{RngFactory, SimDuration};
    use dissem_codec::{BlockBitmap, BlockId, FileSpec};

    /// A deliberately simple protocol used to exercise the runner: node 0
    /// (the source) pushes every block to every other node directly, keeping
    /// at most `window` blocks queued per receiver; receivers just record
    /// what they get.
    struct Flood {
        id: NodeId,
        spec: FileSpec,
        window: usize,
        have: BlockBitmap,
        next_to_send: Vec<u32>,
        receipts: usize,
    }

    #[derive(Debug)]
    enum Msg {}

    impl WireSize for Msg {
        fn wire_size(&self) -> usize {
            0
        }
    }

    impl Flood {
        fn new(id: NodeId, n: usize, spec: FileSpec, window: usize) -> Self {
            let have = if id == NodeId(0) {
                BlockBitmap::full(spec.num_blocks())
            } else {
                BlockBitmap::new(spec.num_blocks())
            };
            Flood {
                id,
                spec,
                window,
                have,
                next_to_send: vec![0; n],
                receipts: 0,
            }
        }

        fn is_source(&self) -> bool {
            self.id == NodeId(0)
        }

        fn fill_pipe(&mut self, ctx: &mut Ctx<'_, Msg>, to: NodeId) {
            let idx = to.index();
            // `ctx.pending_to` reflects network state before this handler's
            // commands are applied, so track what this call queues separately.
            let mut queued_now = 0usize;
            while ctx.pending_to(to) + queued_now < self.window
                && self.next_to_send[idx] < self.spec.num_blocks()
            {
                let b = BlockId(self.next_to_send[idx]);
                ctx.queue_block(to, b, u64::from(self.spec.block_size(b)));
                self.next_to_send[idx] += 1;
                queued_now += 1;
            }
        }
    }

    impl Protocol<Msg> for Flood {
        fn on_init(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if self.is_source() {
                for i in 1..ctx.num_nodes() as u32 {
                    // Queue the initial window towards each receiver.
                    let to = NodeId(i);
                    for _ in 0..self.window {
                        let next = self.next_to_send[to.index()];
                        if next >= self.spec.num_blocks() {
                            break;
                        }
                        let b = BlockId(next);
                        ctx.queue_block(to, b, u64::from(self.spec.block_size(b)));
                        self.next_to_send[to.index()] += 1;
                    }
                }
            }
        }

        fn on_control(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, _msg: Msg) {}

        fn on_block_received(&mut self, _ctx: &mut Ctx<'_, Msg>, _from: NodeId, r: BlockReceipt) {
            self.have.insert(r.block);
            self.receipts += 1;
        }

        fn on_block_sent(&mut self, ctx: &mut Ctx<'_, Msg>, to: NodeId, _block: BlockId) {
            if self.is_source() {
                self.fill_pipe(ctx, to);
            }
        }

        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _kind: u32, _data: u64) {}

        fn is_complete(&self) -> bool {
            self.have.is_full()
        }
    }

    fn run_flood(n: usize, file_kb: u64, window: usize) -> RunReport {
        let rng = RngFactory::new(11);
        let topo = topology::constrained_access(n);
        let spec = FileSpec::new(file_kb * 1024, 16 * 1024);
        let nodes: Vec<Flood> = (0..n)
            .map(|i| Flood::new(NodeId(i as u32), n, spec, window))
            .collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        runner.run(SimDuration::from_secs(3_000))
    }

    #[test]
    fn direct_flood_completes_all_receivers() {
        let report = run_flood(4, 256, 4);
        assert_eq!(report.reason, StopReason::AllComplete);
        for (i, c) in report.completion_secs.iter().enumerate() {
            if i == 0 {
                continue;
            }
            assert!(c.is_some(), "node {i} did not complete");
        }
        // 256 KB to three receivers over a shared 800 Kbps uplink cannot finish
        // faster than the uplink allows: 3 * 256 KB / 100 KB/s ≈ 7.9 s.
        let slowest = report.finished_times().last().copied().unwrap();
        assert!(slowest > 7.0, "slowest receiver finished impossibly fast: {slowest}");
        assert!(slowest < 200.0, "flood took unreasonably long: {slowest}");
    }

    #[test]
    fn deeper_window_is_not_slower_on_clean_links() {
        let small = run_flood(3, 128, 1);
        let large = run_flood(3, 128, 8);
        let s = small.finished_times().last().copied().unwrap();
        let l = large.finished_times().last().copied().unwrap();
        assert!(
            l <= s + 1e-6,
            "a deeper pipeline should not slow the transfer (window 1: {s}, window 8: {l})"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_flood(5, 128, 3);
        let b = run_flood(5, 128, 3);
        assert_eq!(a.completion_secs, b.completion_secs);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn time_limit_is_respected() {
        let rng = RngFactory::new(11);
        let topo = topology::constrained_access(3);
        let spec = FileSpec::new(10 * 1024 * 1024, 16 * 1024);
        let nodes: Vec<Flood> = (0..3).map(|i| Flood::new(NodeId(i as u32), 3, spec, 2)).collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        let report = runner.run(SimDuration::from_secs(5));
        assert_eq!(report.reason, StopReason::TimeLimit);
        assert!(report.end_time.as_secs_f64() <= 5.0 + 1e-9);
    }

    #[test]
    fn completion_fraction_counts_receivers() {
        let report = run_flood(4, 64, 2);
        assert_eq!(report.completion_fraction(1), 1.0);
    }

    #[test]
    fn link_change_slows_transfer() {
        let rng = RngFactory::new(3);
        let spec = FileSpec::new(512 * 1024, 16 * 1024);

        let run_with = |degrade: bool| -> f64 {
            let topo = topology::constrained_access(2);
            let nodes: Vec<Flood> =
                (0..2).map(|i| Flood::new(NodeId(i as u32), 2, spec, 4)).collect();
            let mut runner = Runner::new(Network::new(topo), nodes, &rng);
            if degrade {
                runner.schedule_link_change(
                    desim::SimTime::from_secs_f64(1.0),
                    LinkChangeBatch {
                        changes: vec![(NodeId(0), NodeId(1), BandwidthChange::Set(kbps(50.0)))],
                    },
                );
            }
            let report = runner.run(SimDuration::from_secs(10_000));
            report.finished_times().last().copied().expect("receiver finished")
        };

        let clean = run_with(false);
        let degraded = run_with(true);
        assert!(
            degraded > clean * 2.0,
            "cutting the path to 50 Kbps must slow the transfer (clean {clean}, degraded {degraded})"
        );
    }

    #[test]
    fn traffic_counters_match_file_volume() {
        let rng = RngFactory::new(2);
        let topo = topology::constrained_access(2);
        let spec = FileSpec::new(128 * 1024, 16 * 1024);
        let nodes: Vec<Flood> = (0..2).map(|i| Flood::new(NodeId(i as u32), 2, spec, 4)).collect();
        let mut runner = Runner::new(Network::new(topo), nodes, &rng);
        let report = runner.run(SimDuration::from_secs(1_000));
        assert_eq!(report.reason, StopReason::AllComplete);
        assert_eq!(runner.network().traffic(NodeId(1)).data_bytes_in, 128 * 1024);
        assert_eq!(runner.network().traffic(NodeId(0)).data_bytes_out, 128 * 1024);
    }
}
