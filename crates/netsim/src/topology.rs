//! Emulated topologies.
//!
//! The paper runs every controlled experiment on a **fully interconnected
//! mesh**: each pair of overlay participants is joined by a dedicated core
//! link with its own bandwidth, propagation delay and loss rate, and each
//! node additionally has inbound and outbound access links. This module
//! describes such topologies and provides generators for every configuration
//! the evaluation uses (§4.1, §4.4, §4.5, §4.7).

use desim::{RngFactory, SimDuration};
use rand::Rng;

use crate::units::{kbps, mbps, BytesPerSec};

/// Identifier of an emulated end host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Access-link characteristics of one end host.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// Outbound (uplink) capacity in bytes/second.
    pub up: BytesPerSec,
    /// Inbound (downlink) capacity in bytes/second.
    pub down: BytesPerSec,
    /// One-way access-link propagation delay.
    pub access_delay: SimDuration,
}

/// Directional core-path characteristics between a pair of hosts.
#[derive(Debug, Clone, Copy)]
pub struct PathSpec {
    /// Core-link capacity in bytes/second.
    pub bw: BytesPerSec,
    /// One-way core propagation delay.
    pub delay: SimDuration,
    /// Packet loss probability on the core link, in `[0, 1)`.
    pub loss: f64,
}

/// A complete emulated topology: per-node access links plus a directional
/// core path for every ordered pair.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    /// `core[a][b]` is the path from `a` to `b`. The diagonal is unused.
    core: Vec<Vec<PathSpec>>,
}

impl Topology {
    /// Builds a topology from explicit node and path tables.
    ///
    /// # Panics
    ///
    /// Panics if `core` is not an `n x n` matrix for `n = nodes.len()`.
    pub fn new(nodes: Vec<NodeSpec>, core: Vec<Vec<PathSpec>>) -> Self {
        let n = nodes.len();
        assert!(n >= 2, "a topology needs at least two nodes");
        assert_eq!(core.len(), n, "core matrix must be n x n");
        for row in &core {
            assert_eq!(row.len(), n, "core matrix must be n x n");
        }
        Topology { nodes, core }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if the topology has no hosts (never true for constructed
    /// topologies; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// Access-link spec of `node`.
    pub fn node(&self, node: NodeId) -> &NodeSpec {
        &self.nodes[node.index()]
    }

    /// Core path spec from `a` to `b`.
    pub fn path(&self, a: NodeId, b: NodeId) -> &PathSpec {
        &self.core[a.index()][b.index()]
    }

    /// Mutable core path spec (used by dynamic-bandwidth scenarios).
    pub fn path_mut(&mut self, a: NodeId, b: NodeId) -> &mut PathSpec {
        &mut self.core[a.index()][b.index()]
    }

    /// One-way end-to-end propagation delay from `a` to `b` (access + core +
    /// access).
    pub fn one_way_delay(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.nodes[a.index()].access_delay
            + self.core[a.index()][b.index()].delay
            + self.nodes[b.index()].access_delay
    }

    /// Round-trip time between `a` and `b`.
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.one_way_delay(a, b) + self.one_way_delay(b, a)
    }
}

fn uniform_delay_ms<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> SimDuration {
    SimDuration::from_secs_f64(rng.gen_range(lo..=hi) / 1000.0)
}

/// The paper's main ModelNet configuration (§4.1): `n` nodes in a full mesh,
/// 6 Mbps access links (1 ms delay), 2 Mbps core links with 5–200 ms
/// propagation delay and uniform random loss in `[0, max_loss]` (3% in the
/// paper), fixed per link for the whole experiment.
pub fn modelnet_mesh(n: usize, max_loss: f64, rng: &RngFactory) -> Topology {
    let mut loss_rng = rng.stream("topology.loss");
    let mut delay_rng = rng.stream("topology.delay");
    let nodes = vec![
        NodeSpec {
            up: mbps(6.0),
            down: mbps(6.0),
            access_delay: SimDuration::from_millis(1),
        };
        n
    ];
    let mut core = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            if a == b {
                row.push(PathSpec {
                    bw: mbps(2.0),
                    delay: SimDuration::ZERO,
                    loss: 0.0,
                });
                continue;
            }
            row.push(PathSpec {
                bw: mbps(2.0),
                delay: uniform_delay_ms(&mut delay_rng, 5.0, 200.0),
                loss: loss_rng.gen_range(0.0..=max_loss.max(0.0)),
            });
        }
        core.push(row);
    }
    Topology::new(nodes, core)
}

/// The constrained-access topology of Fig 9: ample core bandwidth (10 Mbps,
/// 1 ms) but 800 Kbps access links and no random loss.
pub fn constrained_access(n: usize) -> Topology {
    let nodes = vec![
        NodeSpec {
            up: kbps(800.0),
            down: kbps(800.0),
            access_delay: SimDuration::from_millis(1),
        };
        n
    ];
    let path = PathSpec {
        bw: mbps(10.0),
        delay: SimDuration::from_millis(1),
        loss: 0.0,
    };
    let core = vec![vec![path; n]; n];
    Topology::new(nodes, core)
}

/// The flow-control topology of Figs 10–11: `n` participants joined by
/// 10 Mbps, 100 ms links (high bandwidth-delay product), with uniform random
/// loss in `[0, max_loss]` on the core (0 for Fig 10, 1.5% for Fig 11).
pub fn high_bdp_clique(n: usize, max_loss: f64, rng: &RngFactory) -> Topology {
    let mut loss_rng = rng.stream("topology.loss");
    let nodes = vec![
        NodeSpec {
            up: mbps(10.0),
            down: mbps(10.0),
            access_delay: SimDuration::from_millis(1),
        };
        n
    ];
    let mut core = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            let loss = if a == b || max_loss <= 0.0 {
                0.0
            } else {
                loss_rng.gen_range(0.0..=max_loss)
            };
            row.push(PathSpec {
                bw: mbps(10.0),
                delay: SimDuration::from_millis(50),
                loss,
            });
        }
        core.push(row);
    }
    Topology::new(nodes, core)
}

/// The cascading-slowdown topology of Fig 12: `fast_nodes + 1` participants
/// (the source plus `fast_nodes - 1` well-connected peers) joined by 10 Mbps,
/// 1 ms links, plus one final "victim" node reached over dedicated 5 Mbps,
/// 100 ms links.
pub fn cascade_topology(fast_nodes: usize) -> Topology {
    let n = fast_nodes + 1;
    let victim = n - 1;
    // Every participant (including the source) has a 10 Mbps access link, so
    // fresh data enters the well-connected group at 10 Mbps and the victim's
    // dedicated 5 Mbps links are initially not the bottleneck.
    let mut nodes = vec![
        NodeSpec {
            up: mbps(10.0),
            down: mbps(10.0),
            access_delay: SimDuration::from_micros(100),
        };
        n
    ];
    // The victim only downloads; give it headroom so its own access link is
    // never the limit (the experiment is about its dedicated core paths).
    nodes[victim] = NodeSpec {
        up: mbps(10.0),
        down: mbps(30.0),
        access_delay: SimDuration::from_micros(100),
    };
    let mut core = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            let spec = if a == victim || b == victim {
                PathSpec {
                    bw: mbps(5.0),
                    delay: SimDuration::from_millis(50),
                    loss: 0.0,
                }
            } else {
                PathSpec {
                    bw: mbps(10.0),
                    delay: SimDuration::from_micros(500),
                    loss: 0.0,
                }
            };
            row.push(spec);
        }
        core.push(row);
    }
    Topology::new(nodes, core)
}

/// A PlanetLab-like wide-area topology (§4.7): heterogeneous access links
/// drawn from a long-tailed mix of site classes, transcontinental RTTs and a
/// small background loss rate. No two "sites" share bottlenecks, mirroring
/// the paper's one-node-per-site deployment.
pub fn planetlab_like(n: usize, rng: &RngFactory) -> Topology {
    let mut class_rng = rng.stream("topology.pl.class");
    let mut delay_rng = rng.stream("topology.pl.delay");
    let mut loss_rng = rng.stream("topology.pl.loss");

    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        // Site classes: well-provisioned university (10 Mbps), DSL-ish (2 Mbps),
        // congested international (1 Mbps).
        let class: f64 = class_rng.gen();
        let (up, down) = if class < 0.6 {
            (mbps(10.0), mbps(10.0))
        } else if class < 0.9 {
            (mbps(2.0), mbps(4.0))
        } else {
            (mbps(1.0), mbps(1.5))
        };
        nodes.push(NodeSpec {
            up,
            down,
            access_delay: SimDuration::from_millis(1),
        });
    }
    let mut core = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            if a == b {
                row.push(PathSpec {
                    bw: mbps(100.0),
                    delay: SimDuration::ZERO,
                    loss: 0.0,
                });
                continue;
            }
            row.push(PathSpec {
                // Wide-area cores rarely bottleneck below the access links.
                bw: mbps(20.0),
                delay: uniform_delay_ms(&mut delay_rng, 10.0, 150.0),
                loss: loss_rng.gen_range(0.0..=0.01),
            });
        }
        core.push(row);
    }
    Topology::new(nodes, core)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modelnet_mesh_matches_paper_parameters() {
        let rng = RngFactory::new(1);
        let t = modelnet_mesh(20, 0.03, &rng);
        assert_eq!(t.len(), 20);
        for id in t.node_ids() {
            assert_eq!(t.node(id).up, mbps(6.0));
            assert_eq!(t.node(id).access_delay, SimDuration::from_millis(1));
        }
        let mut max_loss: f64 = 0.0;
        let mut max_delay = SimDuration::ZERO;
        for a in t.node_ids() {
            for b in t.node_ids() {
                if a == b {
                    continue;
                }
                let p = t.path(a, b);
                assert_eq!(p.bw, mbps(2.0));
                assert!(p.loss >= 0.0 && p.loss <= 0.03);
                assert!(p.delay >= SimDuration::from_millis(5));
                assert!(p.delay <= SimDuration::from_millis(200));
                max_loss = max_loss.max(p.loss);
                max_delay = max_delay.max(p.delay);
            }
        }
        assert!(max_loss > 0.0, "some link should have loss");
        assert!(
            max_delay > SimDuration::from_millis(100),
            "delays should span the range"
        );
    }

    #[test]
    fn topology_is_deterministic_per_seed() {
        let a = modelnet_mesh(10, 0.03, &RngFactory::new(7));
        let b = modelnet_mesh(10, 0.03, &RngFactory::new(7));
        let c = modelnet_mesh(10, 0.03, &RngFactory::new(8));
        let n0 = NodeId(0);
        let n5 = NodeId(5);
        assert_eq!(a.path(n0, n5).loss, b.path(n0, n5).loss);
        assert_eq!(a.path(n0, n5).delay, b.path(n0, n5).delay);
        assert!(
            a.path(n0, n5).loss != c.path(n0, n5).loss
                || a.path(n0, n5).delay != c.path(n0, n5).delay
        );
    }

    #[test]
    fn rtt_adds_both_directions() {
        let t = constrained_access(4);
        let rtt = t.rtt(NodeId(0), NodeId(1));
        // 2 * (1ms access + 1ms core + 1ms access) = 6ms.
        assert_eq!(rtt, SimDuration::from_millis(6));
    }

    #[test]
    fn cascade_topology_shapes() {
        let t = cascade_topology(7);
        assert_eq!(t.len(), 8);
        let victim = NodeId(7);
        assert_eq!(t.path(NodeId(0), victim).bw, mbps(5.0));
        assert_eq!(t.path(NodeId(0), NodeId(1)).bw, mbps(10.0));
        assert_eq!(t.node(NodeId(0)).up, mbps(10.0));
        assert_eq!(t.node(victim).down, mbps(30.0));
    }

    #[test]
    fn planetlab_like_is_heterogeneous() {
        let t = planetlab_like(41, &RngFactory::new(3));
        let ups: std::collections::BTreeSet<u64> =
            t.node_ids().map(|id| t.node(id).up as u64).collect();
        assert!(
            ups.len() > 1,
            "access bandwidths should differ across sites"
        );
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_topology_rejected() {
        Topology::new(
            vec![NodeSpec {
                up: 1.0,
                down: 1.0,
                access_delay: SimDuration::ZERO,
            }],
            vec![vec![PathSpec {
                bw: 1.0,
                delay: SimDuration::ZERO,
                loss: 0.0,
            }]],
        );
    }
}
