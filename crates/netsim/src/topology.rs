//! Emulated topologies and their link graph.
//!
//! The paper runs every controlled experiment on a **fully interconnected
//! mesh**: each pair of overlay participants is joined by a core link with
//! its own bandwidth, propagation delay and loss rate, and each node
//! additionally has inbound and outbound access links. This module describes
//! such topologies and provides generators for every configuration the
//! evaluation uses (§4.1, §4.4, §4.5, §4.7).
//!
//! ## The link graph
//!
//! Beyond the per-pair path table, a topology exposes an explicit set of
//! **directed links** ([`LinkId`]), the capacity constraints of the global
//! max-min fluid model (see [`crate::network`] and `docs/NETWORK_MODEL.md`):
//!
//! * one **access uplink** and one **access downlink** per node, with the
//!   capacities of its [`NodeSpec`];
//! * a set of **core links**. By default every ordered pair owns a dedicated
//!   core link (the paper's ModelNet meshes), but pairs can be remapped onto
//!   a **shared** core link with [`Topology::share_core`] — the substrate of
//!   the shared-bottleneck and cross-traffic scenarios (`fig18`/`fig19`).
//!
//! The path from `a` to `b` traverses exactly three links: `a`'s uplink, the
//! core link `link_of(a → b)`, and `b`'s downlink
//! ([`Topology::links_on_path`]). A core link's usable capacity is discounted
//! by its loss rate ([`Topology::link_capacity`]): a fraction `loss` of every
//! transmitted byte is retransmission overhead that the fluid model charges
//! as lost capacity.

use desim::{RngFactory, SimDuration};
use rand::Rng;

use crate::units::{kbps, mbps, BytesPerSec};

/// Identifier of an emulated end host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Access-link characteristics of one end host.
#[derive(Debug, Clone, Copy)]
pub struct NodeSpec {
    /// Outbound (uplink) capacity in bytes/second.
    pub up: BytesPerSec,
    /// Inbound (downlink) capacity in bytes/second.
    pub down: BytesPerSec,
    /// One-way access-link propagation delay.
    pub access_delay: SimDuration,
}

/// Directional core-path characteristics between a pair of hosts.
#[derive(Debug, Clone, Copy)]
pub struct PathSpec {
    /// Core-link capacity in bytes/second.
    pub bw: BytesPerSec,
    /// One-way core propagation delay.
    pub delay: SimDuration,
    /// Packet loss probability on the core link, in `[0, 1)`.
    pub loss: f64,
}

/// Identifier of a directed link in a topology's link graph: the unit of
/// capacity sharing in the global max-min fluid model.
///
/// Link ids are dense: for an `n`-node topology, ids `0..n` are the access
/// uplinks, `n..2n` the access downlinks, and `2n..` the core links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Numeric index into per-link tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed core link: the capacity every path mapped onto it shares.
#[derive(Debug, Clone)]
struct CoreLink {
    /// Raw capacity in bytes/second.
    capacity: BytesPerSec,
    /// Packet loss probability, in `[0, 1)`; discounts the usable capacity.
    loss: f64,
    /// Ordered pairs whose core path rides this link (kept in sync with
    /// `Topology::link_of` so capacity changes can mirror into the per-pair
    /// `PathSpec` view).
    pairs: Vec<(u32, u32)>,
}

/// Sentinel for the unused diagonal of the pair → core-link table.
const NO_LINK: u32 = u32::MAX;

/// How the core of the mesh is represented.
///
/// The paper's controlled experiments need per-pair state (dedicated core
/// links with individual bandwidth/delay/loss, remappable onto shared
/// bottlenecks), which costs O(n²) memory — fine at ModelNet scale (tens of
/// nodes), prohibitive at 10⁴. Large-swarm scaling runs (`fig20`) instead use
/// a **uniform** core: one unconstrained shared link and per-pair delays
/// derived from O(n) per-node jitter, so the whole topology is O(n).
#[derive(Debug, Clone)]
enum CoreModel {
    /// Explicit per-pair path table and core-link graph.
    Dense {
        /// `core[a][b]` is the path from `a` to `b`. The diagonal is unused.
        core: Vec<Vec<PathSpec>>,
        /// The core links; by construction every off-diagonal pair starts
        /// with a dedicated one ([`Topology::share_core`] remaps pairs onto
        /// shared ones).
        core_links: Vec<CoreLink>,
        /// `link_of[a][b]` is the index (into `core_links`) of the core link
        /// the `a → b` path rides. The diagonal holds [`NO_LINK`].
        link_of: Vec<Vec<u32>>,
    },
    /// One shared, unconstrained core link (id `2n`) carrying every pair;
    /// `path(a, b)` is synthesised as `bw = +inf`, a uniform `loss`, and
    /// `delay = jitter[a] + jitter[b]`.
    Uniform {
        /// Per-node half-delays; the `a → b` core delay is their sum.
        jitter: Vec<SimDuration>,
        /// Uniform core loss rate (bounds every flow's Mathis ceiling).
        loss: f64,
    },
}

/// A complete emulated topology: per-node access links plus a directional
/// core path for every ordered pair, backed by an explicit link graph.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: Vec<NodeSpec>,
    core_model: CoreModel,
}

impl Topology {
    /// Builds a topology from explicit node and path tables. Every ordered
    /// pair gets a dedicated core link whose capacity and loss mirror its
    /// [`PathSpec`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is not an `n x n` matrix for `n = nodes.len()`.
    pub fn new(nodes: Vec<NodeSpec>, core: Vec<Vec<PathSpec>>) -> Self {
        let n = nodes.len();
        assert!(n >= 2, "a topology needs at least two nodes");
        assert_eq!(core.len(), n, "core matrix must be n x n");
        for row in &core {
            assert_eq!(row.len(), n, "core matrix must be n x n");
        }
        let mut core_links = Vec::with_capacity(n * n - n);
        let mut link_of = vec![vec![NO_LINK; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                link_of[a][b] = core_links.len() as u32;
                core_links.push(CoreLink {
                    capacity: core[a][b].bw,
                    loss: core[a][b].loss,
                    pairs: vec![(a as u32, b as u32)],
                });
            }
        }
        Topology {
            nodes,
            core_model: CoreModel::Dense {
                core,
                core_links,
                link_of,
            },
        }
    }

    /// Builds an O(n)-memory topology for large-swarm scaling runs: `n`
    /// identical access links and a single **unconstrained** shared core
    /// link carrying every ordered pair (no per-pair state). The `a → b`
    /// core delay is `jitter[a] + jitter[b]`.
    ///
    /// The resulting topology rejects per-pair core surgery:
    /// [`Topology::set_core_bw`], [`Topology::scale_core_bw`] and
    /// [`Topology::share_core`] panic on it.
    ///
    /// # Panics
    ///
    /// Panics if `jitter.len() != nodes.len()` or fewer than two nodes.
    pub fn new_uniform(nodes: Vec<NodeSpec>, jitter: Vec<SimDuration>, loss: f64) -> Self {
        let n = nodes.len();
        assert!(n >= 2, "a topology needs at least two nodes");
        assert_eq!(jitter.len(), n, "one jitter entry per node");
        assert!((0.0..1.0).contains(&loss), "loss must be in [0, 1)");
        Topology {
            nodes,
            core_model: CoreModel::Uniform { jitter, loss },
        }
    }

    /// Number of hosts.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns true if the topology has no hosts (never true for constructed
    /// topologies; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// Access-link spec of `node`.
    pub fn node(&self, node: NodeId) -> &NodeSpec {
        &self.nodes[node.index()]
    }

    /// Core path spec from `a` to `b`. Returned by value: on uniform-core
    /// topologies the spec is synthesised, not stored.
    pub fn path(&self, a: NodeId, b: NodeId) -> PathSpec {
        match &self.core_model {
            CoreModel::Dense { core, .. } => core[a.index()][b.index()],
            CoreModel::Uniform { jitter, loss } => PathSpec {
                bw: f64::INFINITY,
                delay: if a == b {
                    SimDuration::ZERO
                } else {
                    jitter[a.index()] + jitter[b.index()]
                },
                loss: if a == b { 0.0 } else { *loss },
            },
        }
    }

    /// Sets the capacity of the core link carrying `a → b` to `bw`
    /// (bytes/second, floored at 1). On a shared link this affects **every**
    /// pair mapped onto it; all affected `PathSpec.bw` mirrors are updated.
    /// Returns the changed link so callers can re-price flows on it.
    pub fn set_core_bw(&mut self, a: NodeId, b: NodeId, bw: BytesPerSec) -> LinkId {
        let j = self.core_link_index(a, b);
        let bw = bw.max(1.0);
        let CoreModel::Dense {
            core, core_links, ..
        } = &mut self.core_model
        else {
            unreachable!("core_link_index rejects uniform-core topologies");
        };
        core_links[j].capacity = bw;
        for &(x, y) in &core_links[j].pairs {
            core[x as usize][y as usize].bw = bw;
        }
        self.core_link_id(j)
    }

    /// Multiplies the capacity of the core link carrying `a → b` by `factor`
    /// (result floored at 1 byte/second). See [`Topology::set_core_bw`] for
    /// shared-link semantics.
    pub fn scale_core_bw(&mut self, a: NodeId, b: NodeId, factor: f64) -> LinkId {
        let bw = (self.path(a, b).bw * factor).max(1.0);
        self.set_core_bw(a, b, bw)
    }

    /// Remaps the given ordered pairs onto one **shared** core link of the
    /// given capacity and loss rate, creating it. The pairs' `PathSpec`
    /// bandwidth/loss mirrors are rewritten to match (delays are kept).
    /// Returns the new link's id.
    ///
    /// Normally called while assembling a topology, but remapping through
    /// [`crate::Network::topology_mut`] mid-run is safe too: flows already in
    /// flight keep the links they registered on until they next go idle, and
    /// later activations ride the new link.
    ///
    /// ```
    /// use netsim::units::mbps;
    /// use netsim::{topology, NodeId};
    ///
    /// let mut topo = topology::constrained_access(4);
    /// let shared = topo.share_core(
    ///     &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
    ///     mbps(2.0),
    ///     0.0,
    /// );
    /// // Both pairs now ride — and contend on — the same 2 Mbps link.
    /// assert_eq!(topo.core_link(NodeId(0), NodeId(1)), shared);
    /// assert_eq!(topo.core_link(NodeId(2), NodeId(3)), shared);
    /// assert_eq!(topo.link_capacity(shared), mbps(2.0));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `pairs` is empty or names a diagonal pair.
    pub fn share_core(
        &mut self,
        pairs: &[(NodeId, NodeId)],
        capacity: BytesPerSec,
        loss: f64,
    ) -> LinkId {
        assert!(
            !pairs.is_empty(),
            "a shared core link needs at least one pair"
        );
        let CoreModel::Dense {
            core,
            core_links,
            link_of,
        } = &mut self.core_model
        else {
            panic!("a uniform-core topology has no per-pair core links to remap");
        };
        let j = core_links.len();
        let mut link = CoreLink {
            capacity: capacity.max(1.0),
            loss,
            pairs: Vec::with_capacity(pairs.len()),
        };
        for &(a, b) in pairs {
            assert!(a != b, "a core link cannot join a node to itself");
            let old = link_of[a.index()][b.index()];
            if old != NO_LINK {
                let key = (a.0, b.0);
                core_links[old as usize].pairs.retain(|&p| p != key);
            }
            link_of[a.index()][b.index()] = j as u32;
            link.pairs.push((a.0, b.0));
            let path = &mut core[a.index()][b.index()];
            path.bw = link.capacity;
            path.loss = loss;
        }
        core_links.push(link);
        self.core_link_id(j)
    }

    /// Total number of directed links: `2n` access links plus the core links
    /// (a single shared one on uniform-core topologies).
    pub fn num_links(&self) -> usize {
        let core = match &self.core_model {
            CoreModel::Dense { core_links, .. } => core_links.len(),
            CoreModel::Uniform { .. } => 1,
        };
        2 * self.nodes.len() + core
    }

    /// The access uplink of `node`.
    pub fn uplink(&self, node: NodeId) -> LinkId {
        LinkId(node.0)
    }

    /// The access downlink of `node`.
    pub fn downlink(&self, node: NodeId) -> LinkId {
        LinkId(self.nodes.len() as u32 + node.0)
    }

    /// The core link the `a → b` path rides.
    pub fn core_link(&self, a: NodeId, b: NodeId) -> LinkId {
        match &self.core_model {
            CoreModel::Dense { .. } => self.core_link_id(self.core_link_index(a, b)),
            CoreModel::Uniform { .. } => {
                assert!(a != b, "no core link joins a node to itself");
                self.core_link_id(0)
            }
        }
    }

    /// The three links the `a → b` path traverses, in path order: `a`'s
    /// uplink, the core link, `b`'s downlink.
    pub fn links_on_path(&self, a: NodeId, b: NodeId) -> [LinkId; 3] {
        [self.uplink(a), self.core_link(a, b), self.downlink(b)]
    }

    /// Usable capacity of `link` in bytes/second. Access links carry their
    /// raw [`NodeSpec`] capacity; a core link's raw capacity is discounted by
    /// its loss rate (`capacity * (1 - loss)`): lost packets are retransmitted
    /// and the retransmissions occupy the link.
    pub fn link_capacity(&self, link: LinkId) -> BytesPerSec {
        let n = self.nodes.len();
        let i = link.index();
        if i < n {
            self.nodes[i].up
        } else if i < 2 * n {
            self.nodes[i - n].down
        } else {
            match &self.core_model {
                CoreModel::Dense { core_links, .. } => {
                    let l = &core_links[i - 2 * n];
                    (l.capacity * (1.0 - l.loss)).max(1.0)
                }
                CoreModel::Uniform { .. } => f64::INFINITY,
            }
        }
    }

    fn core_link_index(&self, a: NodeId, b: NodeId) -> usize {
        let CoreModel::Dense { link_of, .. } = &self.core_model else {
            panic!("a uniform-core topology has no per-pair core links to remap");
        };
        let j = link_of[a.index()][b.index()];
        assert!(j != NO_LINK, "no core link joins a node to itself");
        j as usize
    }

    fn core_link_id(&self, core_index: usize) -> LinkId {
        LinkId((2 * self.nodes.len() + core_index) as u32)
    }

    /// One-way end-to-end propagation delay from `a` to `b` (access + core +
    /// access).
    pub fn one_way_delay(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.nodes[a.index()].access_delay
            + self.path(a, b).delay
            + self.nodes[b.index()].access_delay
    }

    /// Round-trip time between `a` and `b`.
    pub fn rtt(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.one_way_delay(a, b) + self.one_way_delay(b, a)
    }
}

fn uniform_delay_ms<R: Rng>(rng: &mut R, lo: f64, hi: f64) -> SimDuration {
    SimDuration::from_secs_f64(rng.gen_range(lo..=hi) / 1000.0)
}

/// The paper's main ModelNet configuration (§4.1): `n` nodes in a full mesh,
/// 6 Mbps access links (1 ms delay), 2 Mbps core links with 5–200 ms
/// propagation delay and uniform random loss in `[0, max_loss]` (3% in the
/// paper), fixed per link for the whole experiment.
pub fn modelnet_mesh(n: usize, max_loss: f64, rng: &RngFactory) -> Topology {
    let mut loss_rng = rng.stream("topology.loss");
    let mut delay_rng = rng.stream("topology.delay");
    let nodes = vec![
        NodeSpec {
            up: mbps(6.0),
            down: mbps(6.0),
            access_delay: SimDuration::from_millis(1),
        };
        n
    ];
    let mut core = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            if a == b {
                row.push(PathSpec {
                    bw: mbps(2.0),
                    delay: SimDuration::ZERO,
                    loss: 0.0,
                });
                continue;
            }
            row.push(PathSpec {
                bw: mbps(2.0),
                delay: uniform_delay_ms(&mut delay_rng, 5.0, 200.0),
                loss: loss_rng.gen_range(0.0..=max_loss.max(0.0)),
            });
        }
        core.push(row);
    }
    Topology::new(nodes, core)
}

/// The constrained-access topology of Fig 9: ample core bandwidth (10 Mbps,
/// 1 ms) but 800 Kbps access links and no random loss.
pub fn constrained_access(n: usize) -> Topology {
    let nodes = vec![
        NodeSpec {
            up: kbps(800.0),
            down: kbps(800.0),
            access_delay: SimDuration::from_millis(1),
        };
        n
    ];
    let path = PathSpec {
        bw: mbps(10.0),
        delay: SimDuration::from_millis(1),
        loss: 0.0,
    };
    let core = vec![vec![path; n]; n];
    Topology::new(nodes, core)
}

/// The flow-control topology of Figs 10–11: `n` participants joined by
/// 10 Mbps, 100 ms links (high bandwidth-delay product), with uniform random
/// loss in `[0, max_loss]` on the core (0 for Fig 10, 1.5% for Fig 11).
pub fn high_bdp_clique(n: usize, max_loss: f64, rng: &RngFactory) -> Topology {
    let mut loss_rng = rng.stream("topology.loss");
    let nodes = vec![
        NodeSpec {
            up: mbps(10.0),
            down: mbps(10.0),
            access_delay: SimDuration::from_millis(1),
        };
        n
    ];
    let mut core = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            let loss = if a == b || max_loss <= 0.0 {
                0.0
            } else {
                loss_rng.gen_range(0.0..=max_loss)
            };
            row.push(PathSpec {
                bw: mbps(10.0),
                delay: SimDuration::from_millis(50),
                loss,
            });
        }
        core.push(row);
    }
    Topology::new(nodes, core)
}

/// The cascading-slowdown topology of Fig 12: `fast_nodes + 1` participants
/// (the source plus `fast_nodes - 1` well-connected peers) joined by 10 Mbps,
/// 1 ms links, plus one final "victim" node reached over dedicated 5 Mbps,
/// 100 ms links.
pub fn cascade_topology(fast_nodes: usize) -> Topology {
    let n = fast_nodes + 1;
    let victim = n - 1;
    // Every participant (including the source) has a 10 Mbps access link, so
    // fresh data enters the well-connected group at 10 Mbps and the victim's
    // dedicated 5 Mbps links are initially not the bottleneck.
    let mut nodes = vec![
        NodeSpec {
            up: mbps(10.0),
            down: mbps(10.0),
            access_delay: SimDuration::from_micros(100),
        };
        n
    ];
    // The victim only downloads; give it headroom so its own access link is
    // never the limit (the experiment is about its dedicated core paths).
    nodes[victim] = NodeSpec {
        up: mbps(10.0),
        down: mbps(30.0),
        access_delay: SimDuration::from_micros(100),
    };
    let mut core = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            let spec = if a == victim || b == victim {
                PathSpec {
                    bw: mbps(5.0),
                    delay: SimDuration::from_millis(50),
                    loss: 0.0,
                }
            } else {
                PathSpec {
                    bw: mbps(10.0),
                    delay: SimDuration::from_micros(500),
                    loss: 0.0,
                }
            };
            row.push(spec);
        }
        core.push(row);
    }
    Topology::new(nodes, core)
}

/// A PlanetLab-like wide-area topology (§4.7): heterogeneous access links
/// drawn from a long-tailed mix of site classes, transcontinental RTTs and a
/// small background loss rate. No two "sites" share bottlenecks, mirroring
/// the paper's one-node-per-site deployment.
pub fn planetlab_like(n: usize, rng: &RngFactory) -> Topology {
    let mut class_rng = rng.stream("topology.pl.class");
    let mut delay_rng = rng.stream("topology.pl.delay");
    let mut loss_rng = rng.stream("topology.pl.loss");

    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        // Site classes: well-provisioned university (10 Mbps), DSL-ish (2 Mbps),
        // congested international (1 Mbps).
        let class: f64 = class_rng.gen();
        let (up, down) = if class < 0.6 {
            (mbps(10.0), mbps(10.0))
        } else if class < 0.9 {
            (mbps(2.0), mbps(4.0))
        } else {
            (mbps(1.0), mbps(1.5))
        };
        nodes.push(NodeSpec {
            up,
            down,
            access_delay: SimDuration::from_millis(1),
        });
    }
    let mut core = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            if a == b {
                row.push(PathSpec {
                    bw: mbps(100.0),
                    delay: SimDuration::ZERO,
                    loss: 0.0,
                });
                continue;
            }
            row.push(PathSpec {
                // Wide-area cores rarely bottleneck below the access links.
                bw: mbps(20.0),
                delay: uniform_delay_ms(&mut delay_rng, 10.0, 150.0),
                loss: loss_rng.gen_range(0.0..=0.01),
            });
        }
        core.push(row);
    }
    Topology::new(nodes, core)
}

/// A mesh whose entire core is **one shared bottleneck link**: `n` nodes
/// with 6 Mbps access links (1 ms delay) whose every ordered pair rides a
/// single core link of `core` bytes/second with loss rate `loss`; per-pair
/// propagation delays are uniform in 5–200 ms like the ModelNet mesh. This is
/// the substrate of the shared-bottleneck (`fig18`) and cross-traffic
/// (`fig19`) scenarios: all overlay traffic — from however many concurrent
/// meshes — contends for the one core link.
pub fn shared_core_mesh(n: usize, core: BytesPerSec, loss: f64, rng: &RngFactory) -> Topology {
    let mut delay_rng = rng.stream("topology.shared.delay");
    let nodes = vec![
        NodeSpec {
            up: mbps(6.0),
            down: mbps(6.0),
            access_delay: SimDuration::from_millis(1),
        };
        n
    ];
    let mut core_paths = Vec::with_capacity(n);
    for a in 0..n {
        let mut row = Vec::with_capacity(n);
        for b in 0..n {
            let delay = if a == b {
                SimDuration::ZERO
            } else {
                uniform_delay_ms(&mut delay_rng, 5.0, 200.0)
            };
            row.push(PathSpec {
                bw: core,
                delay,
                loss,
            });
        }
        core_paths.push(row);
    }
    let mut topo = Topology::new(nodes, core_paths);
    let pairs: Vec<(NodeId, NodeId)> = (0..n as u32)
        .flat_map(|a| (0..n as u32).filter_map(move |b| (a != b).then_some((NodeId(a), NodeId(b)))))
        .collect();
    topo.share_core(&pairs, core, loss);
    topo
}

/// The large-swarm scaling topology (`fig20`): `n` well-provisioned nodes
/// (20 Mbps access links, 1 ms delay) over a **uniform, unconstrained** core
/// with 3% loss and wide-area delays. The whole topology is O(n) in memory —
/// per-pair core delays are `jitter[a] + jitter[b]` with per-node jitter
/// uniform in 20–100 ms (pair delays 40–200 ms), where a dense mesh at
/// n = 10⁴ would need ~10⁸ path entries.
///
/// The parameters are chosen so every flow is limited by its own TCP
/// (Mathis) ceiling rather than by link contention: at 3% loss the ceiling
/// of even the fastest pair (≈ 84 ms RTT) is ≈ 120 KB/s, so a node needs
/// 20+ concurrent transfers before its 2.5 MB/s access link could saturate
/// — more than Bullet′'s peer-set sizes reach. The fluid solver therefore
/// prunes every link from component discovery and reprices are O(1), which
/// is exactly the regime a scaling run wants: the emulator's per-event cost,
/// not the solver's component size, is what is being measured.
pub fn uniform_swarm(n: usize, rng: &RngFactory) -> Topology {
    let mut delay_rng = rng.stream("topology.uniform.delay");
    let nodes = vec![
        NodeSpec {
            up: mbps(20.0),
            down: mbps(20.0),
            access_delay: SimDuration::from_millis(1),
        };
        n
    ];
    let jitter = (0..n)
        .map(|_| uniform_delay_ms(&mut delay_rng, 20.0, 100.0))
        .collect();
    Topology::new_uniform(nodes, jitter, 0.03)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modelnet_mesh_matches_paper_parameters() {
        let rng = RngFactory::new(1);
        let t = modelnet_mesh(20, 0.03, &rng);
        assert_eq!(t.len(), 20);
        for id in t.node_ids() {
            assert_eq!(t.node(id).up, mbps(6.0));
            assert_eq!(t.node(id).access_delay, SimDuration::from_millis(1));
        }
        let mut max_loss: f64 = 0.0;
        let mut max_delay = SimDuration::ZERO;
        for a in t.node_ids() {
            for b in t.node_ids() {
                if a == b {
                    continue;
                }
                let p = t.path(a, b);
                assert_eq!(p.bw, mbps(2.0));
                assert!(p.loss >= 0.0 && p.loss <= 0.03);
                assert!(p.delay >= SimDuration::from_millis(5));
                assert!(p.delay <= SimDuration::from_millis(200));
                max_loss = max_loss.max(p.loss);
                max_delay = max_delay.max(p.delay);
            }
        }
        assert!(max_loss > 0.0, "some link should have loss");
        assert!(
            max_delay > SimDuration::from_millis(100),
            "delays should span the range"
        );
    }

    #[test]
    fn topology_is_deterministic_per_seed() {
        let a = modelnet_mesh(10, 0.03, &RngFactory::new(7));
        let b = modelnet_mesh(10, 0.03, &RngFactory::new(7));
        let c = modelnet_mesh(10, 0.03, &RngFactory::new(8));
        let n0 = NodeId(0);
        let n5 = NodeId(5);
        assert_eq!(a.path(n0, n5).loss, b.path(n0, n5).loss);
        assert_eq!(a.path(n0, n5).delay, b.path(n0, n5).delay);
        assert!(
            a.path(n0, n5).loss != c.path(n0, n5).loss
                || a.path(n0, n5).delay != c.path(n0, n5).delay
        );
    }

    #[test]
    fn rtt_adds_both_directions() {
        let t = constrained_access(4);
        let rtt = t.rtt(NodeId(0), NodeId(1));
        // 2 * (1ms access + 1ms core + 1ms access) = 6ms.
        assert_eq!(rtt, SimDuration::from_millis(6));
    }

    #[test]
    fn cascade_topology_shapes() {
        let t = cascade_topology(7);
        assert_eq!(t.len(), 8);
        let victim = NodeId(7);
        assert_eq!(t.path(NodeId(0), victim).bw, mbps(5.0));
        assert_eq!(t.path(NodeId(0), NodeId(1)).bw, mbps(10.0));
        assert_eq!(t.node(NodeId(0)).up, mbps(10.0));
        assert_eq!(t.node(victim).down, mbps(30.0));
    }

    #[test]
    fn planetlab_like_is_heterogeneous() {
        let t = planetlab_like(41, &RngFactory::new(3));
        let ups: std::collections::BTreeSet<u64> =
            t.node_ids().map(|id| t.node(id).up as u64).collect();
        assert!(
            ups.len() > 1,
            "access bandwidths should differ across sites"
        );
    }

    #[test]
    fn dedicated_links_mirror_path_specs() {
        let t = constrained_access(3);
        assert_eq!(t.num_links(), 2 * 3 + 6, "2n access + n(n-1) core links");
        let a = NodeId(0);
        let b = NodeId(1);
        assert_eq!(t.link_capacity(t.uplink(a)), kbps(800.0));
        assert_eq!(t.link_capacity(t.downlink(b)), kbps(800.0));
        assert_eq!(t.link_capacity(t.core_link(a, b)), mbps(10.0));
        // Paths traverse uplink, core, downlink in order; directions are
        // distinct links.
        let [up, core, down] = t.links_on_path(a, b);
        assert_eq!(up, t.uplink(a));
        assert_eq!(core, t.core_link(a, b));
        assert_eq!(down, t.downlink(b));
        assert_ne!(t.core_link(a, b), t.core_link(b, a));
    }

    #[test]
    fn set_core_bw_updates_link_and_path_views() {
        let mut t = constrained_access(3);
        let link = t.set_core_bw(NodeId(0), NodeId(1), mbps(1.0));
        assert_eq!(t.path(NodeId(0), NodeId(1)).bw, mbps(1.0));
        assert_eq!(t.link_capacity(link), mbps(1.0));
        // Other pairs untouched.
        assert_eq!(t.path(NodeId(1), NodeId(0)).bw, mbps(10.0));
        t.scale_core_bw(NodeId(0), NodeId(1), 0.5);
        assert_eq!(t.path(NodeId(0), NodeId(1)).bw, mbps(0.5));
    }

    #[test]
    fn shared_core_joins_pairs_onto_one_link() {
        let mut t = constrained_access(4);
        let link = t.share_core(
            &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
            mbps(2.0),
            0.01,
        );
        assert_eq!(t.core_link(NodeId(0), NodeId(1)), link);
        assert_eq!(t.core_link(NodeId(2), NodeId(3)), link);
        // Unmapped pairs keep their dedicated links.
        assert_ne!(t.core_link(NodeId(1), NodeId(0)), link);
        // The per-pair view mirrors the shared link.
        assert_eq!(t.path(NodeId(0), NodeId(1)).bw, mbps(2.0));
        assert_eq!(t.path(NodeId(2), NodeId(3)).loss, 0.01);
        // Loss discounts the usable capacity.
        assert!((t.link_capacity(link) - mbps(2.0) * 0.99).abs() < 1e-9);
        // A capacity change through either pair reaches every mapped pair.
        t.set_core_bw(NodeId(0), NodeId(1), mbps(1.0));
        assert_eq!(t.path(NodeId(2), NodeId(3)).bw, mbps(1.0));
    }

    #[test]
    fn shared_core_mesh_has_one_core_bottleneck() {
        let rng = RngFactory::new(4);
        let t = shared_core_mesh(6, mbps(2.0), 0.0, &rng);
        let shared = t.core_link(NodeId(0), NodeId(1));
        for a in t.node_ids() {
            for b in t.node_ids() {
                if a == b {
                    continue;
                }
                assert_eq!(t.core_link(a, b), shared);
            }
        }
        assert_eq!(t.link_capacity(shared), mbps(2.0));
        assert_eq!(t.node(NodeId(3)).up, mbps(6.0));
        // Delays still vary per pair.
        assert_ne!(
            t.path(NodeId(0), NodeId(1)).delay,
            t.path(NodeId(0), NodeId(2)).delay
        );
    }

    #[test]
    #[should_panic(expected = "no core link joins a node to itself")]
    fn diagonal_core_link_rejected() {
        let t = constrained_access(3);
        t.core_link(NodeId(1), NodeId(1));
    }

    #[test]
    fn uniform_swarm_is_o_n_with_one_shared_core() {
        let rng = RngFactory::new(11);
        let t = uniform_swarm(50, &rng);
        assert_eq!(t.len(), 50);
        // One shared core link after the 2n access links.
        assert_eq!(t.num_links(), 2 * 50 + 1);
        let shared = t.core_link(NodeId(0), NodeId(1));
        assert_eq!(shared, LinkId(100));
        for a in [NodeId(0), NodeId(7), NodeId(49)] {
            for b in [NodeId(1), NodeId(23)] {
                if a == b {
                    continue;
                }
                assert_eq!(t.core_link(a, b), shared);
                let p = t.path(a, b);
                assert!(p.bw.is_infinite());
                assert_eq!(p.loss, 0.03);
                assert!(p.delay >= SimDuration::from_millis(40));
                assert!(p.delay <= SimDuration::from_millis(200));
            }
        }
        assert!(t.link_capacity(shared).is_infinite());
        assert_eq!(t.link_capacity(t.uplink(NodeId(3))), mbps(20.0));
        // Delays are symmetric (jitter[a] + jitter[b]) and deterministic.
        assert_eq!(
            t.path(NodeId(2), NodeId(9)).delay,
            t.path(NodeId(9), NodeId(2)).delay
        );
        let t2 = uniform_swarm(50, &RngFactory::new(11));
        assert_eq!(
            t.path(NodeId(2), NodeId(9)).delay,
            t2.path(NodeId(2), NodeId(9)).delay
        );
    }

    #[test]
    #[should_panic(expected = "uniform-core topology")]
    fn uniform_swarm_rejects_core_surgery() {
        let mut t = uniform_swarm(4, &RngFactory::new(1));
        t.set_core_bw(NodeId(0), NodeId(1), mbps(1.0));
    }

    #[test]
    #[should_panic(expected = "uniform-core topology")]
    fn uniform_swarm_rejects_share_core() {
        let mut t = uniform_swarm(4, &RngFactory::new(1));
        t.share_core(&[(NodeId(0), NodeId(1))], mbps(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_topology_rejected() {
        Topology::new(
            vec![NodeSpec {
                up: 1.0,
                down: 1.0,
                access_delay: SimDuration::ZERO,
            }],
            vec![vec![PathSpec {
                bw: 1.0,
                delay: SimDuration::ZERO,
                loss: 0.0,
            }]],
        );
    }
}
