//! The protocol-facing API: the [`Protocol`] trait and the per-event
//! context ([`Ctx`]) through which a protocol observes and acts on the
//! emulated network.
//!
//! Handlers never touch the network directly; they record *commands*
//! (send a control message, queue a block, arm a timer, close a peering)
//! that the runner applies after the handler returns. This keeps protocol
//! code free of borrow gymnastics and makes every action attributable to the
//! event that caused it.

use desim::{SimDuration, SimTime};
use dissem_codec::BlockId;
use rand::rngs::StdRng;

use crate::network::{BlockReceipt, Network};
use crate::probe::ProbeStats;
use crate::topology::NodeId;

/// Size, in bytes, a control message occupies on the wire. Implemented by
/// each protocol's message enum; the emulator uses it for delivery-delay and
/// overhead accounting.
pub trait WireSize {
    /// Serialized size of the message in bytes.
    fn wire_size(&self) -> usize;
}

/// A protocol instance running on one emulated node.
///
/// `M` is the protocol's control-message type. Data blocks do not travel
/// inside `M`; they are queued through [`Ctx::queue_block`] and delivered via
/// [`Protocol::on_block_received`].
pub trait Protocol<M: WireSize>: Sized {
    /// Called once at simulation start.
    fn on_init(&mut self, ctx: &mut Ctx<'_, M>);

    /// Called when a control message from `from` arrives.
    fn on_control(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// Called when a data block from `from` has fully arrived.
    fn on_block_received(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, receipt: BlockReceipt);

    /// Called when a block this node queued towards `to` has finished
    /// serialising onto the wire (the send-side analogue of
    /// [`Protocol::on_block_received`]). Default: ignored.
    fn on_block_sent(&mut self, _ctx: &mut Ctx<'_, M>, _to: NodeId, _block: BlockId) {}

    /// Called when a timer armed through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, kind: u32, data: u64);

    /// Called when another node leaves or crashes (the emulator's stand-in
    /// for a connection-reset / failure-detector signal). The peer is already
    /// unreachable: its connections are torn down and messages to it are
    /// lost. Default: ignored.
    fn on_peer_failed(&mut self, _ctx: &mut Ctx<'_, M>, _peer: NodeId) {}

    /// Called on this node when it is about to leave gracefully, *before* its
    /// connections are torn down: control messages sent here still go out,
    /// but data blocks queued here are discarded with the connections.
    /// Default: ignored.
    fn on_shutdown(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Reports whether this node considers its download complete. The runner
    /// may stop the experiment once every node reports completion.
    fn is_complete(&self) -> bool {
        false
    }

    /// Cumulative counters exposed to run-time probes (see [`crate::probe`]).
    /// The default reports zeros, so probing a protocol that does not track
    /// these is harmless rather than an error.
    fn probe_stats(&self) -> ProbeStats {
        ProbeStats::default()
    }
}

/// An action recorded by a protocol handler, applied by the runner once the
/// handler returns.
#[derive(Debug)]
pub enum Command<M> {
    /// Send control message `msg` to `to`.
    SendControl {
        /// Destination node.
        to: NodeId,
        /// Message payload.
        msg: M,
    },
    /// Queue a data block for transmission to `to`.
    QueueBlock {
        /// Destination node.
        to: NodeId,
        /// Block identity.
        block: BlockId,
        /// Block size in bytes.
        bytes: u64,
    },
    /// Drop the data connection to `to`, discarding queued blocks.
    CloseConnection {
        /// Peer whose connection should be dropped.
        to: NodeId,
    },
    /// Arm a timer that fires after `delay` with the given `kind` and `data`.
    SetTimer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Protocol-defined timer class.
        kind: u32,
        /// Protocol-defined payload.
        data: u64,
    },
}

/// Per-event view of the world handed to protocol handlers.
pub struct Ctx<'a, M> {
    /// This node's identity.
    node: NodeId,
    /// Current virtual time.
    now: SimTime,
    /// Read-only view of the emulated network.
    net: &'a Network,
    /// Which nodes are currently participating (see `Runner` lifecycle).
    active: &'a [bool],
    /// This node's private RNG stream.
    rng: &'a mut StdRng,
    /// Commands recorded by the handler.
    commands: Vec<Command<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Creates a context (used by the runner).
    pub(crate) fn new(
        node: NodeId,
        now: SimTime,
        net: &'a Network,
        active: &'a [bool],
        rng: &'a mut StdRng,
    ) -> Self {
        Ctx {
            node,
            now,
            net,
            active,
            rng,
            commands: Vec::new(),
        }
    }

    /// Consumes the context, returning the recorded commands.
    pub(crate) fn into_commands(self) -> Vec<Command<M>> {
        self.commands
    }

    /// This node's identity.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Number of nodes in the experiment.
    pub fn num_nodes(&self) -> usize {
        self.net.len()
    }

    /// Whether `peer` is currently participating. The emulator's stand-in
    /// for "a connection attempt to a gone host fails immediately": protocols
    /// use it to avoid pouring data at nodes that left, crashed, or have not
    /// joined yet (blocks queued towards an inactive node are discarded).
    pub fn peer_active(&self, peer: NodeId) -> bool {
        self.active[peer.index()]
    }

    /// Number of blocks currently queued or in flight from this node to `to`.
    pub fn pending_to(&self, to: NodeId) -> usize {
        self.net.pending_blocks(self.node, to)
    }

    /// Number of blocks currently queued or in flight from `from` to this
    /// node (what the peer still owes us at the transport level).
    pub fn pending_from(&self, from: NodeId) -> usize {
        self.net.pending_blocks(from, self.node)
    }

    /// Round-trip time between this node and `peer` according to the
    /// topology. Real implementations estimate this from traffic; the
    /// emulator exposes the configured value for simplicity.
    pub fn rtt(&self, peer: NodeId) -> SimDuration {
        self.net.topology().rtt(self.node, peer)
    }

    /// Sends a control message.
    pub fn send(&mut self, to: NodeId, msg: M) {
        debug_assert!(to != self.node, "no self-messaging");
        self.commands.push(Command::SendControl { to, msg });
    }

    /// Queues a data block for transmission to `to`.
    pub fn queue_block(&mut self, to: NodeId, block: BlockId, bytes: u64) {
        self.commands.push(Command::QueueBlock { to, block, bytes });
    }

    /// Closes the data connection to `to`, discarding its queue.
    pub fn close_connection(&mut self, to: NodeId) {
        self.commands.push(Command::CloseConnection { to });
    }

    /// Arms a timer.
    pub fn set_timer(&mut self, delay: SimDuration, kind: u32, data: u64) {
        self.commands.push(Command::SetTimer { delay, kind, data });
    }
}

impl<M> std::fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("node", &self.node)
            .field("now", &self.now)
            .field("commands", &self.commands.len())
            .finish()
    }
}
