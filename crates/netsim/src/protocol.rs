//! The protocol-facing API: the [`Protocol`] trait and the per-event
//! context ([`Ctx`]) through which a protocol observes and acts on the
//! emulated network.
//!
//! Handlers never touch the network directly; they record *commands*
//! (send a control message, queue a block, arm a timer, close a peering)
//! that the runner applies after the handler returns. This keeps protocol
//! code free of borrow gymnastics and makes every action attributable to the
//! event that caused it. The command buffer itself is owned by the runner and
//! lent to each [`Ctx`], so steady-state dispatch allocates nothing.
//!
//! ## Associated types (API v2)
//!
//! A protocol declares its control-message type and its timer vocabulary as
//! associated types, so downstream signatures mention only the protocol:
//! `Runner<P>`, `Ctx<'_, P>`, `Probe<P>`. Timers are real enums — the runner
//! stores them as compact `u64` tokens via [`TimerToken`] and hands the
//! decoded value back to [`Protocol::on_timer`], so a handler `match`es on
//! `Self::Timer` instead of decoding `(kind, data)` pairs against a constant
//! table.
//!
//! ## Example implementor
//!
//! A complete minimal protocol: every node pings a fixed buddy once a second
//! and counts the pings it receives.
//!
//! ```
//! use desim::SimDuration;
//! use netsim::{BlockReceipt, Ctx, NodeId, Protocol, TimerToken, WireSize};
//!
//! struct Ping;
//!
//! impl WireSize for Ping {
//!     fn wire_size(&self) -> usize {
//!         8
//!     }
//! }
//!
//! #[derive(Debug, Clone, Copy, PartialEq, Eq)]
//! enum Timer {
//!     Beat,
//! }
//!
//! impl TimerToken for Timer {
//!     fn encode(&self) -> u64 {
//!         0
//!     }
//!     fn decode(_bits: u64) -> Self {
//!         Timer::Beat
//!     }
//! }
//!
//! struct Pinger {
//!     buddy: NodeId,
//!     received: u32,
//! }
//!
//! impl Protocol for Pinger {
//!     type Msg = Ping;
//!     type Timer = Timer;
//!
//!     fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
//!         ctx.set_timer(SimDuration::from_secs(1), Timer::Beat);
//!     }
//!
//!     fn on_control(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, _msg: Ping) {
//!         self.received += 1;
//!     }
//!
//!     fn on_block_received(&mut self, _c: &mut Ctx<'_, Self>, _f: NodeId, _r: BlockReceipt) {}
//!
//!     fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Timer) {
//!         match timer {
//!             Timer::Beat => {
//!                 if ctx.peer_active(self.buddy) {
//!                     ctx.send(self.buddy, Ping);
//!                 }
//!                 ctx.set_timer(SimDuration::from_secs(1), Timer::Beat);
//!             }
//!         }
//!     }
//! }
//!
//! # // Drive it, so the example exercises the real runner.
//! # use desim::{RngFactory, SimTime};
//! # use netsim::{topology, Network, Runner};
//! # let rng = RngFactory::new(1);
//! # let topo = topology::constrained_access(2);
//! # let nodes = vec![
//! #     Pinger { buddy: NodeId(1), received: 0 },
//! #     Pinger { buddy: NodeId(0), received: 0 },
//! # ];
//! # let mut runner = Runner::new(Network::new(topo), nodes, &rng);
//! # runner.run_until(SimTime::from_secs_f64(5.5));
//! # assert!(runner.node(NodeId(0)).received >= 4);
//! ```

use desim::{SimDuration, SimTime};
use dissem_codec::BlockId;
use rand::rngs::StdRng;

use crate::network::{BlockReceipt, Network};
use crate::probe::ProbeStats;
use crate::topology::NodeId;

/// Size, in bytes, a control message occupies on the wire. Implemented by
/// each protocol's message enum; the emulator uses it for delivery-delay and
/// overhead accounting.
pub trait WireSize {
    /// Serialized size of the message in bytes.
    fn wire_size(&self) -> usize;

    /// Stable snake_case tag naming the message type, used by the structured
    /// trace (`msg` records) and its summarize/filter analyzer. The default
    /// lumps every message under one tag; protocols override it per variant
    /// to make traces legible.
    fn kind(&self) -> &'static str {
        "msg"
    }
}

/// A protocol timer vocabulary, stored by the runner as a compact `u64`.
///
/// Implementors are small enums (`enum Timer { Choke, Optimistic, ... }`);
/// variants may carry payload as long as it packs into the 64 bits.
/// `decode(encode(&t))` must reproduce `t`; `decode` may panic on bit
/// patterns `encode` never produces (they indicate a bug, not input).
pub trait TimerToken: Sized {
    /// Packs the timer into the runner's event representation.
    fn encode(&self) -> u64;
    /// Unpacks a timer previously produced by [`TimerToken::encode`].
    fn decode(bits: u64) -> Self;
}

/// For protocols without timers (`type Timer = ()`).
impl TimerToken for () {
    fn encode(&self) -> u64 {
        0
    }
    fn decode(_bits: u64) -> Self {}
}

/// Raw payload timers, useful in tests and prototypes.
impl TimerToken for u64 {
    fn encode(&self) -> u64 {
        *self
    }
    fn decode(bits: u64) -> Self {
        bits
    }
}

/// A protocol instance running on one emulated node.
///
/// [`Protocol::Msg`] is the protocol's control-message type. Data blocks do
/// not travel inside messages; they are queued through [`Ctx::queue_block`]
/// and delivered via [`Protocol::on_block_received`]. [`Protocol::Timer`] is
/// the protocol's timer vocabulary (see [`TimerToken`]).
///
/// See the [module documentation](self) for a complete example implementor.
pub trait Protocol: Sized {
    /// Control messages this protocol exchanges.
    type Msg: WireSize;
    /// Timers this protocol arms through [`Ctx::set_timer`].
    type Timer: TimerToken;

    /// Called exactly once, when the node starts participating: at
    /// simulation start for nodes present from t = 0, or at the join instant
    /// for a node that joins mid-run. A staged continuation (calling
    /// `run_until` again on the same runner) does not re-initialise.
    fn on_init(&mut self, ctx: &mut Ctx<'_, Self>);

    /// Called when a control message from `from` arrives.
    fn on_control(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Self::Msg);

    /// Called when a data block from `from` has fully arrived.
    fn on_block_received(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, receipt: BlockReceipt);

    /// Called when a block this node queued towards `to` has finished
    /// serialising onto the wire (the send-side analogue of
    /// [`Protocol::on_block_received`]). Default: ignored.
    fn on_block_sent(&mut self, _ctx: &mut Ctx<'_, Self>, _to: NodeId, _block: BlockId) {}

    /// Called when a timer armed through [`Ctx::set_timer`] fires.
    /// Default: ignored (for protocols that never arm one).
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, Self>, _timer: Self::Timer) {}

    /// Called when another node leaves or crashes (the emulator's stand-in
    /// for a connection-reset / failure-detector signal). The peer is already
    /// unreachable: its connections are torn down and messages to it are
    /// lost. Default: ignored.
    fn on_peer_failed(&mut self, _ctx: &mut Ctx<'_, Self>, _peer: NodeId) {}

    /// Called on this node when it is about to leave gracefully, *before* its
    /// connections are torn down: control messages sent here still go out,
    /// but data blocks queued here are discarded with the connections.
    /// Default: ignored.
    fn on_shutdown(&mut self, _ctx: &mut Ctx<'_, Self>) {}

    /// Reports whether this node considers its download complete. The runner
    /// may stop the experiment once every node reports completion.
    fn is_complete(&self) -> bool {
        false
    }

    /// Cumulative counters exposed to run-time probes (see [`crate::probe`]).
    /// The default reports zeros, so probing a protocol that does not track
    /// these is harmless rather than an error.
    fn probe_stats(&self) -> ProbeStats {
        ProbeStats::default()
    }
}

/// An action recorded by a protocol handler, applied by the runner once the
/// handler returns. Parameterized by the message type only: timers are
/// already encoded (see [`TimerToken`]), so one buffer serves every hook.
#[derive(Debug)]
pub enum Command<M> {
    /// Send control message `msg` to `to`.
    SendControl {
        /// Destination node.
        to: NodeId,
        /// Message payload.
        msg: M,
    },
    /// Queue a data block for transmission to `to`.
    QueueBlock {
        /// Destination node.
        to: NodeId,
        /// Block identity.
        block: BlockId,
        /// Block size in bytes.
        bytes: u64,
    },
    /// Drop the data connection to `to`, discarding queued blocks.
    CloseConnection {
        /// Peer whose connection should be dropped.
        to: NodeId,
    },
    /// Arm a timer that fires after `delay`.
    SetTimer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// The protocol's timer, encoded via [`TimerToken::encode`].
        token: u64,
    },
}

/// Per-event view of the world handed to protocol handlers.
///
/// The command buffer is borrowed from the runner and reused across events,
/// so recording commands does not allocate once the buffer has warmed up.
pub struct Ctx<'a, P: Protocol> {
    /// This node's identity.
    node: NodeId,
    /// Current virtual time.
    now: SimTime,
    /// Read-only view of the emulated network.
    net: &'a Network,
    /// Which nodes are currently participating (see `Runner` lifecycle).
    active: &'a [bool],
    /// This node's private RNG stream.
    rng: &'a mut StdRng,
    /// Commands recorded by the handler (the runner's scratch buffer).
    commands: &'a mut Vec<Command<P::Msg>>,
}

impl<'a, P: Protocol> Ctx<'a, P> {
    /// Creates a context (used by the runner).
    pub(crate) fn new(
        node: NodeId,
        now: SimTime,
        net: &'a Network,
        active: &'a [bool],
        rng: &'a mut StdRng,
        commands: &'a mut Vec<Command<P::Msg>>,
    ) -> Self {
        Ctx {
            node,
            now,
            net,
            active,
            rng,
            commands,
        }
    }

    /// Number of commands recorded so far (used by [`crate::conformance`] to
    /// observe what a delegated handler emitted).
    pub(crate) fn commands_recorded(&self) -> usize {
        self.commands.len()
    }

    /// Whether the command at `index` sends a control message.
    pub(crate) fn command_is_send(&self, index: usize) -> bool {
        matches!(self.commands.get(index), Some(Command::SendControl { .. }))
    }

    /// Reborrows this context for a protocol `Q` that shares `P`'s message
    /// and timer types. This is what makes *delegating wrappers* possible —
    /// e.g. an instrumentation layer `Wrapper<P>` whose hooks forward to an
    /// inner `P` (see [`crate::conformance`]): the inner protocol's handlers
    /// take `Ctx<'_, P>`, the wrapper's take `Ctx<'_, Wrapper<P>>`, and both
    /// record into the same buffer.
    pub fn retarget<Q>(&mut self) -> Ctx<'_, Q>
    where
        Q: Protocol<Msg = P::Msg, Timer = P::Timer>,
    {
        Ctx {
            node: self.node,
            now: self.now,
            net: self.net,
            active: self.active,
            rng: &mut *self.rng,
            commands: &mut *self.commands,
        }
    }

    /// This node's identity.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's deterministic RNG stream.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Number of nodes in the experiment.
    pub fn num_nodes(&self) -> usize {
        self.net.len()
    }

    /// Whether `peer` is currently participating. The emulator's stand-in
    /// for "a connection attempt to a gone host fails immediately": protocols
    /// use it to avoid pouring data at nodes that left, crashed, or have not
    /// joined yet (blocks queued towards an inactive node are discarded).
    pub fn peer_active(&self, peer: NodeId) -> bool {
        self.active[peer.index()]
    }

    /// Number of blocks currently queued or in flight from this node to `to`.
    pub fn pending_to(&self, to: NodeId) -> usize {
        self.net.pending_blocks(self.node, to)
    }

    /// Number of blocks currently queued or in flight from `from` to this
    /// node (what the peer still owes us at the transport level).
    pub fn pending_from(&self, from: NodeId) -> usize {
        self.net.pending_blocks(from, self.node)
    }

    /// Round-trip time between this node and `peer` according to the
    /// topology. Real implementations estimate this from traffic; the
    /// emulator exposes the configured value for simplicity.
    pub fn rtt(&self, peer: NodeId) -> SimDuration {
        self.net.topology().rtt(self.node, peer)
    }

    /// Sends a control message.
    pub fn send(&mut self, to: NodeId, msg: P::Msg) {
        debug_assert!(to != self.node, "no self-messaging");
        self.commands.push(Command::SendControl { to, msg });
    }

    /// Sends the same control message to every peer in `to`, in iteration
    /// order — the fan-out pattern of RanSub distribute waves, BitTorrent
    /// `Have` floods and farewell broadcasts. Equivalent to calling
    /// [`Ctx::send`] in a loop (one clone of `msg` per recipient), without
    /// the collect-into-a-`Vec`-first dance handlers otherwise need to
    /// appease the borrow checker.
    pub fn send_to_many<I>(&mut self, to: I, msg: &P::Msg)
    where
        I: IntoIterator<Item = NodeId>,
        P::Msg: Clone,
    {
        for peer in to {
            self.send(peer, msg.clone());
        }
    }

    /// Queues a data block for transmission to `to`.
    pub fn queue_block(&mut self, to: NodeId, block: BlockId, bytes: u64) {
        debug_assert!(to != self.node, "no self-transfers");
        self.commands.push(Command::QueueBlock { to, block, bytes });
    }

    /// Closes the data connection to `to`, discarding its queue.
    pub fn close_connection(&mut self, to: NodeId) {
        self.commands.push(Command::CloseConnection { to });
    }

    /// Arms a timer; it fires back through [`Protocol::on_timer`] after
    /// `delay`, carrying `timer`.
    pub fn set_timer(&mut self, delay: SimDuration, timer: P::Timer) {
        self.commands.push(Command::SetTimer {
            delay,
            token: timer.encode(),
        });
    }
}

impl<P: Protocol> std::fmt::Debug for Ctx<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("node", &self.node)
            .field("now", &self.now)
            .field("commands", &self.commands.len())
            .finish()
    }
}
