//! The experiment runner: glues the event engine, the network model and the
//! per-node protocol instances together.
//!
//! The runner owns one [`Protocol`] instance per emulated node, translates
//! recorded [`Command`]s into network activity and event-queue entries, and
//! stops when every node reports completion, when the event queue drains, or
//! when the configured time limit is reached.

use desim::{RngFactory, SimDuration, SimTime, Simulator};
use rand::rngs::StdRng;

use crate::dynamics::LinkChangeBatch;
use crate::network::{CompletedBlock, Network};
use crate::protocol::{Command, Ctx, Protocol, WireSize};
use crate::topology::NodeId;

/// Internal event vocabulary of the runner.
#[derive(Debug)]
enum NetEvent<M> {
    /// A control message arrives at `to`.
    Control { from: NodeId, to: NodeId, msg: M },
    /// The in-flight block on connection `from → to` finished serialising.
    BlockDone { from: NodeId, to: NodeId, gen: u64 },
    /// A fully serialised block arrives at the receiver.
    BlockArrive { done: CompletedBlock },
    /// A protocol timer fires at `node`.
    Timer { node: NodeId, kind: u32, data: u64 },
    /// A scheduled link-change batch takes effect.
    LinkChange { index: usize },
}

/// Why the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every node reported completion.
    AllComplete,
    /// The configured time limit was reached first.
    TimeLimit,
    /// The event queue drained before every node completed.
    Drained,
}

/// Summary of a finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-node completion time (seconds), `None` if the node never finished.
    pub completion_secs: Vec<Option<f64>>,
    /// Virtual time at which the run stopped.
    pub end_time: SimTime,
    /// Total number of events processed.
    pub events: u64,
    /// Why the run stopped.
    pub reason: StopReason,
}

impl RunReport {
    /// Completion times of the nodes that finished, sorted ascending.
    pub fn finished_times(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.completion_secs.iter().flatten().copied().collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("completion times are finite"));
        v
    }

    /// Fraction of nodes (excluding `skip`, typically the source) that finished.
    pub fn completion_fraction(&self, skip: usize) -> f64 {
        let total = self.completion_secs.len().saturating_sub(skip);
        if total == 0 {
            return 1.0;
        }
        let done = self
            .completion_secs
            .iter()
            .skip(skip)
            .filter(|c| c.is_some())
            .count();
        done as f64 / total as f64
    }
}

/// Drives one experiment: a network, a protocol instance per node, and a
/// schedule of link changes.
pub struct Runner<M: WireSize, P: Protocol<M>> {
    sim: Simulator<NetEvent<M>>,
    net: Network,
    nodes: Vec<P>,
    rngs: Vec<StdRng>,
    link_changes: Vec<LinkChangeBatch>,
    completion: Vec<Option<SimTime>>,
    /// Nodes exempt from the all-complete check (e.g. the source, which never
    /// "downloads").
    exempt: Vec<bool>,
}

impl<M: WireSize, P: Protocol<M>> Runner<M, P> {
    /// Creates a runner over `net` with one protocol instance per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the topology size.
    pub fn new(net: Network, nodes: Vec<P>, rng: &RngFactory) -> Self {
        assert_eq!(
            nodes.len(),
            net.len(),
            "need exactly one protocol instance per emulated node"
        );
        let rngs = (0..nodes.len())
            .map(|i| rng.stream_indexed("runner.node", i as u64))
            .collect();
        let n = nodes.len();
        Runner {
            sim: Simulator::new(),
            net,
            nodes,
            rngs,
            link_changes: Vec::new(),
            completion: vec![None; n],
            exempt: vec![false; n],
        }
    }

    /// Marks `node` as exempt from the all-complete stop condition.
    pub fn exempt_from_completion(&mut self, node: NodeId) {
        self.exempt[node.index()] = true;
    }

    /// Schedules a batch of link changes to take effect at `at`.
    pub fn schedule_link_change(&mut self, at: SimTime, batch: LinkChangeBatch) {
        let index = self.link_changes.len();
        self.link_changes.push(batch);
        self.sim.schedule_at(at, NetEvent::LinkChange { index });
    }

    /// Read access to the emulated network (topology + traffic counters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Read access to the protocol instances.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The protocol instance running on `node`.
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node.index()]
    }

    /// Consumes the runner, returning the protocol instances (for post-run
    /// inspection of per-node state and metrics).
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Runs the experiment until `limit` of virtual time.
    pub fn run(&mut self, limit: SimDuration) -> RunReport {
        self.run_until(SimTime::ZERO + limit)
    }

    /// Runs the experiment until the absolute virtual instant `limit`.
    pub fn run_until(&mut self, limit: SimTime) -> RunReport {
        // Initialise every node.
        for i in 0..self.nodes.len() {
            self.dispatch(NodeId(i as u32), |node, ctx| node.on_init(ctx));
        }
        self.refresh_completion();

        let reason = loop {
            if self.all_complete() {
                break StopReason::AllComplete;
            }
            match self.sim.peek_time() {
                None => break StopReason::Drained,
                Some(t) if t > limit => break StopReason::TimeLimit,
                Some(_) => {}
            }
            let (_, ev) = self.sim.step().expect("peeked event must exist");
            self.handle(ev);
        };

        RunReport {
            completion_secs: self
                .completion
                .iter()
                .map(|c| c.map(SimTime::as_secs_f64))
                .collect(),
            end_time: self.sim.now(),
            events: self.sim.events_processed(),
            reason,
        }
    }

    fn all_complete(&self) -> bool {
        self.completion
            .iter()
            .zip(self.exempt.iter())
            .all(|(c, e)| *e || c.is_some())
    }

    fn refresh_completion(&mut self) {
        let now = self.sim.now();
        for (i, node) in self.nodes.iter().enumerate() {
            if self.completion[i].is_none() && node.is_complete() {
                self.completion[i] = Some(now);
            }
        }
    }

    /// Runs `f` against one node with a fresh [`Ctx`], then applies the
    /// commands the handler recorded.
    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, M>),
    {
        let idx = node.index();
        let mut ctx = Ctx::new(node, self.sim.now(), &self.net, &mut self.rngs[idx]);
        f(&mut self.nodes[idx], &mut ctx);
        let commands = ctx.into_commands();
        self.apply_commands(node, commands);
        // Completion may have changed for this node.
        if self.completion[idx].is_none() && self.nodes[idx].is_complete() {
            self.completion[idx] = Some(self.sim.now());
        }
    }

    fn apply_commands(&mut self, from: NodeId, commands: Vec<Command<M>>) {
        let now = self.sim.now();
        for cmd in commands {
            match cmd {
                Command::SendControl { to, msg } => {
                    let size = msg.wire_size();
                    let delay =
                        self.net
                            .control_delay(&mut self.rngs[from.index()], from, to, size);
                    self.sim
                        .schedule_in(delay, NetEvent::Control { from, to, msg });
                }
                Command::QueueBlock { to, block, bytes } => {
                    let reschedules = self.net.queue_block(now, from, to, block, bytes);
                    self.schedule_reschedules(reschedules);
                }
                Command::CloseConnection { to } => {
                    let reschedules = self.net.close_connection(now, from, to);
                    self.schedule_reschedules(reschedules);
                }
                Command::SetTimer { delay, kind, data } => {
                    self.sim
                        .schedule_in(delay, NetEvent::Timer { node: from, kind, data });
                }
            }
        }
    }

    fn schedule_reschedules(&mut self, reschedules: Vec<crate::network::Reschedule>) {
        for r in reschedules {
            self.sim.schedule_at(
                r.at,
                NetEvent::BlockDone {
                    from: r.from,
                    to: r.to,
                    gen: r.gen,
                },
            );
        }
    }

    fn handle(&mut self, ev: NetEvent<M>) {
        let now = self.sim.now();
        match ev {
            NetEvent::Control { from, to, msg } => {
                self.dispatch(to, |node, ctx| node.on_control(ctx, from, msg));
            }
            NetEvent::BlockDone { from, to, gen } => {
                if let Some((done, reschedules)) = self.net.on_block_done(now, from, to, gen) {
                    self.schedule_reschedules(reschedules);
                    let block = done.block;
                    self.dispatch(from, |node, ctx| node.on_block_sent(ctx, to, block));
                    let delay = self.net.data_delivery_delay(from, to);
                    self.sim.schedule_in(delay, NetEvent::BlockArrive { done });
                }
            }
            NetEvent::BlockArrive { done } => {
                self.net.on_block_delivered(done.to, done.bytes);
                let receipt = crate::network::BlockReceipt {
                    block: done.block,
                    bytes: done.bytes,
                    in_front: done.in_front,
                    wasted: done.wasted,
                    queued_at: done.queued_at,
                    delivered_at: now,
                };
                self.dispatch(done.to, |node, ctx| {
                    node.on_block_received(ctx, done.from, receipt)
                });
            }
            NetEvent::Timer { node, kind, data } => {
                self.dispatch(node, |n, ctx| n.on_timer(ctx, kind, data));
            }
            NetEvent::LinkChange { index } => {
                let batch = std::mem::take(&mut self.link_changes[index]);
                let pairs = batch.apply(self.net.topology_mut());
                let reschedules = self.net.reprice_paths(now, &pairs);
                self.schedule_reschedules(reschedules);
            }
        }
    }
}
