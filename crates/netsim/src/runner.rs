//! The experiment runner: glues the event engine, the network model and the
//! per-node protocol instances together.
//!
//! The runner owns one [`Protocol`] instance per emulated node, translates
//! recorded [`Command`]s into network activity and event-queue entries, and
//! stops when every node reports completion, when the event queue drains, or
//! when the configured time or event limit is reached.
//!
//! ## Allocation-free dispatch
//!
//! The runner owns a single scratch command buffer that it lends to every
//! [`Ctx`] it constructs; handlers record into it and the runner drains it in
//! place. Dispatching one of the run's ~10⁵–10⁶ events therefore performs no
//! per-event allocation once the buffer has grown to the protocol's peak
//! fan-out. Timers travel through the queue as `u64` tokens (see
//! [`crate::protocol::TimerToken`]) and are decoded back into the protocol's
//! timer enum at delivery.
//!
//! ## Completion events
//!
//! Each active connection holds exactly **one** live `BlockDone` event in the
//! queue, tracked in a dense `Vec<Option<EventKey>>` indexed by the
//! connection's flow id (every [`ConnUpdate`] carries it, so the hot path
//! never hashes a `(from, to)` tuple). When the fluid model re-prices a
//! connection it returns [`ConnUpdate`]s and the runner *moves* the existing
//! event with [`desim::Simulator::reschedule`] (or cancels it on teardown)
//! instead of abandoning stale heap entries.
//!
//! ## Node lifecycle
//!
//! Nodes can join, leave gracefully, or crash mid-run via
//! [`Runner::schedule_node_event`] (see [`NodeEvent`]). An inactive node
//! receives no events: control messages and block deliveries addressed to it
//! are dropped, its timers are discarded, and blocks cannot be queued towards
//! it. Leaving or crashing tears down all of the node's connections and
//! exempts it from the all-complete stop condition; surviving nodes are
//! notified through [`Protocol::on_peer_failed`]. A graceful leaver
//! additionally gets a [`Protocol::on_shutdown`] callback *before* teardown,
//! so it can send farewell control messages (data blocks queued during
//! shutdown are discarded along with its connections).
//!
//! ## Run-time probes
//!
//! [`Runner::install_probe`] / [`Runner::record_timeseries`] attach
//! observers that sample every node on a configurable virtual-time tick (see
//! [`crate::probe`]). Tick events interleave deterministically with protocol
//! events, a queue holding nothing but the next tick counts as drained, and
//! the resulting [`TimeSeries`] is carried on [`RunReport::timeseries`].

use std::time::Instant;

use desim::{EventKey, RngFactory, SimDuration, SimTime, Simulator};
use rand::rngs::StdRng;

use crate::dynamics::{CrossTraffic, LinkChangeBatch, NodeEvent};
use crate::metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
use crate::network::{CompletedBlock, ConnUpdate, Network};
use crate::probe::{Probe, StatsProbe, TimeSeries};
use crate::profile::{EventKind, HookKind, ProfileReport, VtProfiler};
use crate::protocol::{Command, Ctx, Protocol, TimerToken, WireSize};
use crate::snapshot::ForkState;
use crate::topology::NodeId;
use crate::trace::{TraceEvent, TraceRecord, TraceSink};

/// Internal event vocabulary of the runner, parameterized by the protocol's
/// message type. Timers are carried as encoded tokens so the event stays one
/// word regardless of the protocol's timer enum. `Clone` (for `M: Clone`)
/// exists solely so a [`Snapshot`] can copy the pending event queue.
#[derive(Debug, Clone)]
enum NetEvent<M> {
    /// A control message arrives at `to`. `epoch` is the target slot's
    /// incarnation at send time: a message in flight towards a slot that has
    /// since been retired (and possibly re-populated with a new cohort's
    /// node, see [`Runner::retire`]) is dropped at delivery.
    Control {
        from: NodeId,
        to: NodeId,
        msg: M,
        epoch: u32,
    },
    /// The in-flight block on the connection with dense flow id `fid`
    /// finished serialising (endpoints come back on the [`CompletedBlock`]).
    BlockDone { fid: u32 },
    /// A fully serialised block arrives at the receiver (`epoch` as on
    /// [`NetEvent::Control`]).
    BlockArrive { done: CompletedBlock, epoch: u32 },
    /// A protocol timer fires at `node` (token encoded via `TimerToken`).
    Timer { node: NodeId, token: u64 },
    /// A scheduled link-change batch takes effect.
    LinkChange { index: usize },
    /// A scheduled cross-traffic occupancy change takes effect.
    CrossChange { change: CrossTraffic },
    /// A scheduled node-lifecycle event takes effect.
    Lifecycle { event: NodeEvent },
    /// The periodic probe sampling instant (see [`crate::probe`]).
    ProbeTick,
}

impl<M> NetEvent<M> {
    /// The profiler's attribution label for this event.
    fn kind(&self) -> EventKind {
        match self {
            NetEvent::Control { .. } => EventKind::Control,
            NetEvent::BlockDone { .. } => EventKind::BlockDone,
            NetEvent::BlockArrive { .. } => EventKind::BlockArrive,
            NetEvent::Timer { .. } => EventKind::Timer,
            NetEvent::LinkChange { .. } => EventKind::LinkChange,
            NetEvent::CrossChange { .. } => EventKind::CrossChange,
            NetEvent::Lifecycle { .. } => EventKind::Lifecycle,
            NetEvent::ProbeTick => EventKind::ProbeTick,
        }
    }
}

/// Why the run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every node reported completion.
    AllComplete,
    /// The configured time limit was reached first.
    TimeLimit,
    /// The event queue drained before every node completed.
    Drained,
    /// The configured event limit was reached first.
    EventLimit,
}

/// Summary of a finished run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-node completion time (seconds), `None` if the node never finished.
    pub completion_secs: Vec<Option<f64>>,
    /// Virtual time at which the run stopped. On [`StopReason::TimeLimit`]
    /// this is exactly the limit, matching [`desim::Simulator::run_until`].
    pub end_time: SimTime,
    /// Total number of events processed.
    pub events: u64,
    /// Why the run stopped.
    pub reason: StopReason,
    /// Per-node flag: true if the node left or crashed during the run.
    pub departed: Vec<bool>,
    /// Per-node measurements over virtual time, if a series-building probe
    /// was installed (see [`Runner::record_timeseries`]).
    pub timeseries: Option<TimeSeries>,
    /// The run's metrics snapshot: runner counters and gauges plus the
    /// engine's scheduling stats and the fluid solver's activity counters
    /// (see `docs/OBSERVABILITY.md` for every name). Deterministic — a pure
    /// function of virtual-time activity.
    pub metrics: MetricsSnapshot,
    /// Records accepted by the installed [`TraceSink`], 0 when untraced.
    /// Observability metadata: excluded from [`RunReport::canonical`] so a
    /// traced run can be byte-compared against an untraced one.
    pub trace_records: u64,
}

impl RunReport {
    /// The report's observability-independent identity: its `Debug` form
    /// with the trace-record count zeroed. Two runs of the same
    /// configuration produce equal canonical strings regardless of whether
    /// (or how) they were traced — the byte-identity contract ci.sh gates.
    pub fn canonical(&self) -> String {
        let mut c = self.clone();
        c.trace_records = 0;
        format!("{c:?}")
    }

    /// Completion times of the nodes that finished, sorted ascending.
    pub fn finished_times(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self.completion_secs.iter().flatten().copied().collect();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Fraction of nodes (excluding `skip`, typically the source) that finished.
    pub fn completion_fraction(&self, skip: usize) -> f64 {
        let total = self.completion_secs.len().saturating_sub(skip);
        if total == 0 {
            return 1.0;
        }
        let done = self
            .completion_secs
            .iter()
            .skip(skip)
            .filter(|c| c.is_some())
            .count();
        done as f64 / total as f64
    }
}

/// Drives one experiment: a network, a protocol instance per node, and a
/// schedule of link changes and node-lifecycle events.
pub struct Runner<P: Protocol> {
    sim: Simulator<NetEvent<P::Msg>>,
    net: Network,
    nodes: Vec<P>,
    rngs: Vec<StdRng>,
    link_changes: Vec<LinkChangeBatch>,
    completion: Vec<Option<SimTime>>,
    /// Nodes exempt from the all-complete check (e.g. the source, which never
    /// "downloads", or nodes that left/crashed).
    exempt: Vec<bool>,
    /// Whether each node is currently participating.
    active: Vec<bool>,
    /// Nodes that left or crashed during the run.
    departed: Vec<bool>,
    /// Number of nodes still counting against the all-complete stop
    /// condition (`!exempt && completion.is_none()`), maintained
    /// incrementally so the per-event stop check is O(1) instead of a scan
    /// over every node.
    incomplete: usize,
    /// The single live completion event of each active connection, indexed
    /// by the connection's dense flow id (grown on demand).
    completion_events: Vec<Option<EventKey>>,
    /// Stop once this many events have been processed.
    max_events: u64,
    /// Reusable command buffer lent to each dispatch's [`Ctx`].
    scratch: Vec<Command<P::Msg>>,
    /// Installed run-time probes, all sampled on the same tick.
    probes: Vec<Box<dyn Probe<P>>>,
    /// Virtual-time sampling interval for the probes.
    probe_interval: Option<SimDuration>,
    /// Whether a `ProbeTick` event is currently pending in the queue.
    probe_tick_pending: bool,
    /// Whether the tick chain has been started (a staged re-`run_until`
    /// must continue the existing chain, not start a second one).
    probes_started: bool,
    /// Whether start-of-run initialisation ran (a staged re-`run_until` must
    /// not deliver a second `on_init` — the trait promises exactly one).
    inits_done: bool,
    /// Every this-many events, the network's incrementally maintained
    /// per-link tables are rebuilt exactly (see
    /// [`Network::rebuild_link_tables`]), bounding float drift on runs long
    /// enough to accumulate it. `0` disables the hook.
    table_rebuild_interval: u64,
    /// Always-on counters/gauges registry (see [`crate::metrics`]).
    metrics: MetricsRegistry,
    /// Number of live completion events (== in-flight connections), feeding
    /// the `max_active_conns` gauge.
    live_conn_events: u64,
    /// Installed structured-trace sink, if any (see [`crate::trace`]).
    trace: Option<Box<dyn TraceSink>>,
    /// Wall-clock profiler, if enabled (see [`crate::profile`]).
    profiler: Option<VtProfiler>,
    /// Per-node slot incarnation, bumped by [`Runner::retire`]: events in
    /// flight towards an older incarnation are dropped at delivery, so a
    /// recycled slot never observes a previous cohort's traffic.
    epoch: Vec<u32>,
    /// Live timer events set by each node, so [`Runner::retire`] can cancel
    /// the remainder in bulk (cancelling an already-fired key is a safe
    /// no-op; see [`desim::Simulator::cancel`]). Pruned opportunistically
    /// against the queue so the lists stay proportional to the number of
    /// *pending* timers, not the number ever set.
    timer_keys: Vec<TimerTrack>,
    /// Cohort tag of each node slot (0 = unassigned); service mode stamps
    /// admitted swarms so probe samples can be grouped per cohort.
    cohort: Vec<u32>,
    /// Open-system ("service") mode: ignore the all-complete stop condition
    /// and keep the clock moving to the requested limit even when the queue
    /// drains — an open system idles between arrivals instead of stopping.
    run_to_limit: bool,
    /// Set by [`Runner::resume`] to the snapshot's instant; the next
    /// `advance_until` emits a [`TraceEvent::SnapshotResume`] marker (and
    /// clears the flag) so any trace stream recorded from here on declares
    /// that it starts mid-run, without a `node_join` prelude.
    resumed_at: Option<SimTime>,
}

/// Bookkeeping for one node's live timer keys (see [`Runner::timer_keys`]).
#[derive(Debug, Clone, Default)]
struct TimerTrack {
    keys: Vec<EventKey>,
    /// Prune (drop already-fired keys) when `keys` reaches this length;
    /// doubled after each prune so the amortised cost per timer is O(1).
    prune_at: usize,
}

impl<P: Protocol> Runner<P> {
    /// Creates a runner over `net` with one protocol instance per node.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len()` does not match the topology size.
    pub fn new(net: Network, nodes: Vec<P>, rng: &RngFactory) -> Self {
        assert_eq!(
            nodes.len(),
            net.len(),
            "need exactly one protocol instance per emulated node"
        );
        let rngs = (0..nodes.len())
            .map(|i| rng.stream_indexed("runner.node", i as u64))
            .collect();
        let n = nodes.len();
        Runner {
            sim: Simulator::new(),
            net,
            nodes,
            rngs,
            link_changes: Vec::new(),
            completion: vec![None; n],
            exempt: vec![false; n],
            active: vec![true; n],
            departed: vec![false; n],
            incomplete: n,
            completion_events: Vec::new(),
            max_events: u64::MAX,
            scratch: Vec::new(),
            probes: Vec::new(),
            probe_interval: None,
            probe_tick_pending: false,
            probes_started: false,
            inits_done: false,
            table_rebuild_interval: 1 << 20,
            metrics: MetricsRegistry::default(),
            live_conn_events: 0,
            trace: None,
            profiler: None,
            epoch: vec![0; n],
            timer_keys: (0..n).map(|_| TimerTrack::default()).collect(),
            cohort: vec![0; n],
            run_to_limit: false,
            resumed_at: None,
        }
    }

    /// Installs a structured trace sink (replacing any previous one). Every
    /// subsequent runner action emits [`TraceEvent`]s into it. Tracing is
    /// passive: it reads no RNG and writes no simulation state, so a traced
    /// run is bit-identical to an untraced one.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Removes and returns the installed trace sink, disabling tracing.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Enables wall-clock profiling: subsequent event handling is attributed
    /// per event kind, per protocol hook, and per `bucket_secs` of virtual
    /// time (see [`crate::profile`]). Like tracing, profiling observes
    /// without touching simulation state.
    pub fn enable_profiling(&mut self, bucket_secs: f64) {
        self.profiler = Some(VtProfiler::new(bucket_secs));
    }

    /// Freezes, removes and returns the profiler's report. Wall-clock
    /// attribution is inherently non-deterministic, which is why it travels
    /// here and never on [`RunReport`].
    pub fn take_profile(&mut self) -> Option<ProfileReport> {
        self.profiler.take().map(|p| p.report())
    }

    /// Read access to the live metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The full deterministic metrics snapshot: the registry's counters and
    /// gauges extended with the engine's scheduling stats and the fluid
    /// solver's activity counters (prefixed `events_` / `solver_`). This is
    /// what lands on [`RunReport::metrics`].
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let sim = self.sim.stats();
        // The engine tracks the pending high-water itself; surface it through
        // the registry's gauge slot.
        if let Some(slot) = snap
            .gauges
            .iter_mut()
            .find(|(n, _)| *n == Gauge::MaxPendingEvents.name())
        {
            slot.1 = slot.1.max(sim.max_pending);
        }
        snap.counters.push(("events_scheduled", sim.scheduled));
        snap.counters.push(("events_cancelled", sim.cancelled));
        snap.counters.push(("events_rescheduled", sim.rescheduled));
        let solver = self.net.solver_stats();
        snap.counters
            .push(("solver_full_solves", solver.full_solves));
        snap.counters.push(("solver_fast_admit", solver.fast_admit));
        snap.counters
            .push(("solver_fast_remove", solver.fast_remove));
        snap.counters
            .push(("solver_fast_growth", solver.fast_growth));
        snap.counters
            .push(("solver_flows_solved", solver.solved_flows));
        snap.counters
            .push(("solver_links_solved", solver.solved_links));
        snap.gauges
            .push(("solver_max_comp_flows", solver.max_comp_flows));
        snap.gauges
            .push(("solver_max_comp_links", solver.max_comp_links));
        snap.gauges.push(("solver_max_heap", solver.max_heap));
        snap
    }

    /// Builds and records one trace record if a sink is installed. The
    /// closure defers field computation (wire sizes, stats lookups) to the
    /// traced-on path, keeping the traced-off cost to one branch.
    #[inline]
    fn trace_emit(&mut self, ev: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            let rec = TraceRecord {
                t: self.sim.now().as_secs_f64(),
                seq: self.sim.events_processed(),
                ev: ev(),
            };
            sink.record(&rec);
        }
    }

    /// Sets how often (in processed events) the network's per-link usage and
    /// ceiling tables are rebuilt exactly from the registered flows,
    /// resetting incremental float drift. `0` disables the periodic rebuild.
    /// The default (`1 << 20`) is far beyond typical experiment lengths, so
    /// short runs never pay for it and never change behaviour.
    pub fn set_table_rebuild_interval(&mut self, interval: u64) {
        self.table_rebuild_interval = interval;
    }

    /// Installs a run-time probe, sampled every `interval` of virtual time
    /// (together with any previously installed probes; the most recent
    /// interval wins). The first sample is taken at t = 0 when the run
    /// starts.
    pub fn install_probe(&mut self, interval: SimDuration, probe: Box<dyn Probe<P>>) {
        assert!(!interval.is_zero(), "probe interval must be positive");
        self.probe_interval = Some(interval);
        self.probes.push(probe);
    }

    /// Convenience: installs the built-in [`StatsProbe`], whose series
    /// (instantaneous goodput, duplicate ratio, peer-set sizes per node)
    /// lands on [`RunReport::timeseries`].
    pub fn record_timeseries(&mut self, interval: SimDuration) {
        self.install_probe(interval, Box::new(StatsProbe::new()));
    }

    /// Marks `node` as exempt from the all-complete stop condition.
    pub fn exempt_from_completion(&mut self, node: NodeId) {
        let idx = node.index();
        if !self.exempt[idx] {
            self.exempt[idx] = true;
            if self.completion[idx].is_none() {
                self.incomplete -= 1;
            }
        }
    }

    /// Caps the total number of events the run may process; the run stops
    /// with [`StopReason::EventLimit`] when the cap is reached.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.max_events = limit;
    }

    /// Marks `node` as not yet part of the experiment: it is not initialised
    /// at start-up and receives no events until a [`NodeEvent::Join`] for it
    /// fires. The all-complete stop condition still counts it, so a run does
    /// not end before scheduled joiners have joined *and* completed.
    pub fn set_inactive_at_start(&mut self, node: NodeId) {
        self.active[node.index()] = false;
    }

    /// Whether `node` is currently participating.
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active[node.index()]
    }

    /// Switches the runner into (or out of) open-system mode: with the flag
    /// on, `run_until` ignores the all-complete stop condition and advances
    /// the clock to the requested limit even when the event queue drains,
    /// because an open system idles between arrivals instead of stopping.
    /// The event limit still applies.
    pub fn set_run_to_limit(&mut self, on: bool) {
        self.run_to_limit = on;
    }

    /// When `node` completed its download, the instant it did.
    pub fn completion_time(&self, node: NodeId) -> Option<SimTime> {
        self.completion[node.index()]
    }

    /// Number of events currently pending in the queue (cancelled tombstones
    /// excluded). Service-mode leak tests assert this returns to baseline
    /// after each swarm completes.
    pub fn pending_events(&self) -> usize {
        self.sim.pending()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.sim.events_processed()
    }

    /// Tags `node` with a cohort id (0 = unassigned). The tag is handed to
    /// every probe sample, so per-cohort series can be separated after a
    /// service run in which slots host several cohorts over time.
    pub fn set_cohort(&mut self, node: NodeId, cohort: u32) {
        self.cohort[node.index()] = cohort;
    }

    /// The cohort tag of `node` (0 = unassigned).
    pub fn cohort_of(&self, node: NodeId) -> u32 {
        self.cohort[node.index()]
    }

    /// Retires `node` from the experiment after its swarm completed: the
    /// slot is deactivated and exempted, its remaining timers are cancelled,
    /// its flow-table rows are released for reuse (see
    /// [`Network::release_flows_for`]), and its slot incarnation is bumped so
    /// stale in-flight events towards it are dropped at delivery. Unlike a
    /// leave or crash, retirement is silent — no [`Protocol::on_peer_failed`]
    /// fan-out — because the whole cohort retires together.
    pub fn retire(&mut self, node: NodeId) {
        let now = self.sim.now();
        let idx = node.index();
        self.active[idx] = false;
        if !self.exempt[idx] {
            self.exempt[idx] = true;
            if self.completion[idx].is_none() {
                self.incomplete -= 1;
            }
        }
        self.epoch[idx] = self.epoch[idx].wrapping_add(1);
        for key in self.timer_keys[idx].keys.drain(..) {
            self.sim.cancel(key);
        }
        self.timer_keys[idx].prune_at = 0;
        let updates = self.net.release_flows_for(now, node);
        self.apply_conn_updates(updates);
        self.metrics.inc(Counter::NodeRetires);
        self.trace_emit(|| TraceEvent::NodeRetire { node: node.0 });
    }

    /// Installs a fresh protocol instance in an inactive slot, resetting its
    /// completion, exemption and departure state so the slot can host a new
    /// cohort's node. The slot stays inactive; activate it with
    /// [`Runner::activate_now`] (or a scheduled [`NodeEvent::Join`]).
    ///
    /// # Panics
    ///
    /// Panics if the slot is still active.
    pub fn replace_node(&mut self, node: NodeId, fresh: P) {
        let idx = node.index();
        assert!(!self.active[idx], "replace_node requires an inactive slot");
        self.nodes[idx] = fresh;
        let was_counted = !self.exempt[idx] && self.completion[idx].is_none();
        self.completion[idx] = None;
        self.exempt[idx] = false;
        self.departed[idx] = false;
        if !was_counted {
            self.incomplete += 1;
        }
    }

    /// Activates an inactive, non-departed node immediately (the service
    /// manager's admission path — the in-queue [`NodeEvent::Join`] detour
    /// would cost a spurious event at an already-known instant).
    pub fn activate_now(&mut self, node: NodeId) {
        self.activate_cohort(&[node]);
    }

    /// Activates a whole cohort at the current instant: every member's
    /// participation flag flips *before* any `on_init` hook runs, so each
    /// init already sees its cohort-mates as active (tree registration and
    /// first pushes would otherwise be dropped towards peers later in the
    /// slot order). Already-active or departed slots are skipped. Hooks run
    /// in the order given.
    pub fn activate_cohort(&mut self, nodes: &[NodeId]) {
        let mut fresh = Vec::with_capacity(nodes.len());
        for &node in nodes {
            let idx = node.index();
            if !self.active[idx] && !self.departed[idx] {
                self.metrics.inc(Counter::NodeJoins);
                self.trace_emit(|| TraceEvent::NodeJoin { node: node.0 });
                self.active[idx] = true;
                fresh.push(node);
            }
        }
        for node in fresh {
            self.dispatch(node, HookKind::OnInit, |n, ctx| n.on_init(ctx));
        }
    }

    /// Schedules a batch of link changes to take effect at `at`.
    pub fn schedule_link_change(&mut self, at: SimTime, batch: LinkChangeBatch) {
        let index = self.link_changes.len();
        self.link_changes.push(batch);
        self.sim.schedule_at(at, NetEvent::LinkChange { index });
    }

    /// Schedules a cross-traffic occupancy change (see
    /// [`crate::dynamics::CrossTraffic`]) to take effect at `at`.
    pub fn schedule_cross_traffic(&mut self, at: SimTime, change: CrossTraffic) {
        self.sim.schedule_at(at, NetEvent::CrossChange { change });
    }

    /// Schedules a node-lifecycle event (join, graceful leave, crash) to take
    /// effect at `at`. For a [`NodeEvent::Join`], call
    /// [`Runner::set_inactive_at_start`] for the node as well, so it does not
    /// start as a participant.
    pub fn schedule_node_event(&mut self, at: SimTime, event: NodeEvent) {
        self.sim.schedule_at(at, NetEvent::Lifecycle { event });
    }

    /// Read access to the emulated network (topology + traffic counters).
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Read access to the protocol instances.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The protocol instance running on `node`.
    pub fn node(&self, node: NodeId) -> &P {
        &self.nodes[node.index()]
    }

    /// Consumes the runner, returning the protocol instances (for post-run
    /// inspection of per-node state and metrics).
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Runs the experiment until `limit` of virtual time.
    pub fn run(&mut self, limit: SimDuration) -> RunReport {
        self.run_until(SimTime::ZERO + limit)
    }

    /// Runs the experiment until the absolute virtual instant `limit`.
    pub fn run_until(&mut self, limit: SimTime) -> RunReport {
        let reason = self.advance_until(limit);
        self.finish_report(reason)
    }

    /// Runs the event loop to `limit` **without** building a report or
    /// draining the probes' accumulated series. This is `run_until` minus the
    /// finishing step: call it to park the runner at a checkpoint instant
    /// (see [`Runner::checkpoint`]) and later continue with another
    /// `advance_until` or a final `run_until`, whose report then spans the
    /// whole run as if it had never been staged.
    pub fn advance_until(&mut self, limit: SimTime) -> StopReason {
        // A resumed runner declares itself before anything else lands in the
        // trace: a stream recorded from here on has no `node_join` prelude,
        // and `replay_goodput` has no baseline to difference against.
        if let Some(at) = self.resumed_at.take() {
            self.trace_emit(|| TraceEvent::SnapshotResume {
                at: at.as_secs_f64(),
            });
        }
        // Initialise every node that starts as a participant — exactly once:
        // the Protocol contract promises a single on_init per participant, so
        // a staged continuation must not re-deliver it.
        if !self.inits_done {
            self.inits_done = true;
            for i in 0..self.nodes.len() {
                if self.active[i] {
                    self.dispatch(NodeId(i as u32), HookKind::OnInit, |node, ctx| {
                        node.on_init(ctx)
                    });
                }
            }
        }
        self.refresh_completion();

        // Probes take their first sample at t = 0 and tick from there. On a
        // staged continuation (`run_until` called again) the chain already
        // exists — starting another would double-sample every instant and
        // defeat the only-probe-ticks-left drain check below.
        if let Some(interval) = self.probe_interval {
            if !self.probes_started {
                self.probes_started = true;
                self.sample_probes();
                self.sim.schedule_in(interval, NetEvent::ProbeTick);
                self.probe_tick_pending = true;
            }
        }

        loop {
            if !self.run_to_limit && self.all_complete() {
                break StopReason::AllComplete;
            }
            if self.sim.events_processed() >= self.max_events {
                break StopReason::EventLimit;
            }
            // A queue holding nothing but the next probe tick is drained:
            // observation alone must not keep the experiment alive. In
            // open-system mode the probes keep sampling through idle
            // periods instead — the system is waiting, not finished.
            if !self.run_to_limit && self.probe_tick_pending && self.sim.pending() == 1 {
                break StopReason::Drained;
            }
            match self.sim.peek_time() {
                None if self.run_to_limit => {
                    // An idle open system: let virtual time pass to the
                    // requested boundary so the caller's arrival/tick
                    // bookkeeping stays on schedule.
                    self.sim.advance_to(limit);
                    break StopReason::TimeLimit;
                }
                None => break StopReason::Drained,
                Some(t) if t > limit => {
                    // Clamp the clock to the limit (events beyond it stay
                    // pending), mirroring `Simulator::run_until`.
                    self.sim.advance_to(limit);
                    break StopReason::TimeLimit;
                }
                Some(_) => {}
            }
            let (t, ev) = self.sim.step().expect("peeked event must exist");
            self.metrics.events_by_vt.observe(t.as_secs_f64());
            let prof_start = self.profiler.is_some().then(|| (ev.kind(), Instant::now()));
            let solver_before = self.trace.is_some().then(|| self.net.solver_stats());
            self.handle(ev);
            if let Some((kind, start)) = prof_start {
                let elapsed = start.elapsed();
                if let Some(p) = self.profiler.as_mut() {
                    p.record_event(kind, t.as_secs_f64(), elapsed);
                }
            }
            // Solver activity is attributed per event by diffing the
            // network's counters around the dispatch — one trace record per
            // event that touched the solver, no sink plumbed through the
            // fluid model.
            if let Some(before) = solver_before {
                let after = self.net.solver_stats();
                if after != before {
                    self.trace_emit(|| TraceEvent::Solver {
                        full_solves: after.full_solves - before.full_solves,
                        fast_admit: after.fast_admit - before.fast_admit,
                        fast_remove: after.fast_remove - before.fast_remove,
                        fast_growth: after.fast_growth - before.fast_growth,
                        comp_flows: after.solved_flows - before.solved_flows,
                        comp_links: after.solved_links - before.solved_links,
                        max_heap: after.max_heap,
                    });
                }
            }
            if self.table_rebuild_interval != 0
                && self
                    .sim
                    .events_processed()
                    .is_multiple_of(self.table_rebuild_interval)
            {
                self.net.rebuild_link_tables();
            }
        }
    }

    /// Builds the end-of-run report: drains the probes' accumulated series
    /// and freezes completion, metrics and stop-reason state.
    fn finish_report(&mut self, reason: StopReason) -> RunReport {
        // The runner, not the probe, knows the tick it sampled on.
        let timeseries = self
            .probes
            .iter_mut()
            .find_map(|p| p.take_series())
            .map(|mut ts| {
                if let Some(interval) = self.probe_interval {
                    ts.interval_secs = interval.as_secs_f64();
                }
                ts
            });
        RunReport {
            completion_secs: self
                .completion
                .iter()
                .map(|c| c.map(SimTime::as_secs_f64))
                .collect(),
            end_time: self.sim.now(),
            events: self.sim.events_processed(),
            reason,
            departed: self.departed.clone(),
            timeseries,
            metrics: self.metrics_snapshot(),
            trace_records: self.trace.as_ref().map_or(0, |s| s.recorded()),
        }
    }

    /// Feeds the current state to every installed probe.
    fn sample_probes(&mut self) {
        let now = self.sim.now();
        for probe in &mut self.probes {
            probe.sample(now, &self.nodes, &self.net, &self.active, &self.cohort);
        }
        self.metrics.inc(Counter::ProbeTicks);
        self.trace_emit(|| TraceEvent::ProbeTick);
    }

    fn all_complete(&self) -> bool {
        if self.incomplete > 0 {
            return false;
        }
        // Reaching zero happens once per run, so the O(N) cross-check of the
        // incremental counter is free on the per-event path.
        debug_assert!(
            self.completion
                .iter()
                .zip(self.exempt.iter())
                .all(|(c, e)| *e || c.is_some()),
            "incremental incomplete counter drifted from the per-node state"
        );
        true
    }

    /// Records `node`'s completion instant (idempotent) and keeps the
    /// incremental all-complete counter in sync.
    fn mark_complete(&mut self, idx: usize, now: SimTime) {
        if self.completion[idx].is_none() {
            self.completion[idx] = Some(now);
            if !self.exempt[idx] {
                self.incomplete -= 1;
            }
        }
    }

    fn refresh_completion(&mut self) {
        let now = self.sim.now();
        for i in 0..self.nodes.len() {
            if self.completion[i].is_none() && self.active[i] && self.nodes[i].is_complete() {
                self.mark_complete(i, now);
            }
        }
    }

    /// Runs `f` against one node with a fresh [`Ctx`] borrowing the shared
    /// scratch buffer, then applies the commands the handler recorded.
    /// No-op for inactive nodes. `hook` labels the call for the profiler's
    /// per-hook wall-clock attribution.
    fn dispatch<F>(&mut self, node: NodeId, hook: HookKind, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P>),
    {
        let idx = node.index();
        if !self.active[idx] {
            return;
        }
        // Lend the runner's scratch buffer to the context. `take` leaves an
        // empty (non-allocating) Vec behind, so the rare re-entrant dispatch
        // would still be correct — just not allocation-free.
        let mut commands = std::mem::take(&mut self.scratch);
        debug_assert!(commands.is_empty(), "scratch buffer leaked commands");
        let mut ctx = Ctx::new(
            node,
            self.sim.now(),
            &self.net,
            &self.active,
            &mut self.rngs[idx],
            &mut commands,
        );
        let hook_start = self.profiler.is_some().then(Instant::now);
        f(&mut self.nodes[idx], &mut ctx);
        if let Some(start) = hook_start {
            let elapsed = start.elapsed();
            if let Some(p) = self.profiler.as_mut() {
                p.record_hook(hook, elapsed);
            }
        }
        self.apply_commands(node, &mut commands);
        // Hand the (now drained) buffer back, keeping its capacity.
        self.scratch = commands;
        // Completion may have changed for this node.
        if self.completion[idx].is_none() && self.nodes[idx].is_complete() {
            self.mark_complete(idx, self.sim.now());
        }
    }

    /// Drains `commands`, translating each into network activity. The buffer
    /// is left empty but keeps its capacity for the next dispatch.
    fn apply_commands(&mut self, from: NodeId, commands: &mut Vec<Command<P::Msg>>) {
        let now = self.sim.now();
        for cmd in commands.drain(..) {
            match cmd {
                Command::SendControl { to, msg } => {
                    let size = msg.wire_size();
                    self.metrics.inc(Counter::ControlMessages);
                    self.metrics.add(Counter::ControlBytes, size as u64);
                    let delay =
                        self.net
                            .control_delay(&mut self.rngs[from.index()], from, to, size);
                    let epoch = self.epoch[to.index()];
                    self.sim.schedule_in(
                        delay,
                        NetEvent::Control {
                            from,
                            to,
                            msg,
                            epoch,
                        },
                    );
                }
                Command::QueueBlock { to, block, bytes } => {
                    // A departed (or not-yet-joined) node accepts no data:
                    // the connection would never drain.
                    if !self.active[to.index()] {
                        continue;
                    }
                    let updates = self.net.queue_block(now, from, to, block, bytes);
                    self.apply_conn_updates(updates);
                }
                Command::CloseConnection { to } => {
                    let updates = self.net.close_connection(now, from, to);
                    self.apply_conn_updates(updates);
                }
                Command::SetTimer { delay, token } => {
                    self.metrics.inc(Counter::TimersSet);
                    let key = self
                        .sim
                        .schedule_in(delay, NetEvent::Timer { node: from, token });
                    let track = &mut self.timer_keys[from.index()];
                    track.keys.push(key);
                    if track.keys.len() >= track.prune_at.max(64) {
                        let sim = &self.sim;
                        track.keys.retain(|&k| sim.is_pending(k));
                        track.prune_at = (track.keys.len() * 2).max(64);
                    }
                }
            }
        }
    }

    /// Applies the fluid model's completion-event updates to the queue:
    /// `Schedule` moves (or creates) the connection's single live event,
    /// `Cancel` removes it.
    fn apply_conn_updates(&mut self, updates: Vec<ConnUpdate>) {
        for update in updates {
            match update {
                ConnUpdate::Schedule { fid, at, .. } => {
                    let f = fid as usize;
                    if self.completion_events.len() <= f {
                        self.completion_events.resize(f + 1, None);
                    }
                    let key = match self.completion_events[f] {
                        Some(key) => {
                            let moved = self.sim.reschedule(key, at);
                            debug_assert!(moved, "completion event vanished while tracked");
                            key
                        }
                        None => {
                            let key = self.sim.schedule_at(at, NetEvent::BlockDone { fid });
                            self.completion_events[f] = Some(key);
                            self.live_conn_events += 1;
                            self.metrics
                                .raise(Gauge::MaxActiveConns, self.live_conn_events);
                            key
                        }
                    };
                    self.metrics.inc(Counter::ConnSchedules);
                    let raw = key.raw();
                    self.trace_emit(|| TraceEvent::ConnSchedule {
                        fid,
                        key: raw,
                        at: at.as_secs_f64(),
                    });
                }
                ConnUpdate::Cancel { fid, .. } => {
                    if let Some(key) = self
                        .completion_events
                        .get_mut(fid as usize)
                        .and_then(Option::take)
                    {
                        self.sim.cancel(key);
                        self.live_conn_events -= 1;
                        self.metrics.inc(Counter::ConnCancels);
                        let raw = key.raw();
                        self.trace_emit(|| TraceEvent::ConnCancel { fid, key: raw });
                    }
                }
            }
        }
    }

    /// Removes `node` from the experiment: tears down its connections,
    /// exempts it from the stop condition and notifies the survivors.
    fn depart(&mut self, node: NodeId) {
        let now = self.sim.now();
        let idx = node.index();
        self.active[idx] = false;
        self.departed[idx] = true;
        if !self.exempt[idx] {
            self.exempt[idx] = true;
            if self.completion[idx].is_none() {
                self.incomplete -= 1;
            }
        }
        let updates = self.net.close_all_for(now, node);
        self.apply_conn_updates(updates);
        // Deterministic notification order: ascending node index.
        for i in 0..self.nodes.len() {
            if i != node.index() && self.active[i] {
                self.dispatch(NodeId(i as u32), HookKind::OnPeerFailed, |n, ctx| {
                    n.on_peer_failed(ctx, node)
                });
            }
        }
    }

    fn handle(&mut self, ev: NetEvent<P::Msg>) {
        let now = self.sim.now();
        match ev {
            NetEvent::Control {
                from,
                to,
                msg,
                epoch,
            } => {
                // A message towards a slot retired since the send is void,
                // even if the slot meanwhile hosts a new cohort's node.
                if epoch != self.epoch[to.index()] {
                    return;
                }
                if self.trace.is_some() {
                    let (tag, bytes) = (msg.kind(), msg.wire_size() as u64);
                    self.trace_emit(|| TraceEvent::Msg {
                        from: from.0,
                        to: to.0,
                        msg: tag,
                        bytes,
                    });
                }
                // Messages to a node that is gone (or not yet here) are lost.
                self.dispatch(to, HookKind::OnControl, |node, ctx| {
                    node.on_control(ctx, from, msg)
                });
            }
            NetEvent::BlockDone { fid } => {
                // The connection's live event just fired; drop the handle.
                if self.completion_events[fid as usize].take().is_some() {
                    self.live_conn_events -= 1;
                }
                if let Some((done, updates)) = self.net.on_block_done_by_id(now, fid) {
                    self.metrics.inc(Counter::BlocksSent);
                    let (from, to) = (done.from, done.to);
                    let (block, bytes) = (done.block, done.bytes);
                    self.trace_emit(|| TraceEvent::BlockSent {
                        from: from.0,
                        to: to.0,
                        block: block.index() as u64,
                        bytes,
                    });
                    self.apply_conn_updates(updates);
                    self.dispatch(from, HookKind::OnBlockSent, |node, ctx| {
                        node.on_block_sent(ctx, to, block)
                    });
                    let delay = self.net.data_delivery_delay(from, to);
                    let epoch = self.epoch[to.index()];
                    self.sim
                        .schedule_in(delay, NetEvent::BlockArrive { done, epoch });
                }
            }
            NetEvent::BlockArrive { done, epoch } => {
                if epoch != self.epoch[done.to.index()] {
                    return; // The receiving slot was retired in flight.
                }
                if !self.active[done.to.index()] {
                    return; // Delivered into the void.
                }
                self.metrics.inc(Counter::BlocksDelivered);
                self.net.on_block_delivered(done.to, done.bytes);
                let (to, from) = (done.to, done.from);
                let (block, bytes) = (done.block, done.bytes);
                let receipt = crate::network::BlockReceipt {
                    block,
                    bytes,
                    in_front: done.in_front,
                    wasted: done.wasted,
                    queued_at: done.queued_at,
                    delivered_at: now,
                };
                self.dispatch(to, HookKind::OnBlockReceived, |node, ctx| {
                    node.on_block_received(ctx, from, receipt)
                });
                // Recorded *after* the hook so the receiver's cumulative
                // useful-byte count includes this delivery — the invariant
                // `replay_goodput` differences against.
                if self.trace.is_some() {
                    let useful = self.nodes[to.index()].probe_stats().useful_bytes;
                    self.trace_emit(|| TraceEvent::BlockReceived {
                        node: to.0,
                        from: from.0,
                        block: block.index() as u64,
                        bytes,
                        useful_bytes: useful,
                    });
                }
            }
            NetEvent::Timer { node, token } => {
                self.metrics.inc(Counter::TimersFired);
                self.trace_emit(|| TraceEvent::Timer {
                    node: node.0,
                    token,
                });
                self.dispatch(node, HookKind::OnTimer, |n, ctx| {
                    n.on_timer(ctx, P::Timer::decode(token))
                });
            }
            NetEvent::LinkChange { index } => {
                self.metrics.inc(Counter::LinkChanges);
                self.trace_emit(|| TraceEvent::LinkChange {
                    index: index as u64,
                });
                let batch = std::mem::take(&mut self.link_changes[index]);
                let pairs = batch.apply(self.net.topology_mut());
                let updates = self.net.reprice_paths(now, &pairs);
                self.apply_conn_updates(updates);
            }
            NetEvent::CrossChange { change } => {
                self.metrics.inc(Counter::CrossChanges);
                self.trace_emit(|| TraceEvent::CrossChange {
                    from: change.via.0 .0,
                    to: change.via.1 .0,
                    rate: change.rate,
                });
                let updates = self.net.set_cross_traffic(now, change.via, change.rate);
                self.apply_conn_updates(updates);
            }
            NetEvent::Lifecycle { event } => match event {
                NodeEvent::Join(node) => {
                    if !self.active[node.index()] && !self.departed[node.index()] {
                        self.metrics.inc(Counter::NodeJoins);
                        self.trace_emit(|| TraceEvent::NodeJoin { node: node.0 });
                        self.active[node.index()] = true;
                        self.dispatch(node, HookKind::OnInit, |n, ctx| n.on_init(ctx));
                    }
                }
                NodeEvent::Leave(node) => {
                    if self.active[node.index()] {
                        self.metrics.inc(Counter::NodeLeaves);
                        self.trace_emit(|| TraceEvent::NodeLeave { node: node.0 });
                        self.dispatch(node, HookKind::OnShutdown, |n, ctx| n.on_shutdown(ctx));
                        self.depart(node);
                    }
                }
                NodeEvent::Crash(node) => {
                    if self.active[node.index()] {
                        self.metrics.inc(Counter::NodeCrashes);
                        self.trace_emit(|| TraceEvent::NodeCrash { node: node.0 });
                        self.depart(node);
                    }
                }
            },
            NetEvent::ProbeTick => {
                self.probe_tick_pending = false;
                self.sample_probes();
                if let Some(interval) = self.probe_interval {
                    self.sim.schedule_in(interval, NetEvent::ProbeTick);
                    self.probe_tick_pending = true;
                }
            }
        }
    }
}

/// A deterministic checkpoint of a [`Runner`], taken with
/// [`Runner::checkpoint`] and turned back into a live runner with
/// [`Runner::resume`].
///
/// The snapshot owns deep copies of everything that feeds the simulation:
/// the event queue (live keyed table and pending triples, tombstones
/// included), every per-node RNG stream, the fluid model's flow table with
/// its per-link usage/ceiling sums, activation/cohort/completion state, the
/// protocol instances (via [`ForkState`]), the probes (via [`Probe::fork`])
/// and the metrics registry. It deliberately does **not** capture the
/// observability attachments — trace sink and profiler — which observe a run
/// without influencing it; a resumed runner starts untraced and unprofiled.
///
/// `Snapshot` is itself cloneable, so one warm-up prefix can be forked into
/// any number of divergent continuations; clones share no mutable state.
///
/// [`ForkState`]: crate::snapshot::ForkState
pub struct Snapshot<P: Protocol> {
    sim: Simulator<NetEvent<P::Msg>>,
    net: Network,
    nodes: Vec<P>,
    rngs: Vec<StdRng>,
    link_changes: Vec<LinkChangeBatch>,
    completion: Vec<Option<SimTime>>,
    exempt: Vec<bool>,
    active: Vec<bool>,
    departed: Vec<bool>,
    incomplete: usize,
    completion_events: Vec<Option<EventKey>>,
    max_events: u64,
    probes: Vec<Box<dyn Probe<P> + Send + Sync>>,
    probe_interval: Option<SimDuration>,
    probe_tick_pending: bool,
    probes_started: bool,
    inits_done: bool,
    table_rebuild_interval: u64,
    metrics: MetricsRegistry,
    live_conn_events: u64,
    epoch: Vec<u32>,
    timer_keys: Vec<TimerTrack>,
    cohort: Vec<u32>,
    run_to_limit: bool,
}

impl<P: Protocol + ForkState> Clone for Snapshot<P>
where
    P::Msg: Clone,
{
    fn clone(&self) -> Self {
        Snapshot {
            sim: self.sim.clone(),
            net: self.net.clone(),
            nodes: self.nodes.iter().map(ForkState::fork_state).collect(),
            rngs: self.rngs.clone(),
            link_changes: self.link_changes.clone(),
            completion: self.completion.clone(),
            exempt: self.exempt.clone(),
            active: self.active.clone(),
            departed: self.departed.clone(),
            incomplete: self.incomplete,
            completion_events: self.completion_events.clone(),
            max_events: self.max_events,
            probes: self
                .probes
                .iter()
                .map(|p| p.fork().expect("a forked probe must itself be forkable"))
                .collect(),
            probe_interval: self.probe_interval,
            probe_tick_pending: self.probe_tick_pending,
            probes_started: self.probes_started,
            inits_done: self.inits_done,
            table_rebuild_interval: self.table_rebuild_interval,
            metrics: self.metrics.clone(),
            live_conn_events: self.live_conn_events,
            epoch: self.epoch.clone(),
            timer_keys: self.timer_keys.clone(),
            cohort: self.cohort.clone(),
            run_to_limit: self.run_to_limit,
        }
    }
}

impl<P: Protocol + ForkState> Runner<P>
where
    P::Msg: Clone,
{
    /// Captures the runner's complete simulation state at the current
    /// instant. `checkpoint → resume → run-to-end` produces a
    /// [`RunReport`] byte-identical (via [`RunReport::canonical`]) to the
    /// uninterrupted run — the contract `tests/snapshot_fork.rs` pins for
    /// every shipped protocol.
    ///
    /// Call it at a quiescent point: between [`Runner::advance_until`]
    /// stages, never from inside a protocol hook.
    ///
    /// # Panics
    ///
    /// Panics if an installed probe does not implement [`Probe::fork`] —
    /// silently dropping a probe would diverge the forked run's report.
    pub fn checkpoint(&self) -> Snapshot<P> {
        Snapshot {
            sim: self.sim.clone(),
            net: self.net.clone(),
            nodes: self.nodes.iter().map(ForkState::fork_state).collect(),
            rngs: self.rngs.clone(),
            link_changes: self.link_changes.clone(),
            completion: self.completion.clone(),
            exempt: self.exempt.clone(),
            active: self.active.clone(),
            departed: self.departed.clone(),
            incomplete: self.incomplete,
            completion_events: self.completion_events.clone(),
            max_events: self.max_events,
            probes: self
                .probes
                .iter()
                .map(|p| {
                    p.fork()
                        .expect("every installed probe must implement Probe::fork to checkpoint")
                })
                .collect(),
            probe_interval: self.probe_interval,
            probe_tick_pending: self.probe_tick_pending,
            probes_started: self.probes_started,
            inits_done: self.inits_done,
            table_rebuild_interval: self.table_rebuild_interval,
            metrics: self.metrics.clone(),
            live_conn_events: self.live_conn_events,
            epoch: self.epoch.clone(),
            timer_keys: self.timer_keys.clone(),
            cohort: self.cohort.clone(),
            run_to_limit: self.run_to_limit,
        }
    }

    /// Reconstructs a live runner from a snapshot. The runner continues
    /// exactly where [`Runner::checkpoint`] left off — same pending events,
    /// same RNG positions, same flow table — so scheduling further dynamics
    /// and running to the end replays the uninterrupted run byte for byte.
    ///
    /// Trace sinks and profilers are not part of a snapshot: the resumed
    /// runner starts untraced (install a new sink with
    /// [`Runner::set_trace_sink`]; the first record will be a
    /// `snapshot_resume` marker declaring the mid-run start).
    pub fn resume(snap: Snapshot<P>) -> Self {
        let resumed_at = snap.sim.now();
        Runner {
            sim: snap.sim,
            net: snap.net,
            nodes: snap.nodes,
            rngs: snap.rngs,
            link_changes: snap.link_changes,
            completion: snap.completion,
            exempt: snap.exempt,
            active: snap.active,
            departed: snap.departed,
            incomplete: snap.incomplete,
            completion_events: snap.completion_events,
            max_events: snap.max_events,
            scratch: Vec::new(),
            probes: snap
                .probes
                .into_iter()
                .map(|p| p as Box<dyn Probe<P>>)
                .collect(),
            probe_interval: snap.probe_interval,
            probe_tick_pending: snap.probe_tick_pending,
            probes_started: snap.probes_started,
            inits_done: snap.inits_done,
            table_rebuild_interval: snap.table_rebuild_interval,
            metrics: snap.metrics,
            live_conn_events: snap.live_conn_events,
            trace: None,
            profiler: None,
            epoch: snap.epoch,
            timer_keys: snap.timer_keys,
            cohort: snap.cohort,
            run_to_limit: snap.run_to_limit,
            resumed_at: Some(resumed_at),
        }
    }
}
