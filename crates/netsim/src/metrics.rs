//! The runner's counters/gauges metrics registry.
//!
//! Always-on, branch-free accounting: the registry is a fixed array of
//! integers indexed by [`Counter`] / [`Gauge`], so maintaining it costs an
//! array increment per occurrence — cheap enough to stay enabled on the
//! benchmark hot path. Every quantity is a pure function of virtual-time
//! activity (no wall-clock input), so two runs of the same configuration
//! produce identical [`MetricsSnapshot`]s and the snapshot can ride on the
//! deterministic [`crate::RunReport`].
//!
//! The registry also buckets processed events by virtual time
//! ([`VtHistogram`]): the "when was the run busy" view that pairs with the
//! wall-clock "where did the time go" view of [`crate::profile`].

use serde::{Serialize, Value};

/// Monotonic counters maintained by the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Control messages delivered to protocol hooks.
    ControlMessages,
    /// Wire bytes of those control messages.
    ControlBytes,
    /// Blocks that finished serialising at their sender.
    BlocksSent,
    /// Blocks delivered to their receiver's protocol.
    BlocksDelivered,
    /// Timers armed by protocol handlers.
    TimersSet,
    /// Timers that fired.
    TimersFired,
    /// Completion events scheduled or moved by the fluid model.
    ConnSchedules,
    /// Completion events cancelled by the fluid model.
    ConnCancels,
    /// Nodes that joined mid-run.
    NodeJoins,
    /// Nodes that left gracefully.
    NodeLeaves,
    /// Nodes that crashed.
    NodeCrashes,
    /// Link-change batches applied.
    LinkChanges,
    /// Cross-traffic changes applied.
    CrossChanges,
    /// Probe sampling instants.
    ProbeTicks,
    /// Nodes retired by the service layer after their swarm completed.
    NodeRetires,
}

impl Counter {
    const COUNT: usize = 15;

    /// All counters, in declaration order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::ControlMessages,
        Counter::ControlBytes,
        Counter::BlocksSent,
        Counter::BlocksDelivered,
        Counter::TimersSet,
        Counter::TimersFired,
        Counter::ConnSchedules,
        Counter::ConnCancels,
        Counter::NodeJoins,
        Counter::NodeLeaves,
        Counter::NodeCrashes,
        Counter::LinkChanges,
        Counter::CrossChanges,
        Counter::ProbeTicks,
        Counter::NodeRetires,
    ];

    /// The counter's stable snake_case name (JSON key, docs).
    pub fn name(self) -> &'static str {
        match self {
            Counter::ControlMessages => "control_messages",
            Counter::ControlBytes => "control_bytes",
            Counter::BlocksSent => "blocks_sent",
            Counter::BlocksDelivered => "blocks_delivered",
            Counter::TimersSet => "timers_set",
            Counter::TimersFired => "timers_fired",
            Counter::ConnSchedules => "conn_schedules",
            Counter::ConnCancels => "conn_cancels",
            Counter::NodeJoins => "node_joins",
            Counter::NodeLeaves => "node_leaves",
            Counter::NodeCrashes => "node_crashes",
            Counter::LinkChanges => "link_changes",
            Counter::CrossChanges => "cross_changes",
            Counter::ProbeTicks => "probe_ticks",
            Counter::NodeRetires => "node_retires",
        }
    }
}

/// High-water gauges maintained by the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Peak number of pending simulator events.
    MaxPendingEvents,
    /// Peak number of simultaneously active (in-flight) connections.
    MaxActiveConns,
}

impl Gauge {
    const COUNT: usize = 2;

    /// All gauges, in declaration order.
    pub const ALL: [Gauge; Gauge::COUNT] = [Gauge::MaxPendingEvents, Gauge::MaxActiveConns];

    /// The gauge's stable snake_case name (JSON key, docs).
    pub fn name(self) -> &'static str {
        match self {
            Gauge::MaxPendingEvents => "max_pending_events",
            Gauge::MaxActiveConns => "max_active_conns",
        }
    }
}

/// A histogram over virtual time: one bucket per `bucket_secs` of the run,
/// grown on demand. Buckets hold plain occurrence counts.
#[derive(Debug, Clone, PartialEq)]
pub struct VtHistogram {
    /// Width of each bucket, in virtual seconds.
    pub bucket_secs: f64,
    /// Occurrences per bucket; bucket `i` covers
    /// `[i * bucket_secs, (i + 1) * bucket_secs)`.
    pub buckets: Vec<u64>,
}

impl VtHistogram {
    /// Creates an empty histogram with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is not positive.
    pub fn new(bucket_secs: f64) -> Self {
        assert!(bucket_secs > 0.0, "bucket width must be positive");
        VtHistogram {
            bucket_secs,
            buckets: Vec::new(),
        }
    }

    /// Records one occurrence at virtual time `t_secs`.
    #[inline]
    pub fn observe(&mut self, t_secs: f64) {
        let idx = (t_secs / self.bucket_secs) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
    }

    /// Total occurrences across all buckets.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// The live registry the runner owns. Updating is an array index away; the
/// deterministic summary is taken with [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    counters: [u64; Counter::COUNT],
    gauges: [u64; Gauge::COUNT],
    /// Processed events bucketed by virtual time.
    pub events_by_vt: VtHistogram,
}

/// Default virtual-time bucket width for the events histogram: wide enough
/// that a paper-scale run (a few hundred virtual seconds) stays at a handful
/// of buckets.
pub const DEFAULT_VT_BUCKET_SECS: f64 = 10.0;

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new(DEFAULT_VT_BUCKET_SECS)
    }
}

impl MetricsRegistry {
    /// Creates an empty registry with the given histogram bucket width.
    pub fn new(bucket_secs: f64) -> Self {
        MetricsRegistry {
            counters: [0; Counter::COUNT],
            gauges: [0; Gauge::COUNT],
            events_by_vt: VtHistogram::new(bucket_secs),
        }
    }

    /// Adds one to `counter`.
    #[inline]
    pub fn inc(&mut self, counter: Counter) {
        self.counters[counter as usize] += 1;
    }

    /// Adds `by` to `counter`.
    #[inline]
    pub fn add(&mut self, counter: Counter, by: u64) {
        self.counters[counter as usize] += by;
    }

    /// Raises `gauge` to `value` if it is a new high-water mark.
    #[inline]
    pub fn raise(&mut self, gauge: Gauge, value: u64) {
        let slot = &mut self.gauges[gauge as usize];
        if value > *slot {
            *slot = value;
        }
    }

    /// Current value of `counter`.
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize]
    }

    /// Current value of `gauge`.
    pub fn gauge(&self, gauge: Gauge) -> u64 {
        self.gauges[gauge as usize]
    }

    /// Freezes the registry into the deterministic summary carried on
    /// [`crate::RunReport::metrics`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name(), self.get(c)))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| (g.name(), self.gauge(g)))
                .collect(),
            vt_bucket_secs: self.events_by_vt.bucket_secs,
            events_by_vt: self.events_by_vt.buckets.clone(),
        }
    }
}

/// A frozen, deterministic view of the registry. Every field derives from
/// virtual-time activity only, so it is safe inside byte-identity
/// comparisons of [`crate::RunReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per [`Counter`], in declaration order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` per [`Gauge`], in declaration order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Bucket width of the events histogram, virtual seconds.
    pub vt_bucket_secs: f64,
    /// Processed events per virtual-time bucket.
    pub events_by_vt: Vec<u64>,
}

impl MetricsSnapshot {
    /// Looks up a counter by its stable name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by its stable name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }
}

impl Serialize for MetricsSnapshot {
    fn to_value(&self) -> Value {
        let kv = |pairs: &[(&'static str, u64)]| {
            Value::Object(
                pairs
                    .iter()
                    .map(|&(k, v)| (k.to_string(), Value::UInt(v)))
                    .collect(),
            )
        };
        Value::Object(vec![
            ("counters".to_string(), kv(&self.counters)),
            ("gauges".to_string(), kv(&self.gauges)),
            (
                "vt_bucket_secs".to_string(),
                Value::Float(self.vt_bucket_secs),
            ),
            (
                "events_by_vt".to_string(),
                Value::Array(self.events_by_vt.iter().map(|&v| Value::UInt(v)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip_through_the_snapshot() {
        let mut reg = MetricsRegistry::default();
        reg.inc(Counter::ControlMessages);
        reg.add(Counter::ControlBytes, 120);
        reg.raise(Gauge::MaxPendingEvents, 7);
        reg.raise(Gauge::MaxPendingEvents, 3); // below high water: ignored
        let snap = reg.snapshot();
        assert_eq!(snap.counter("control_messages"), Some(1));
        assert_eq!(snap.counter("control_bytes"), Some(120));
        assert_eq!(snap.counter("blocks_sent"), Some(0));
        assert_eq!(snap.gauge("max_pending_events"), Some(7));
        assert_eq!(snap.counter("no_such"), None);
        // Every declared counter appears exactly once, in declaration order.
        assert_eq!(snap.counters.len(), Counter::ALL.len());
        assert_eq!(snap.counters[0].0, "control_messages");
    }

    #[test]
    fn histogram_buckets_by_virtual_time() {
        let mut h = VtHistogram::new(10.0);
        h.observe(0.0);
        h.observe(9.999);
        h.observe(10.0);
        h.observe(35.0);
        assert_eq!(h.buckets, vec![2, 1, 0, 1]);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn snapshot_serializes_to_named_objects() {
        let mut reg = MetricsRegistry::new(10.0);
        reg.inc(Counter::ProbeTicks);
        reg.events_by_vt.observe(12.0);
        let json = serde_json::to_string(&reg.snapshot()).unwrap();
        assert!(json.contains(r#""probe_ticks":1"#), "{json}");
        assert!(json.contains(r#""events_by_vt":[0,1]"#), "{json}");
    }
}
