//! Bandwidth units.
//!
//! All internal bandwidth arithmetic is in **bytes per second** (`f64`);
//! these helpers exist so topology definitions can be written in the units
//! the paper uses (Mbps / Kbps access and core links).

/// Bandwidth expressed in bytes per second.
pub type BytesPerSec = f64;

/// Converts megabits per second to bytes per second.
pub fn mbps(v: f64) -> BytesPerSec {
    v * 1_000_000.0 / 8.0
}

/// Converts kilobits per second to bytes per second.
pub fn kbps(v: f64) -> BytesPerSec {
    v * 1_000.0 / 8.0
}

/// Converts gigabits per second to bytes per second.
pub fn gbps(v: f64) -> BytesPerSec {
    v * 1_000_000_000.0 / 8.0
}

/// Converts bytes per second back to megabits per second (for reporting).
pub fn to_mbps(v: BytesPerSec) -> f64 {
    v * 8.0 / 1_000_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(mbps(8.0), 1_000_000.0);
        assert_eq!(kbps(800.0), 100_000.0);
        assert_eq!(gbps(1.0), mbps(1000.0));
        assert!((to_mbps(mbps(6.0)) - 6.0).abs() < 1e-12);
    }
}
