//! The virtual-time profiler: where does the wall-clock second go?
//!
//! The benchmark gates say a fixed-seed fig05-style run must finish in well
//! under a second; when it does not, the interesting question is which of
//! the ~10⁵ events ate the budget. [`VtProfiler`] attributes the wall-clock
//! cost of every handled event to (a) its event kind, (b) the protocol hook
//! it drove, and (c) the virtual-time bucket it executed under — so a
//! regression shows up as "BlockDone handling during the t = 20–30 s churn
//! burst", not as an undifferentiated total.
//!
//! Profiling measures real elapsed time, so its output is inherently
//! non-deterministic. It therefore never rides on [`crate::RunReport`]
//! (which must stay byte-identical across identical runs); the runner hands
//! the profile out separately via `take_profile`. Attribution uses two
//! `Instant::now()` calls per handled event and touches no simulation state,
//! so a profiled run still produces bit-identical results.

use std::time::Duration;

use serde::{Serialize, Value};

/// The runner's event kinds, as attribution labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum EventKind {
    /// Control-message delivery.
    Control,
    /// Block finished serialising (fluid-model completion).
    BlockDone,
    /// Block arrival at the receiver.
    BlockArrive,
    /// Protocol timer firing.
    Timer,
    /// Link-change batch application.
    LinkChange,
    /// Cross-traffic change application.
    CrossChange,
    /// Node lifecycle event (join/leave/crash).
    Lifecycle,
    /// Probe sampling instant.
    ProbeTick,
}

impl EventKind {
    const COUNT: usize = 8;

    /// All kinds, in declaration order.
    pub const ALL: [EventKind; EventKind::COUNT] = [
        EventKind::Control,
        EventKind::BlockDone,
        EventKind::BlockArrive,
        EventKind::Timer,
        EventKind::LinkChange,
        EventKind::CrossChange,
        EventKind::Lifecycle,
        EventKind::ProbeTick,
    ];

    /// Stable snake_case label.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Control => "control",
            EventKind::BlockDone => "block_done",
            EventKind::BlockArrive => "block_arrive",
            EventKind::Timer => "timer",
            EventKind::LinkChange => "link_change",
            EventKind::CrossChange => "cross_change",
            EventKind::Lifecycle => "lifecycle",
            EventKind::ProbeTick => "probe_tick",
        }
    }
}

/// The protocol hooks, as attribution labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum HookKind {
    /// [`crate::Protocol::on_init`].
    OnInit,
    /// [`crate::Protocol::on_control`].
    OnControl,
    /// [`crate::Protocol::on_block_received`].
    OnBlockReceived,
    /// [`crate::Protocol::on_block_sent`].
    OnBlockSent,
    /// [`crate::Protocol::on_timer`].
    OnTimer,
    /// [`crate::Protocol::on_peer_failed`].
    OnPeerFailed,
    /// [`crate::Protocol::on_shutdown`].
    OnShutdown,
}

impl HookKind {
    const COUNT: usize = 7;

    /// All hooks, in declaration order.
    pub const ALL: [HookKind; HookKind::COUNT] = [
        HookKind::OnInit,
        HookKind::OnControl,
        HookKind::OnBlockReceived,
        HookKind::OnBlockSent,
        HookKind::OnTimer,
        HookKind::OnPeerFailed,
        HookKind::OnShutdown,
    ];

    /// Stable snake_case label.
    pub fn name(self) -> &'static str {
        match self {
            HookKind::OnInit => "on_init",
            HookKind::OnControl => "on_control",
            HookKind::OnBlockReceived => "on_block_received",
            HookKind::OnBlockSent => "on_block_sent",
            HookKind::OnTimer => "on_timer",
            HookKind::OnPeerFailed => "on_peer_failed",
            HookKind::OnShutdown => "on_shutdown",
        }
    }
}

/// Accumulating profiler state owned by the runner while profiling is on.
#[derive(Debug, Clone)]
pub struct VtProfiler {
    bucket_secs: f64,
    kind_count: [u64; EventKind::COUNT],
    kind_nanos: [u64; EventKind::COUNT],
    hook_count: [u64; HookKind::COUNT],
    hook_nanos: [u64; HookKind::COUNT],
    /// Wall nanoseconds per virtual-time bucket.
    vt_nanos: Vec<u64>,
}

impl VtProfiler {
    /// Creates a profiler bucketing wall time by `bucket_secs` of virtual
    /// time.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_secs` is not positive.
    pub fn new(bucket_secs: f64) -> Self {
        assert!(bucket_secs > 0.0, "bucket width must be positive");
        VtProfiler {
            bucket_secs,
            kind_count: [0; EventKind::COUNT],
            kind_nanos: [0; EventKind::COUNT],
            hook_count: [0; HookKind::COUNT],
            hook_nanos: [0; HookKind::COUNT],
            vt_nanos: Vec::new(),
        }
    }

    /// Attributes `elapsed` wall time to `kind` at virtual time `t_secs`.
    #[inline]
    pub fn record_event(&mut self, kind: EventKind, t_secs: f64, elapsed: Duration) {
        let nanos = elapsed.as_nanos() as u64;
        self.kind_count[kind as usize] += 1;
        self.kind_nanos[kind as usize] += nanos;
        let idx = (t_secs / self.bucket_secs) as usize;
        if idx >= self.vt_nanos.len() {
            self.vt_nanos.resize(idx + 1, 0);
        }
        self.vt_nanos[idx] += nanos;
    }

    /// Attributes `elapsed` wall time to a protocol `hook`. Hook time is a
    /// subset of the enclosing event's time, not additional to it.
    #[inline]
    pub fn record_hook(&mut self, hook: HookKind, elapsed: Duration) {
        self.hook_count[hook as usize] += 1;
        self.hook_nanos[hook as usize] += elapsed.as_nanos() as u64;
    }

    /// Freezes the accumulated attribution into a report.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            kinds: EventKind::ALL
                .iter()
                .map(|&k| ProfileRow {
                    name: k.name(),
                    count: self.kind_count[k as usize],
                    nanos: self.kind_nanos[k as usize],
                })
                .collect(),
            hooks: HookKind::ALL
                .iter()
                .map(|&h| ProfileRow {
                    name: h.name(),
                    count: self.hook_count[h as usize],
                    nanos: self.hook_nanos[h as usize],
                })
                .collect(),
            vt_bucket_secs: self.bucket_secs,
            vt_nanos: self.vt_nanos.clone(),
        }
    }
}

/// One attribution row: label, occurrences, accumulated wall nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// The event-kind or hook label.
    pub name: &'static str,
    /// Occurrences.
    pub count: u64,
    /// Accumulated wall time, nanoseconds.
    pub nanos: u64,
}

/// The frozen "where does the wall-clock go" breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Wall time per event kind, in [`EventKind::ALL`] order.
    pub kinds: Vec<ProfileRow>,
    /// Wall time per protocol hook (a subset of the event time), in
    /// [`HookKind::ALL`] order.
    pub hooks: Vec<ProfileRow>,
    /// Bucket width of the virtual-time attribution, seconds.
    pub vt_bucket_secs: f64,
    /// Wall nanoseconds per virtual-time bucket.
    pub vt_nanos: Vec<u64>,
}

impl ProfileReport {
    /// Total wall nanoseconds attributed to event handling.
    pub fn total_nanos(&self) -> u64 {
        self.kinds.iter().map(|r| r.nanos).sum()
    }

    /// Human-readable table, one line per non-empty row, sorted by wall
    /// time descending within each section.
    pub fn lines(&self) -> Vec<String> {
        let total = self.total_nanos().max(1) as f64;
        let mut out = Vec::new();
        let section = |out: &mut Vec<String>, title: &str, rows: &[ProfileRow]| {
            out.push(format!("{title}:"));
            let mut rows: Vec<&ProfileRow> = rows.iter().filter(|r| r.count > 0).collect();
            rows.sort_by(|a, b| b.nanos.cmp(&a.nanos).then(a.name.cmp(b.name)));
            for r in rows {
                out.push(format!(
                    "  {:<18} {:>9} calls  {:>9.3} ms  {:>5.1}%",
                    r.name,
                    r.count,
                    r.nanos as f64 / 1e6,
                    r.nanos as f64 / total * 100.0,
                ));
            }
        };
        section(&mut out, "per event kind", &self.kinds);
        section(&mut out, "per protocol hook", &self.hooks);
        out.push("per virtual-time bucket:".to_string());
        for (i, &nanos) in self.vt_nanos.iter().enumerate() {
            if nanos == 0 {
                continue;
            }
            out.push(format!(
                "  [{:>6.1}s..{:>6.1}s) {:>9.3} ms  {:>5.1}%",
                i as f64 * self.vt_bucket_secs,
                (i + 1) as f64 * self.vt_bucket_secs,
                nanos as f64 / 1e6,
                nanos as f64 / total * 100.0,
            ));
        }
        out
    }
}

impl Serialize for ProfileReport {
    fn to_value(&self) -> Value {
        let rows = |rows: &[ProfileRow]| {
            Value::Object(
                rows.iter()
                    .map(|r| {
                        (
                            r.name.to_string(),
                            Value::Object(vec![
                                ("count".to_string(), Value::UInt(r.count)),
                                ("nanos".to_string(), Value::UInt(r.nanos)),
                            ]),
                        )
                    })
                    .collect(),
            )
        };
        Value::Object(vec![
            ("kinds".to_string(), rows(&self.kinds)),
            ("hooks".to_string(), rows(&self.hooks)),
            (
                "vt_bucket_secs".to_string(),
                Value::Float(self.vt_bucket_secs),
            ),
            (
                "vt_nanos".to_string(),
                Value::Array(self.vt_nanos.iter().map(|&v| Value::UInt(v)).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_accumulates_per_kind_hook_and_bucket() {
        let mut p = VtProfiler::new(10.0);
        p.record_event(EventKind::Control, 1.0, Duration::from_nanos(100));
        p.record_event(EventKind::Control, 12.0, Duration::from_nanos(50));
        p.record_event(EventKind::BlockDone, 12.5, Duration::from_nanos(25));
        p.record_hook(HookKind::OnControl, Duration::from_nanos(80));
        let report = p.report();
        assert_eq!(report.total_nanos(), 175);
        let control = &report.kinds[EventKind::Control as usize];
        assert_eq!((control.count, control.nanos), (2, 150));
        assert_eq!(report.vt_nanos, vec![100, 75]);
        let on_control = &report.hooks[HookKind::OnControl as usize];
        assert_eq!((on_control.count, on_control.nanos), (1, 80));
        // Rendering never divides by zero and skips empty rows.
        let lines = VtProfiler::new(1.0).report().lines();
        assert!(lines.iter().all(|l| !l.contains("NaN")));
    }
}
