//! A reusable trait-level conformance harness for [`Protocol`]
//! implementations.
//!
//! Every dissemination system in the workspace implements the same trait, and
//! the trait carries behavioural obligations the compiler cannot check: the
//! runner calls [`Protocol::on_init`] exactly once per participating node, a
//! timer re-armed from its own handler keeps firing, every survivor hears
//! about a departed peer through [`Protocol::on_peer_failed`], and control
//! messages sent from [`Protocol::on_shutdown`] still reach their
//! destinations. This module packages those checks so each system asserts
//! them with one call instead of re-growing its own lifecycle tests (see the
//! workspace-level `tests/protocol_conformance.rs`, which instantiates the
//! harness against all four systems).
//!
//! The harness works by wrapping every node in an [`Instrumented`] adapter —
//! a delegating [`Protocol`] implementation that counts hook invocations and
//! forwards to the wrapped instance via [`Ctx::retarget`] — and then driving
//! a scripted churn scenario (one crash, one graceful leave) through the real
//! [`Runner`]. Because the adapter shares the inner protocol's message and
//! timer types, the instrumented run is behaviourally identical to a bare
//! one.

use desim::{RngFactory, SimTime};

use crate::dynamics::NodeEvent;
use crate::network::{BlockReceipt, Network};
use crate::probe::ProbeStats;
use crate::protocol::{Ctx, Protocol};
use crate::runner::{RunReport, Runner};
use crate::topology::NodeId;

use dissem_codec::BlockId;

/// Per-node record of every trait hook the runner invoked.
#[derive(Debug, Clone, Default)]
pub struct HookStats {
    /// Number of [`Protocol::on_init`] calls.
    pub inits: u32,
    /// Number of [`Protocol::on_timer`] calls.
    pub timer_fires: u32,
    /// Number of [`Protocol::on_shutdown`] calls.
    pub shutdowns: u32,
    /// Peers reported through [`Protocol::on_peer_failed`], in order.
    pub failed_peers: Vec<NodeId>,
    /// `(virtual seconds, sender)` of every delivered control message.
    pub ctrl_received: Vec<(f64, NodeId)>,
    /// Control messages recorded *during* [`Protocol::on_shutdown`].
    pub farewell_msgs: usize,
}

/// A delegating wrapper that records which hooks the runner invoked.
///
/// `Instrumented<P>` implements [`Protocol`] with `P`'s own message and
/// timer types, so it can stand in for `P` anywhere — handlers forward to
/// the inner instance through [`Ctx::retarget`] and record into the same
/// command buffer.
#[derive(Debug)]
pub struct Instrumented<P: Protocol> {
    inner: P,
    stats: HookStats,
}

impl<P: Protocol> Instrumented<P> {
    /// Wraps `inner`.
    pub fn new(inner: P) -> Self {
        Instrumented {
            inner,
            stats: HookStats::default(),
        }
    }

    /// The hook record so far.
    pub fn stats(&self) -> &HookStats {
        &self.stats
    }

    /// Unwraps the inner protocol instance.
    pub fn into_inner(self) -> P {
        self.inner
    }
}

impl<P: Protocol> Protocol for Instrumented<P> {
    type Msg = P::Msg;
    type Timer = P::Timer;

    fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.stats.inits += 1;
        self.inner.on_init(&mut ctx.retarget());
    }

    fn on_control(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, msg: Self::Msg) {
        self.stats
            .ctrl_received
            .push((ctx.now().as_secs_f64(), from));
        self.inner.on_control(&mut ctx.retarget(), from, msg);
    }

    fn on_block_received(&mut self, ctx: &mut Ctx<'_, Self>, from: NodeId, receipt: BlockReceipt) {
        self.inner
            .on_block_received(&mut ctx.retarget(), from, receipt);
    }

    fn on_block_sent(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, block: BlockId) {
        self.inner.on_block_sent(&mut ctx.retarget(), to, block);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, timer: Self::Timer) {
        self.stats.timer_fires += 1;
        self.inner.on_timer(&mut ctx.retarget(), timer);
    }

    fn on_peer_failed(&mut self, ctx: &mut Ctx<'_, Self>, peer: NodeId) {
        self.stats.failed_peers.push(peer);
        self.inner.on_peer_failed(&mut ctx.retarget(), peer);
    }

    fn on_shutdown(&mut self, ctx: &mut Ctx<'_, Self>) {
        self.stats.shutdowns += 1;
        let before = ctx.commands_recorded();
        self.inner.on_shutdown(&mut ctx.retarget());
        let after = ctx.commands_recorded();
        self.stats.farewell_msgs += (before..after).filter(|&i| ctx.command_is_send(i)).count();
    }

    fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    fn probe_stats(&self) -> ProbeStats {
        self.inner.probe_stats()
    }
}

/// The scripted churn scenario [`check_lifecycle`] drives: one crash and one
/// later graceful leave, distinct nodes, both before the run can end.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Node that crashes (no goodbye).
    pub crash: NodeId,
    /// Crash instant.
    pub crash_at: SimTime,
    /// Node that leaves gracefully (gets [`Protocol::on_shutdown`]).
    pub leave: NodeId,
    /// Leave instant (must be after `crash_at`).
    pub leave_at: SimTime,
    /// Virtual-time limit for the run.
    pub limit: SimTime,
}

/// Everything the harness observed, for system-specific follow-up asserts.
#[derive(Debug)]
pub struct Outcome<P> {
    /// Per-node hook records, indexed by node id.
    pub stats: Vec<HookStats>,
    /// The runner's report.
    pub report: RunReport,
    /// The unwrapped protocol instances.
    pub nodes: Vec<P>,
    /// Whether a farewell control message sent from the leaver's
    /// [`Protocol::on_shutdown`] was delivered to a survivor.
    pub farewell_transmitted: bool,
}

/// Runs `nodes` through the [`Scenario`] and asserts the trait-level
/// lifecycle invariants every [`Protocol`] implementation must uphold:
///
/// 1. **`on_init` exactly once** per node that participates from t = 0;
/// 2. **re-armed timers keep firing** — every survivor records at least two
///    [`Protocol::on_timer`] deliveries;
/// 3. **`on_peer_failed` reaches every survivor**, for the crash and the
///    graceful leave alike, and never names the survivor itself;
/// 4. **`on_shutdown` fires exactly once** on the leaver, never on the
///    crasher or a survivor, and control messages it records are still
///    transmitted (asserted whenever the implementation sends any).
///
/// Node 0 is exempted from the completion stop-condition (every system in
/// the workspace uses node 0 as its source/seed). Panics with `label`-tagged
/// messages on violation; returns the observations for follow-up asserts.
pub fn check_lifecycle<P: Protocol>(
    label: &str,
    net: Network,
    nodes: Vec<P>,
    rng: &RngFactory,
    scenario: Scenario,
) -> Outcome<P> {
    assert!(
        scenario.crash_at < scenario.leave_at,
        "{label}: scenario expects the crash before the leave"
    );
    assert_ne!(
        scenario.crash, scenario.leave,
        "{label}: distinct churn victims required"
    );
    let n = nodes.len();
    let wrapped: Vec<Instrumented<P>> = nodes.into_iter().map(Instrumented::new).collect();
    let mut runner = Runner::new(net, wrapped, rng);
    runner.exempt_from_completion(NodeId(0));
    runner.schedule_node_event(scenario.crash_at, NodeEvent::Crash(scenario.crash));
    runner.schedule_node_event(scenario.leave_at, NodeEvent::Leave(scenario.leave));
    let report = runner.run_until(scenario.limit);
    assert!(
        report.end_time >= scenario.leave_at,
        "{label}: the run ended at {:?}, before the scripted leave at {:?} — \
         use a larger workload or earlier churn instants",
        report.end_time,
        scenario.leave_at
    );

    let (stats, nodes): (Vec<HookStats>, Vec<P>) = runner
        .into_nodes()
        .into_iter()
        .map(|w| (w.stats().clone(), w.into_inner()))
        .unzip();

    let is_survivor = |i: usize| i != scenario.crash.index() && i != scenario.leave.index();
    for (i, s) in stats.iter().enumerate() {
        assert_eq!(
            s.inits, 1,
            "{label}: node {i} saw {} on_init calls; the runner initialises \
             each participant exactly once",
            s.inits
        );
        if is_survivor(i) {
            assert!(
                s.timer_fires >= 2,
                "{label}: node {i} saw only {} timer deliveries; a timer \
                 re-armed from its handler must keep firing",
                s.timer_fires
            );
            for &victim in &[scenario.crash, scenario.leave] {
                assert!(
                    s.failed_peers.contains(&victim),
                    "{label}: survivor {i} was never told about the departure \
                     of {victim:?} (saw {:?})",
                    s.failed_peers
                );
            }
            assert!(
                !s.failed_peers.contains(&NodeId(i as u32)),
                "{label}: node {i} was notified of its own failure"
            );
            assert_eq!(s.shutdowns, 0, "{label}: survivor {i} received on_shutdown");
        }
    }
    assert_eq!(
        stats[scenario.leave.index()].shutdowns,
        1,
        "{label}: the graceful leaver must get exactly one on_shutdown"
    );
    assert_eq!(
        stats[scenario.crash.index()].shutdowns,
        0,
        "{label}: a crash must not trigger on_shutdown"
    );

    // Farewell transmission: if the leaver recorded control messages during
    // on_shutdown, at least one survivor must have heard from it at or after
    // the leave instant.
    let leave_secs = scenario.leave_at.as_secs_f64();
    let farewell_transmitted = stats
        .iter()
        .enumerate()
        .filter(|&(i, _)| is_survivor(i))
        .any(|(_, s)| {
            s.ctrl_received
                .iter()
                .any(|&(t, from)| from == scenario.leave && t >= leave_secs)
        });
    if stats[scenario.leave.index()].farewell_msgs > 0 {
        assert!(
            farewell_transmitted,
            "{label}: the leaver sent {} farewell message(s) from on_shutdown \
             but no survivor ever received one",
            stats[scenario.leave.index()].farewell_msgs
        );
    }
    assert_eq!(stats.len(), n);

    Outcome {
        stats,
        report,
        nodes,
        farewell_transmitted,
    }
}
