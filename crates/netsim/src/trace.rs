//! Structured run tracing: a causal, virtual-time-stamped record stream.
//!
//! End-of-run aggregates say *what* happened; a trace says *why*. Every
//! record carries the virtual time and the dense index of the simulator
//! event it was emitted under ([`TraceRecord::seq`]), so records replay in
//! exactly the order the runner processed them — the stream is a total order
//! of the run's observable actions.
//!
//! Tracing is strictly passive: sinks receive shared references to records
//! built from state the runner already computed, no RNG stream is consulted,
//! and no simulator state is touched. A traced run is therefore bit-identical
//! to an untraced run of the same configuration (see `docs/OBSERVABILITY.md`
//! for the overhead contract), and a sink that drops records — e.g. a full
//! [`RingSink`] — cannot perturb the experiment.
//!
//! The JSONL schema is flat: one object per line with `t` (virtual seconds),
//! `seq` (events processed when the record was emitted) and `kind`, plus the
//! kind's own fields. [`replay_goodput`] rebuilds the per-node goodput series
//! of [`crate::StatsProbe`] from nothing but `block_received` and
//! `probe_tick` records — the cross-check `lab trace` runs after every traced
//! experiment.

use std::collections::VecDeque;
use std::io::Write;

use serde::{Serialize, Value};

/// One trace record: virtual time, the dense id of the simulator event it
/// was emitted under, and the event body.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Virtual time of emission, in seconds.
    pub t: f64,
    /// Number of simulator events processed when the record was emitted —
    /// the dense dispatch id tying the record to its causing event.
    pub seq: u64,
    /// What happened.
    pub ev: TraceEvent,
}

/// The trace vocabulary. Node and flow identities are dense `u32` ids; event
/// keys are the raw [`desim::EventKey`] ids of the runner's simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A control message was delivered to a protocol hook.
    Msg {
        /// Sender node id.
        from: u32,
        /// Receiver node id.
        to: u32,
        /// Message type tag (see [`crate::WireSize::kind`]).
        msg: &'static str,
        /// Wire size in bytes.
        bytes: u64,
    },
    /// A protocol timer fired.
    Timer {
        /// The node whose timer fired.
        node: u32,
        /// The encoded timer token.
        token: u64,
    },
    /// A block finished serialising onto the wire at the sender.
    BlockSent {
        /// Sender node id.
        from: u32,
        /// Receiver node id.
        to: u32,
        /// Block index.
        block: u64,
        /// Block size in bytes.
        bytes: u64,
    },
    /// A block fully arrived and was handed to the receiver's protocol.
    BlockReceived {
        /// Receiver node id.
        node: u32,
        /// Sender node id.
        from: u32,
        /// Block index.
        block: u64,
        /// Block size in bytes.
        bytes: u64,
        /// The receiver's cumulative useful bytes *after* the delivery —
        /// what [`replay_goodput`] differences into goodput.
        useful_bytes: u64,
    },
    /// The fluid model scheduled (or moved) a connection's completion event.
    ConnSchedule {
        /// Dense flow id of the connection.
        fid: u32,
        /// Raw event key of the completion event.
        key: u64,
        /// Scheduled completion instant, in virtual seconds.
        at: f64,
    },
    /// The fluid model cancelled a connection's completion event.
    ConnCancel {
        /// Dense flow id of the connection.
        fid: u32,
        /// Raw event key of the cancelled event.
        key: u64,
    },
    /// Fluid-solver activity attributed to the current event: counter deltas
    /// against the previous event (see [`crate::network::SolverStats`]).
    Solver {
        /// Full component re-solves this event triggered.
        full_solves: u64,
        /// O(1) fast-path admissions.
        fast_admit: u64,
        /// O(1) fast-path removals.
        fast_remove: u64,
        /// O(1) non-binding ceiling growths.
        fast_growth: u64,
        /// Flows solved across this event's full solves.
        comp_flows: u64,
        /// Links solved across this event's full solves.
        comp_links: u64,
        /// High-water of the solver's ordered-filling heaps so far.
        max_heap: u64,
    },
    /// A node joined the experiment.
    NodeJoin {
        /// The joining node.
        node: u32,
    },
    /// A node left gracefully.
    NodeLeave {
        /// The leaving node.
        node: u32,
    },
    /// A node crashed.
    NodeCrash {
        /// The crashed node.
        node: u32,
    },
    /// A node was retired by the service layer after its swarm completed.
    /// If a new cohort later takes the slot over, its `node_join` record
    /// restarts the slot's useful-byte counter (see [`replay_goodput`]).
    NodeRetire {
        /// The retired node.
        node: u32,
    },
    /// A scheduled link-change batch took effect.
    LinkChange {
        /// Index of the batch in the runner's schedule.
        index: u64,
    },
    /// A cross-traffic occupancy change took effect.
    CrossChange {
        /// Source endpoint of the affected path.
        from: u32,
        /// Destination endpoint of the affected path.
        to: u32,
        /// New occupancy in bytes/second.
        rate: f64,
    },
    /// The probes sampled every node.
    ProbeTick,
    /// The run was resumed from a [`Snapshot`](crate::Snapshot) taken at
    /// virtual time `at`: everything before this instant happened in the
    /// checkpointed prefix and is absent from this stream. Always the first
    /// record of a resumed runner's trace — consumers that rebuild state
    /// from stream prefixes (e.g. [`replay_goodput`]) must reject streams
    /// carrying it, because the per-node baselines live in the missing
    /// prefix.
    SnapshotResume {
        /// Virtual time of the checkpoint the run resumed from, in seconds.
        at: f64,
    },
}

impl TraceEvent {
    /// The record's `kind` tag — stable names, used by the JSONL schema and
    /// the summarize/filter analyzer.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Msg { .. } => "msg",
            TraceEvent::Timer { .. } => "timer",
            TraceEvent::BlockSent { .. } => "block_sent",
            TraceEvent::BlockReceived { .. } => "block_received",
            TraceEvent::ConnSchedule { .. } => "conn_schedule",
            TraceEvent::ConnCancel { .. } => "conn_cancel",
            TraceEvent::Solver { .. } => "solver",
            TraceEvent::NodeJoin { .. } => "node_join",
            TraceEvent::NodeLeave { .. } => "node_leave",
            TraceEvent::NodeCrash { .. } => "node_crash",
            TraceEvent::NodeRetire { .. } => "node_retire",
            TraceEvent::LinkChange { .. } => "link_change",
            TraceEvent::CrossChange { .. } => "cross_change",
            TraceEvent::ProbeTick => "probe_tick",
            TraceEvent::SnapshotResume { .. } => "snapshot_resume",
        }
    }

    /// The kind-specific fields, in schema order.
    fn fields(&self) -> Vec<(String, Value)> {
        fn f(name: &str, v: Value) -> (String, Value) {
            (name.to_string(), v)
        }
        match *self {
            TraceEvent::Msg {
                from,
                to,
                msg,
                bytes,
            } => vec![
                f("from", Value::UInt(from.into())),
                f("to", Value::UInt(to.into())),
                f("msg", Value::Str(msg.to_string())),
                f("bytes", Value::UInt(bytes)),
            ],
            TraceEvent::Timer { node, token } => vec![
                f("node", Value::UInt(node.into())),
                f("token", Value::UInt(token)),
            ],
            TraceEvent::BlockSent {
                from,
                to,
                block,
                bytes,
            } => vec![
                f("from", Value::UInt(from.into())),
                f("to", Value::UInt(to.into())),
                f("block", Value::UInt(block)),
                f("bytes", Value::UInt(bytes)),
            ],
            TraceEvent::BlockReceived {
                node,
                from,
                block,
                bytes,
                useful_bytes,
            } => vec![
                f("node", Value::UInt(node.into())),
                f("from", Value::UInt(from.into())),
                f("block", Value::UInt(block)),
                f("bytes", Value::UInt(bytes)),
                f("useful_bytes", Value::UInt(useful_bytes)),
            ],
            TraceEvent::ConnSchedule { fid, key, at } => vec![
                f("fid", Value::UInt(fid.into())),
                f("key", Value::UInt(key)),
                f("at", Value::Float(at)),
            ],
            TraceEvent::ConnCancel { fid, key } => vec![
                f("fid", Value::UInt(fid.into())),
                f("key", Value::UInt(key)),
            ],
            TraceEvent::Solver {
                full_solves,
                fast_admit,
                fast_remove,
                fast_growth,
                comp_flows,
                comp_links,
                max_heap,
            } => vec![
                f("full_solves", Value::UInt(full_solves)),
                f("fast_admit", Value::UInt(fast_admit)),
                f("fast_remove", Value::UInt(fast_remove)),
                f("fast_growth", Value::UInt(fast_growth)),
                f("comp_flows", Value::UInt(comp_flows)),
                f("comp_links", Value::UInt(comp_links)),
                f("max_heap", Value::UInt(max_heap)),
            ],
            TraceEvent::NodeJoin { node } => vec![f("node", Value::UInt(node.into()))],
            TraceEvent::NodeLeave { node } => vec![f("node", Value::UInt(node.into()))],
            TraceEvent::NodeCrash { node } => vec![f("node", Value::UInt(node.into()))],
            TraceEvent::NodeRetire { node } => vec![f("node", Value::UInt(node.into()))],
            TraceEvent::LinkChange { index } => vec![f("index", Value::UInt(index))],
            TraceEvent::CrossChange { from, to, rate } => vec![
                f("from", Value::UInt(from.into())),
                f("to", Value::UInt(to.into())),
                f("rate", Value::Float(rate)),
            ],
            TraceEvent::ProbeTick => Vec::new(),
            TraceEvent::SnapshotResume { at } => vec![f("at", Value::Float(at))],
        }
    }
}

impl Serialize for TraceRecord {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("t".to_string(), Value::Float(self.t)),
            ("seq".to_string(), Value::UInt(self.seq)),
            ("kind".to_string(), Value::Str(self.ev.kind().to_string())),
        ];
        fields.extend(self.ev.fields());
        Value::Object(fields)
    }
}

/// Where trace records go. Object-safe so the runner can hold any sink
/// behind one pointer; implementations must treat `record` as append-only
/// observation (dropping a record is fine, feeding anything back is not).
pub trait TraceSink {
    /// Offers one record to the sink. The sink may keep it or drop it.
    fn record(&mut self, rec: &TraceRecord);

    /// Number of records the sink accepted.
    fn recorded(&self) -> u64;

    /// Number of records the sink dropped (offered but not kept).
    fn dropped(&self) -> u64 {
        0
    }
}

/// A bounded in-memory sink: keeps the most recent `capacity` records,
/// dropping the oldest on overflow (and counting the drops). The cheap
/// default for `lab trace` summaries and post-mortem forensics on truncated
/// runs.
#[derive(Debug)]
pub struct RingSink {
    buf: VecDeque<TraceRecord>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Consumes the ring, returning the retained records oldest-first.
    pub fn into_records(self) -> Vec<TraceRecord> {
        self.buf.into()
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec.clone());
        self.recorded += 1;
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }

    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A sink that writes each record as one JSON line (see the module docs for
/// the schema). Buffer the writer — the runner emits records on the hot
/// path.
pub struct JsonlSink<W: Write> {
    writer: W,
    recorded: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer,
            recorded: 0,
        }
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        let line = serde_json::to_string(rec).expect("trace records always serialize");
        // Trace output is best-effort observation: an I/O error must not
        // abort the experiment, so it is swallowed here by design.
        let _ = writeln!(self.writer, "{line}");
        self.recorded += 1;
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }
}

/// A sink that counts records without retaining them — the cheapest way to
/// measure tracing overhead or surface the per-run record count.
#[derive(Debug, Default)]
pub struct CountingSink {
    recorded: u64,
}

impl CountingSink {
    /// Creates the sink.
    pub fn new() -> Self {
        CountingSink::default()
    }
}

impl TraceSink for CountingSink {
    fn record(&mut self, _rec: &TraceRecord) {
        self.recorded += 1;
    }

    fn recorded(&self) -> u64 {
        self.recorded
    }
}

/// Per-kind record counts plus stream extent — the `lab trace` summary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// `(kind, count)` pairs, sorted by kind name.
    pub by_kind: Vec<(&'static str, u64)>,
    /// Total records summarized.
    pub total: u64,
    /// Virtual time of the first record, if any.
    pub first_t: Option<f64>,
    /// Virtual time of the last record, if any.
    pub last_t: Option<f64>,
}

/// Summarizes a record stream: counts per kind, total, and time extent.
pub fn summarize<'a>(records: impl IntoIterator<Item = &'a TraceRecord>) -> TraceSummary {
    let mut summary = TraceSummary::default();
    for rec in records {
        summary.total += 1;
        if summary.first_t.is_none() {
            summary.first_t = Some(rec.t);
        }
        summary.last_t = Some(rec.t);
        let kind = rec.ev.kind();
        match summary.by_kind.binary_search_by(|(k, _)| k.cmp(&kind)) {
            Ok(i) => summary.by_kind[i].1 += 1,
            Err(i) => summary.by_kind.insert(i, (kind, 1)),
        }
    }
    summary
}

/// One replayed sample: the tick instant and each node's goodput in bits
/// per second, derived purely from the trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySample {
    /// Virtual time of the probe tick, in seconds.
    pub time_secs: f64,
    /// Per-node goodput over the elapsed tick, bits/second, indexed by node.
    pub goodput_bps: Vec<f64>,
}

/// Rebuilds the [`crate::StatsProbe`] per-node goodput series from a trace:
/// `block_received` records carry each node's cumulative useful bytes, and
/// `probe_tick` records mark the sampling instants in exact stream order, so
/// differencing reproduces the probe's arithmetic — including the
/// ties-count-into-the-next-interval semantics, because a delivery landing
/// exactly on a tick appears *after* the tick in the stream iff the probe
/// counted it in the next interval. `node_join` records zero a slot's
/// cumulative count, mirroring the live probe's cohort-change reset when a
/// service run re-populates a retired slot with a fresh node.
///
/// # Errors
///
/// A stream carrying a `snapshot_resume` record is rejected: it starts at a
/// checkpoint, so the per-node cumulative baselines (and the `node_join`
/// prelude) live in the missing prefix and every differenced goodput after
/// the first tick would silently be wrong. Replay the uninterrupted run, or
/// trace from the start.
pub fn replay_goodput<'a>(
    records: impl IntoIterator<Item = &'a TraceRecord>,
    nodes: usize,
) -> Result<Vec<ReplaySample>, String> {
    let mut useful = vec![0u64; nodes];
    let mut prev = vec![0u64; nodes];
    let mut prev_t = 0.0f64;
    let mut out = Vec::new();
    for rec in records {
        match rec.ev {
            TraceEvent::SnapshotResume { at } => {
                return Err(format!(
                    "stream resumes from a snapshot at t={at}: the pre-resume \
                     baselines are not in the trace, goodput cannot be replayed"
                ));
            }
            TraceEvent::BlockReceived {
                node, useful_bytes, ..
            } => {
                if let Some(slot) = useful.get_mut(node as usize) {
                    *slot = useful_bytes;
                }
            }
            TraceEvent::NodeJoin { node } => {
                // A joining node's useful-byte counter starts from zero. For
                // churn joiners this is a no-op (the slot never received
                // anything); for a service-mode slot taken over by a new
                // cohort it discards the previous occupant's final count,
                // exactly like the live probe's cohort-change reset. A slot
                // that retires and is never re-filled keeps its counter, so
                // its tail bytes still land in the retirement interval.
                if let Some(slot) = useful.get_mut(node as usize) {
                    *slot = 0;
                }
                if let Some(slot) = prev.get_mut(node as usize) {
                    *slot = 0;
                }
            }
            TraceEvent::ProbeTick => {
                let dt = rec.t - prev_t;
                let goodput = useful
                    .iter()
                    .zip(prev.iter())
                    .map(|(&now, &before)| {
                        if dt > 0.0 {
                            now.saturating_sub(before) as f64 * 8.0 / dt
                        } else {
                            0.0
                        }
                    })
                    .collect();
                prev.copy_from_slice(&useful);
                prev_t = rec.t;
                out.push(ReplaySample {
                    time_secs: rec.t,
                    goodput_bps: goodput,
                });
            }
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: f64, seq: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { t, seq, ev }
    }

    #[test]
    fn ring_keeps_the_most_recent_records_and_counts_drops() {
        let mut ring = RingSink::new(2);
        for seq in 0..5 {
            ring.record(&rec(seq as f64, seq, TraceEvent::ProbeTick));
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<u64> = ring.records().map(|r| r.seq).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn jsonl_lines_follow_the_flat_schema() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(
            1.5,
            42,
            TraceEvent::Msg {
                from: 0,
                to: 3,
                msg: "diff",
                bytes: 64,
            },
        ));
        sink.record(&rec(2.0, 43, TraceEvent::ProbeTick));
        assert_eq!(sink.recorded(), 2);
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            r#"{"t":1.5,"seq":42,"kind":"msg","from":0,"to":3,"msg":"diff","bytes":64}"#
        );
        assert_eq!(lines[1], r#"{"t":2.0,"seq":43,"kind":"probe_tick"}"#);
    }

    #[test]
    fn summary_counts_by_kind_sorted() {
        let records = vec![
            rec(0.0, 0, TraceEvent::ProbeTick),
            rec(1.0, 5, TraceEvent::Timer { node: 1, token: 0 }),
            rec(2.0, 9, TraceEvent::ProbeTick),
        ];
        let s = summarize(&records);
        assert_eq!(s.total, 3);
        assert_eq!(s.by_kind, vec![("probe_tick", 2), ("timer", 1)]);
        assert_eq!((s.first_t, s.last_t), (Some(0.0), Some(2.0)));
    }

    #[test]
    fn replay_differences_useful_bytes_between_ticks() {
        let recv = |t, seq, node, useful| {
            rec(
                t,
                seq,
                TraceEvent::BlockReceived {
                    node,
                    from: 0,
                    block: 0,
                    bytes: 0,
                    useful_bytes: useful,
                },
            )
        };
        let records = vec![
            rec(0.0, 0, TraceEvent::ProbeTick),
            recv(0.5, 1, 1, 1000),
            // Lands exactly on the tick but *after* it in the stream: counts
            // into the next interval, exactly like the live probe.
            rec(1.0, 2, TraceEvent::ProbeTick),
            recv(1.0, 3, 1, 3000),
            rec(2.0, 4, TraceEvent::ProbeTick),
        ];
        let samples = replay_goodput(&records, 2).unwrap();
        assert_eq!(samples.len(), 3);
        // First sample at t = 0: no elapsed time, goodput 0.
        assert_eq!(samples[0].goodput_bps, vec![0.0, 0.0]);
        assert_eq!(samples[1].goodput_bps, vec![0.0, 8000.0]);
        assert_eq!(samples[2].goodput_bps, vec![0.0, 16000.0]);
    }

    #[test]
    fn replay_rejects_streams_that_resume_from_a_snapshot() {
        let records = vec![
            rec(12.5, 100, TraceEvent::SnapshotResume { at: 12.5 }),
            rec(13.0, 101, TraceEvent::ProbeTick),
        ];
        let err = replay_goodput(&records, 2).unwrap_err();
        assert!(
            err.contains("t=12.5"),
            "error names the resume point: {err}"
        );
        // The marker serializes like any other record.
        assert_eq!(records[0].ev.kind(), "snapshot_resume");
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&records[0]);
        let text = String::from_utf8(sink.into_inner().unwrap()).unwrap();
        assert_eq!(
            text.trim_end(),
            r#"{"t":12.5,"seq":100,"kind":"snapshot_resume","at":12.5}"#
        );
    }
}
