//! Open-system service mode: generator-driven continuous swarms.
//!
//! Every experiment below `fig21` is a *closed* system: a fixed population
//! starts at t = 0, downloads one file, and the run ends when the last
//! receiver finishes. Real dissemination deployments are *open*: swarms keep
//! arriving, finish, and release their network share while new ones are
//! admitted. This module drives a [`Runner`] as such an open system:
//!
//! * [`ArrivalGen`] — where swarms come from: a Poisson process of a given
//!   offered rate, or a deterministic trace replayed exactly;
//! * [`SwarmSource`] — how a swarm looks: the caller draws per-swarm cohort
//!   sizes and file sizes from its own seeded distributions and builds the
//!   protocol instances for the slot range the manager assigns;
//! * [`ServiceConfig`] + [`run_service`] — the lifecycle manager: the node
//!   pool is partitioned into fixed-capacity contiguous *segments*; each
//!   arriving swarm claims the lowest free segment (FIFO-queueing behind a
//!   full pool — the queue is what bends the knee in the offered-load
//!   sweep), runs to completion over the shared contended topology, and is
//!   then retired, releasing its timers, in-flight events and flow-table
//!   rows for the next cohort (see [`Runner::retire`]);
//! * [`ServiceReport`] — steady-state results: sustained goodput over the
//!   post-warmup measurement window, per-cohort completion percentiles, and
//!   an admitted/completed/in-flight/utilisation time-series.
//!
//! Everything is a pure function of the seed: arrivals, shapes, join spreads
//! and the interleaving of swarms are all drawn from [`RngFactory`] streams,
//! so a service run is replayable and byte-identical across hosts and thread
//! counts, exactly like a closed [`RunReport`](crate::RunReport).
//!
//! ### Measurement semantics
//!
//! Per-receiver completion latency is measured from the swarm's *arrival*
//! (not its admission), so time spent queueing for a free segment counts —
//! the open-system response-time convention. Sustained goodput is the total
//! useful-byte production of the whole pool between the warmup boundary and
//! the horizon, divided by that window; bytes banked by cohorts that retire
//! mid-window are accumulated before their slots are recycled, so nothing is
//! lost to reuse.

use std::collections::VecDeque;

use desim::{RngFactory, SimDuration, SimTime};
use rand::Rng;

use crate::dynamics::NodeEvent;
use crate::probe::TimeSeries;
use crate::protocol::Protocol;
use crate::runner::{Runner, StopReason};
use crate::topology::{LinkId, NodeId};

/// Where swarms come from.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalGen {
    /// Memoryless arrivals at `rate_per_sec` swarms per virtual second
    /// (exponential inter-arrival times, drawn from the factory's
    /// `"service.arrivals"` stream).
    Poisson {
        /// Offered swarm-arrival rate, swarms per virtual second.
        rate_per_sec: f64,
    },
    /// A deterministic arrival trace, replayed exactly (must be sorted
    /// ascending).
    Trace(Vec<SimTime>),
}

/// Materialises the arrival instants within `horizon`, capped at
/// `max_arrivals`. Pure function of the generator and the factory seed, so
/// tests can assert the closed-form statistics of the Poisson stream and the
/// exact replay of a trace without running any swarm.
///
/// # Panics
///
/// Panics on a non-positive Poisson rate or an unsorted trace.
pub fn arrival_schedule(
    gen: &ArrivalGen,
    horizon: SimTime,
    max_arrivals: usize,
    rng: &RngFactory,
) -> Vec<SimTime> {
    match gen {
        ArrivalGen::Poisson { rate_per_sec } => {
            assert!(*rate_per_sec > 0.0, "Poisson arrival rate must be positive");
            let mut stream = rng.stream("service.arrivals");
            let mut t = 0.0f64;
            let mut out = Vec::new();
            while out.len() < max_arrivals {
                // gen::<f64>() is uniform on [0, 1); flip it so the argument
                // of ln is never zero.
                let u: f64 = stream.gen();
                t += -(1.0 - u).ln() / rate_per_sec;
                if t > horizon.as_secs_f64() {
                    break;
                }
                out.push(SimTime::from_secs_f64(t));
            }
            out
        }
        ArrivalGen::Trace(times) => {
            assert!(
                times.windows(2).all(|w| w[0] <= w[1]),
                "arrival trace must be sorted ascending"
            );
            times
                .iter()
                .filter(|&&t| t <= horizon)
                .take(max_arrivals)
                .copied()
                .collect()
        }
    }
}

/// The shape of one arriving swarm, drawn by the [`SwarmSource`].
#[derive(Debug, Clone, PartialEq)]
pub struct SwarmShape {
    /// Slots the swarm occupies, source included. Must be at least 2 and at
    /// most the segment capacity.
    pub size: usize,
    /// Bytes of the file this swarm disseminates (informational; the
    /// source's built nodes embody it).
    pub file_bytes: u64,
    /// Slots active at admission (source included, so at least 1). The
    /// remaining `size - initial` receivers join spread over
    /// `join_window_secs` — a flash crowd when `initial` is small.
    pub initial: usize,
    /// Window (seconds after admission) over which the late joiners arrive,
    /// uniformly. Ignored when `initial == size`.
    pub join_window_secs: f64,
}

/// Builds the swarms the service admits. Implementations draw shapes from
/// their own seeded streams (index is the 0-based arrival number, so draws
/// are independent of admission timing) and construct protocol instances
/// for the contiguous slot range `[base, base + shape.size)`; the first slot
/// is the swarm's source and is exempted from the completion condition.
pub trait SwarmSource<P: Protocol> {
    /// Draws the shape of the `index`-th arriving swarm.
    fn shape(&mut self, index: usize) -> SwarmShape;

    /// Builds the protocol instances for a swarm occupying the slot range
    /// starting at `base`. Must return exactly `shape.size` nodes, in slot
    /// order (the node for `base` first).
    fn build(&mut self, base: NodeId, shape: &SwarmShape) -> Vec<P>;
}

/// Configuration of a service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceConfig {
    /// End of the service window: arrivals and measurement stop here.
    pub horizon: SimTime,
    /// Start of the steady-state measurement window. Goodput earned before
    /// the warmup boundary is excluded from the sustained figure.
    pub warmup: SimTime,
    /// Cadence of the admitted/completed/in-flight/utilisation samples (and
    /// the bound on how long a finished swarm can linger before it is
    /// reaped).
    pub tick: SimDuration,
    /// Slots per segment: the fixed capacity unit an arriving swarm claims.
    /// The pool serves `pool_size / segment_slots` swarms concurrently.
    pub segment_slots: usize,
    /// Hard cap on the number of arrivals materialised from the generator.
    pub max_arrivals: usize,
    /// The contended core link, if the topology has one: sampled into
    /// [`ServiceSample::core_utilisation`].
    pub core: Option<LinkId>,
}

/// One steady-state sample of the whole service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceSample {
    /// Virtual time of the sample, seconds.
    pub time_secs: f64,
    /// Swarms admitted so far (cumulative).
    pub admitted: usize,
    /// Swarms completed and reaped so far (cumulative).
    pub completed: usize,
    /// Swarms occupying a segment at the instant.
    pub in_flight: usize,
    /// Swarms waiting for a free segment at the instant.
    pub queued: usize,
    /// Load / capacity of the configured core link, in `[0, 1]` under
    /// fluid-model invariants (0 when no core link is configured).
    pub core_utilisation: f64,
    /// Service-wide useful goodput over the elapsed tick, bits per second.
    pub goodput_bps: f64,
}

/// Completion summary of one reaped cohort. Latencies are measured from the
/// swarm's *arrival* instant, so segment-queueing delay is included.
#[derive(Debug, Clone, PartialEq)]
pub struct CohortReport {
    /// The cohort's unique tag (also on every probe sample of its slots).
    pub cohort: u32,
    /// Slots the swarm occupied, source included.
    pub size: usize,
    /// Bytes of the file it disseminated.
    pub file_bytes: u64,
    /// When the swarm arrived (seconds).
    pub arrival_secs: f64,
    /// When it was admitted to a segment (equals `arrival_secs` unless it
    /// queued).
    pub admit_secs: f64,
    /// When the manager reaped it (at most one tick after its last receiver
    /// finished).
    pub reaped_secs: f64,
    /// Median receiver completion latency, seconds since arrival.
    pub p50_secs: f64,
    /// 90th-percentile receiver completion latency.
    pub p90_secs: f64,
    /// 99th-percentile receiver completion latency.
    pub p99_secs: f64,
}

/// Results of a service run. Every field is a deterministic function of the
/// configuration and seed — like [`RunReport`](crate::RunReport), the report
/// is carried through byte-identity comparisons via its `Debug` form (see
/// [`ServiceReport::canonical`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceReport {
    /// The service window, seconds.
    pub horizon_secs: f64,
    /// The warmup boundary, seconds.
    pub warmup_secs: f64,
    /// Useful bytes produced pool-wide inside the measurement window.
    pub steady_useful_bytes: u64,
    /// `steady_useful_bytes` as a rate over the measurement window, bits
    /// per second: the sustained-goodput figure of merit.
    pub sustained_goodput_bps: f64,
    /// Arrivals materialised within the horizon.
    pub arrivals: usize,
    /// Swarms admitted to a segment.
    pub admitted: usize,
    /// Swarms that completed and were reaped.
    pub completed: usize,
    /// Swarms still occupying a segment at the horizon.
    pub in_flight_at_end: usize,
    /// Swarms still queueing for a segment at the horizon.
    pub queued_at_end: usize,
    /// Peak number of concurrently admitted swarms.
    pub max_concurrent: usize,
    /// Per-cohort completion summaries, in reap order.
    pub cohorts: Vec<CohortReport>,
    /// Whole-service samples, one per tick from t = 0.
    pub samples: Vec<ServiceSample>,
    /// Total simulator events processed.
    pub events: u64,
    /// Concatenated per-slot probe series, if the caller installed one via
    /// [`Runner::record_timeseries`] before the run.
    pub timeseries: Option<TimeSeries>,
}

impl ServiceReport {
    /// Canonical string form for byte-identity comparisons.
    pub fn canonical(&self) -> String {
        format!("{self:?}")
    }

    /// `q`-quantile of the per-cohort median completion latency across all
    /// reaped cohorts, weighted by receiver count. `None` if nothing
    /// completed.
    pub fn latency_quantile(&self, q: f64) -> Option<f64> {
        let mut all: Vec<f64> = Vec::new();
        for c in &self.cohorts {
            for _ in 0..c.size.saturating_sub(1) {
                all.push(c.p50_secs);
            }
        }
        if all.is_empty() {
            return None;
        }
        all.sort_by(f64::total_cmp);
        Some(all[quantile_index(all.len(), q)])
    }
}

/// Index of the `q`-quantile in a sorted slice of `len` items, using the
/// same ceiling convention as [`TimeSeries::quantile_over_active`].
fn quantile_index(len: usize, q: f64) -> usize {
    ((len as f64 * q).ceil() as usize).clamp(1, len) - 1
}

struct ActiveSwarm {
    cohort: u32,
    base: u32,
    size: usize,
    file_bytes: u64,
    arrival: SimTime,
    admit: SimTime,
}

struct QueuedSwarm {
    index: usize,
    arrival: SimTime,
}

/// Drives `runner` as an open system: swarms arrive per `gen`, are shaped
/// and built by `source`, and contend for the runner's topology until
/// `cfg.horizon`. The runner must be freshly constructed (virtual time 0);
/// every slot is deactivated here, so the pool's placeholder nodes are never
/// initialised — slots only come alive when a cohort is admitted.
///
/// # Panics
///
/// Panics if the runner is not at virtual time zero, if the pool is smaller
/// than one segment, or if a drawn shape violates its documented bounds.
pub fn run_service<P, S>(
    runner: &mut Runner<P>,
    cfg: &ServiceConfig,
    gen: &ArrivalGen,
    source: &mut S,
    rng: &RngFactory,
) -> ServiceReport
where
    P: Protocol,
    S: SwarmSource<P>,
{
    assert_eq!(
        runner.now(),
        SimTime::ZERO,
        "service mode needs a fresh runner"
    );
    assert!(cfg.segment_slots >= 2, "a segment needs source + receiver");
    assert!(cfg.warmup < cfg.horizon, "warmup must precede the horizon");
    let tick = cfg.tick;
    assert!(tick > SimDuration::ZERO, "tick must be positive");
    let pool = runner.nodes().len();
    let segments = pool / cfg.segment_slots;
    assert!(segments >= 1, "pool smaller than one segment");

    for i in 0..pool as u32 {
        runner.set_inactive_at_start(NodeId(i));
    }
    runner.set_run_to_limit(true);

    let arrivals = arrival_schedule(gen, cfg.horizon, cfg.max_arrivals, rng);

    // Lowest-base-first free list (kept sorted descending so `pop` yields
    // the lowest base): admission order over segments is deterministic and
    // independent of which swarm freed which segment.
    let mut free: Vec<u32> = (0..segments as u32)
        .rev()
        .map(|s| s * cfg.segment_slots as u32)
        .collect();
    let mut queue: VecDeque<QueuedSwarm> = VecDeque::new();
    let mut active: Vec<ActiveSwarm> = Vec::new();
    let mut cohorts: Vec<CohortReport> = Vec::new();
    let mut samples: Vec<ServiceSample> = Vec::new();
    let mut series: Vec<crate::probe::TimeSample> = Vec::new();
    let mut series_interval = 0.0f64;

    let mut next_cohort: u32 = 1;
    let mut next_arrival = 0usize;
    let mut admitted = 0usize;
    let mut max_concurrent = 0usize;
    let mut retired_useful: u64 = 0;
    let mut warmup_useful: Option<u64> = None;
    let mut prev_total: u64 = 0;
    let mut prev_sample_t = 0.0f64;
    let mut next_tick = SimTime::ZERO;
    let mut event_limited = false;

    loop {
        // Advance to the next instant the manager must act at.
        let mut boundary = cfg.horizon;
        if warmup_useful.is_none() && cfg.warmup < boundary {
            boundary = boundary.min(cfg.warmup);
        }
        if next_tick < boundary {
            boundary = next_tick;
        }
        if let Some(&t) = arrivals.get(next_arrival) {
            if t < boundary {
                boundary = t;
            }
        }
        let stage = runner.run_until(boundary);
        if let Some(mut ts) = stage.timeseries {
            series.append(&mut ts.samples);
            series_interval = ts.interval_secs;
        }
        let now = runner.now();

        // Reap swarms whose receivers have all finished: bank their useful
        // bytes, then recycle their slots (timers cancelled, flows released,
        // stale events fenced off by the slot-incarnation bump).
        let mut i = 0;
        while i < active.len() {
            let done = (active[i].base + 1..active[i].base + active[i].size as u32)
                .all(|s| runner.completion_time(NodeId(s)).is_some());
            if !done {
                i += 1;
                continue;
            }
            let swarm = active.swap_remove(i);
            let mut latencies: Vec<f64> = Vec::with_capacity(swarm.size - 1);
            for s in swarm.base..swarm.base + swarm.size as u32 {
                let slot = NodeId(s);
                retired_useful += runner.node(slot).probe_stats().useful_bytes;
                if s != swarm.base {
                    let t = runner
                        .completion_time(slot)
                        .expect("reaped swarm has complete receivers");
                    latencies.push((t - swarm.arrival).as_secs_f64());
                }
                runner.retire(slot);
            }
            latencies.sort_by(f64::total_cmp);
            cohorts.push(CohortReport {
                cohort: swarm.cohort,
                size: swarm.size,
                file_bytes: swarm.file_bytes,
                arrival_secs: swarm.arrival.as_secs_f64(),
                admit_secs: swarm.admit.as_secs_f64(),
                reaped_secs: now.as_secs_f64(),
                p50_secs: latencies[quantile_index(latencies.len(), 0.5)],
                p90_secs: latencies[quantile_index(latencies.len(), 0.9)],
                p99_secs: latencies[quantile_index(latencies.len(), 0.99)],
            });
            free.push(swarm.base);
            free.sort_unstable_by(|a, b| b.cmp(a));
        }

        // Enqueue arrivals that are due, then admit while segments are free.
        // Arrivals cease at the horizon; swarms already in flight keep
        // running only up to the horizon itself.
        if now < cfg.horizon && !event_limited {
            while arrivals.get(next_arrival).is_some_and(|&t| t <= now) {
                queue.push_back(QueuedSwarm {
                    index: next_arrival,
                    arrival: arrivals[next_arrival],
                });
                next_arrival += 1;
            }
            while let Some(&base) = free.last() {
                let Some(next) = queue.pop_front() else { break };
                free.pop();
                let shape = source.shape(next.index);
                assert!(
                    shape.size >= 2 && shape.size <= cfg.segment_slots,
                    "swarm size {} outside [2, {}]",
                    shape.size,
                    cfg.segment_slots
                );
                let initial = shape.initial.clamp(1, shape.size);
                let nodes = source.build(NodeId(base), &shape);
                assert_eq!(nodes.len(), shape.size, "source built a wrong-size swarm");
                let cohort = next_cohort;
                next_cohort += 1;
                for (off, fresh) in nodes.into_iter().enumerate() {
                    let slot = NodeId(base + off as u32);
                    runner.replace_node(slot, fresh);
                    runner.set_cohort(slot, cohort);
                }
                runner.exempt_from_completion(NodeId(base));
                let initial_slots: Vec<NodeId> =
                    (0..initial as u32).map(|off| NodeId(base + off)).collect();
                runner.activate_cohort(&initial_slots);
                if initial < shape.size {
                    // Late joiners: the flash-crowd tail, spread uniformly
                    // over the join window from a per-cohort stream so the
                    // spread is independent of every other draw.
                    let mut jr = rng.stream_indexed("service.joins", u64::from(cohort));
                    for off in initial as u32..shape.size as u32 {
                        let dt = jr.gen::<f64>() * shape.join_window_secs.max(0.0);
                        runner.schedule_node_event(
                            now + SimDuration::from_secs_f64(dt),
                            NodeEvent::Join(NodeId(base + off)),
                        );
                    }
                }
                active.push(ActiveSwarm {
                    cohort,
                    base,
                    size: shape.size,
                    file_bytes: shape.file_bytes,
                    arrival: next.arrival,
                    admit: now,
                });
                admitted += 1;
                max_concurrent = max_concurrent.max(active.len());
            }
        }

        // Pool-wide useful-byte total: everything banked by reaped cohorts
        // plus the live counters of currently-admitted slots.
        let live_useful: u64 = active
            .iter()
            .flat_map(|s| s.base..s.base + s.size as u32)
            .map(|s| runner.node(NodeId(s)).probe_stats().useful_bytes)
            .sum();
        let total_useful = retired_useful + live_useful;

        if warmup_useful.is_none() && now >= cfg.warmup {
            warmup_useful = Some(total_useful);
        }

        if now >= next_tick {
            let t = now.as_secs_f64();
            let dt = t - prev_sample_t;
            let core_utilisation = cfg.core.map_or(0.0, |link| {
                let cap = runner.network().topology().link_capacity(link);
                if cap > 0.0 {
                    runner.network().link_load(link) / cap
                } else {
                    0.0
                }
            });
            samples.push(ServiceSample {
                time_secs: t,
                admitted,
                completed: cohorts.len(),
                in_flight: active.len(),
                queued: queue.len(),
                core_utilisation,
                goodput_bps: if dt > 0.0 {
                    (total_useful - prev_total) as f64 * 8.0 / dt
                } else {
                    0.0
                },
            });
            prev_total = total_useful;
            prev_sample_t = t;
            next_tick += tick;
        }

        if now >= cfg.horizon || event_limited {
            let window = (now.min(cfg.horizon) - cfg.warmup).as_secs_f64().max(1e-9);
            let steady = total_useful.saturating_sub(warmup_useful.unwrap_or(total_useful));
            runner.set_run_to_limit(false);
            return ServiceReport {
                horizon_secs: cfg.horizon.as_secs_f64(),
                warmup_secs: cfg.warmup.as_secs_f64(),
                steady_useful_bytes: steady,
                sustained_goodput_bps: steady as f64 * 8.0 / window,
                arrivals: arrivals.len(),
                admitted,
                completed: cohorts.len(),
                in_flight_at_end: active.len(),
                queued_at_end: queue.len(),
                max_concurrent,
                cohorts,
                samples,
                events: runner.events_processed(),
                timeseries: (!series.is_empty()).then_some(TimeSeries {
                    interval_secs: series_interval,
                    samples: series,
                }),
            };
        }

        // A runner that hit its event cap cannot advance further: take one
        // more lap to emit the final sample and report, then stop.
        if stage.reason == StopReason::EventLimit {
            event_limited = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{BlockReceipt, Network};
    use crate::probe::ProbeStats;
    use crate::protocol::{Ctx, WireSize};
    use crate::topology;
    use dissem_codec::{BlockBitmap, BlockId, FileSpec};

    #[test]
    fn poisson_interarrivals_match_the_closed_form() {
        // Exponential(λ): mean 1/λ, variance 1/λ². 4000 draws keep the
        // sample statistics within a few percent of the closed form.
        let rng = RngFactory::new(20050410);
        let rate = 0.5;
        let times = arrival_schedule(
            &ArrivalGen::Poisson { rate_per_sec: rate },
            SimTime::from_secs_f64(1e9),
            4000,
            &rng,
        );
        assert_eq!(times.len(), 4000);
        let instants: Vec<f64> = std::iter::once(0.0)
            .chain(times.iter().map(|t| t.as_secs_f64()))
            .collect();
        let gaps: Vec<f64> = instants.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        assert!(
            (mean - 1.0 / rate).abs() < 0.05 / rate,
            "sample mean {mean} too far from {}",
            1.0 / rate
        );
        assert!(
            (var - 1.0 / (rate * rate)).abs() < 0.2 / (rate * rate),
            "sample variance {var} too far from {}",
            1.0 / (rate * rate)
        );
        // The schedule is a pure function of the seed.
        let again = arrival_schedule(
            &ArrivalGen::Poisson { rate_per_sec: rate },
            SimTime::from_secs_f64(1e9),
            4000,
            &rng,
        );
        assert_eq!(times, again);
    }

    #[test]
    fn trace_arrivals_replay_exactly() {
        let rng = RngFactory::new(1);
        let trace = vec![
            SimTime::from_secs_f64(0.5),
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(2.0),
            SimTime::from_secs_f64(7.25),
        ];
        let sched = arrival_schedule(
            &ArrivalGen::Trace(trace.clone()),
            SimTime::from_secs_f64(5.0),
            100,
            &rng,
        );
        assert_eq!(sched, &trace[..3], "horizon-filtered exact replay");
        let capped = arrival_schedule(
            &ArrivalGen::Trace(trace.clone()),
            SimTime::from_secs_f64(100.0),
            2,
            &rng,
        );
        assert_eq!(capped, &trace[..2], "max_arrivals caps the schedule");
    }

    #[test]
    #[should_panic(expected = "sorted ascending")]
    fn unsorted_traces_are_rejected() {
        let rng = RngFactory::new(1);
        let _ = arrival_schedule(
            &ArrivalGen::Trace(vec![
                SimTime::from_secs_f64(2.0),
                SimTime::from_secs_f64(1.0),
            ]),
            SimTime::from_secs_f64(10.0),
            10,
            &rng,
        );
    }

    /// Minimal swarm protocol for service tests: the segment's source floods
    /// every receiver in its range directly, with a keep-alive timer so
    /// timer-leak regressions are visible.
    struct MiniSwarm {
        id: NodeId,
        base: u32,
        size: usize,
        spec: FileSpec,
        have: BlockBitmap,
        next_to_send: Vec<u32>,
        bytes: u64,
    }

    #[derive(Debug)]
    enum NoMsg {}

    impl WireSize for NoMsg {
        fn wire_size(&self) -> usize {
            0
        }
    }

    impl MiniSwarm {
        fn new(id: NodeId, base: u32, size: usize, spec: FileSpec) -> Self {
            let have = if id.0 == base {
                BlockBitmap::full(spec.num_blocks())
            } else {
                BlockBitmap::new(spec.num_blocks())
            };
            MiniSwarm {
                id,
                base,
                size,
                spec,
                have,
                next_to_send: vec![0; size],
                bytes: 0,
            }
        }

        fn is_source(&self) -> bool {
            self.id.0 == self.base
        }

        fn fill(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId) {
            let idx = (to.0 - self.base) as usize;
            let mut queued = 0usize;
            while ctx.pending_to(to) + queued < 2 && self.next_to_send[idx] < self.spec.num_blocks()
            {
                let b = BlockId(self.next_to_send[idx]);
                ctx.queue_block(to, b, u64::from(self.spec.block_size(b)));
                self.next_to_send[idx] += 1;
                queued += 1;
            }
        }
    }

    impl Protocol for MiniSwarm {
        type Msg = NoMsg;
        type Timer = ();

        fn on_init(&mut self, ctx: &mut Ctx<'_, Self>) {
            // The flood starts from the first timer tick, not from on_init:
            // at admission the source is activated before its receivers, and
            // blocks queued towards inactive peers are discarded by design.
            ctx.set_timer(SimDuration::from_secs(1), ());
        }

        fn on_control(&mut self, _ctx: &mut Ctx<'_, Self>, _from: NodeId, _msg: NoMsg) {}

        fn on_block_received(&mut self, _c: &mut Ctx<'_, Self>, _f: NodeId, r: BlockReceipt) {
            if self.have.insert(r.block) {
                self.bytes += r.bytes;
            }
        }

        fn on_block_sent(&mut self, ctx: &mut Ctx<'_, Self>, to: NodeId, _block: BlockId) {
            if self.is_source() {
                self.fill(ctx, to);
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Self>, _t: ()) {
            // Re-arms forever; only retirement may stop it. Timer-leak
            // regressions show up as pending events after the last reap.
            ctx.set_timer(SimDuration::from_secs(1), ());
            if self.is_source() {
                for off in 1..self.size as u32 {
                    self.fill(ctx, NodeId(self.base + off));
                }
            }
        }

        fn is_complete(&self) -> bool {
            !self.is_source() && self.have.is_full()
        }

        fn probe_stats(&self) -> ProbeStats {
            ProbeStats {
                useful_bytes: self.bytes,
                ..Default::default()
            }
        }
    }

    struct MiniSource {
        spec: FileSpec,
        size: usize,
    }

    impl SwarmSource<MiniSwarm> for MiniSource {
        fn shape(&mut self, _index: usize) -> SwarmShape {
            SwarmShape {
                size: self.size,
                file_bytes: self.spec.file_bytes,
                initial: self.size,
                join_window_secs: 0.0,
            }
        }

        fn build(&mut self, base: NodeId, shape: &SwarmShape) -> Vec<MiniSwarm> {
            (0..shape.size)
                .map(|i| MiniSwarm::new(NodeId(base.0 + i as u32), base.0, shape.size, self.spec))
                .collect()
        }
    }

    fn mini_runner(pool: usize) -> Runner<MiniSwarm> {
        let rng = RngFactory::new(20050410);
        let topo = topology::constrained_access(pool);
        let spec = FileSpec::new(64 * 1024, 16 * 1024);
        let nodes: Vec<MiniSwarm> = (0..pool)
            .map(|i| MiniSwarm::new(NodeId(i as u32), 0, pool, spec))
            .collect();
        Runner::new(Network::new(topo), nodes, &rng)
    }

    fn mini_cfg(horizon: f64, segment_slots: usize) -> ServiceConfig {
        ServiceConfig {
            horizon: SimTime::from_secs_f64(horizon),
            warmup: SimTime::from_secs_f64(horizon * 0.25),
            tick: SimDuration::from_secs(5),
            segment_slots,
            max_arrivals: 64,
            core: None,
        }
    }

    #[test]
    fn swarm_teardown_releases_events_and_flows() {
        // Leak regression (the reason `retire` exists): after each swarm is
        // reaped, the event queue and the flow table must return to their
        // idle baselines — a leak would grow them per cohort and eventually
        // poison a long service run.
        let mut runner = mini_runner(4);
        let spec = FileSpec::new(64 * 1024, 16 * 1024);
        let mut source = MiniSource { spec, size: 4 };
        let rng = RngFactory::new(20050410);
        let gen = ArrivalGen::Trace(vec![
            SimTime::from_secs_f64(0.0),
            SimTime::from_secs_f64(40.0),
            SimTime::from_secs_f64(80.0),
        ]);
        let report = run_service(&mut runner, &mini_cfg(120.0, 4), &gen, &mut source, &rng);
        assert_eq!(report.admitted, 3);
        assert_eq!(
            report.completed, 3,
            "all three sequential swarms finish well within their slot: {report:?}"
        );
        assert_eq!(
            runner.network().live_flows(),
            0,
            "retired cohorts must release every flow-table row"
        );
        assert_eq!(
            runner.pending_events(),
            0,
            "retired cohorts must leave no timers or deliveries pending"
        );
    }

    #[test]
    fn queued_swarms_wait_for_a_free_segment() {
        // One segment, two simultaneous arrivals: the second swarm queues
        // and is admitted only after the first retires.
        let mut runner = mini_runner(4);
        let spec = FileSpec::new(64 * 1024, 16 * 1024);
        let mut source = MiniSource { spec, size: 4 };
        let rng = RngFactory::new(20050410);
        let gen = ArrivalGen::Trace(vec![SimTime::ZERO, SimTime::ZERO]);
        let report = run_service(&mut runner, &mini_cfg(160.0, 4), &gen, &mut source, &rng);
        assert_eq!(report.admitted, 2);
        assert_eq!(report.completed, 2, "{report:?}");
        let second = &report.cohorts[1];
        assert_eq!(second.arrival_secs, 0.0);
        assert!(
            second.admit_secs >= report.cohorts[0].reaped_secs,
            "queued swarm admitted only after the first frees the segment: {report:?}"
        );
        assert!(
            second.p50_secs > report.cohorts[0].p50_secs,
            "queueing delay counts into completion latency"
        );
    }

    #[test]
    fn service_runs_are_deterministic() {
        let run = || {
            let mut runner = mini_runner(8);
            runner.record_timeseries(SimDuration::from_secs(10));
            let spec = FileSpec::new(64 * 1024, 16 * 1024);
            let mut source = MiniSource { spec, size: 4 };
            let rng = RngFactory::new(20050410);
            let gen = ArrivalGen::Poisson { rate_per_sec: 0.04 };
            run_service(&mut runner, &mini_cfg(400.0, 4), &gen, &mut source, &rng).canonical()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sustained_goodput_counts_only_the_measurement_window() {
        let mut runner = mini_runner(4);
        let spec = FileSpec::new(64 * 1024, 16 * 1024);
        let mut source = MiniSource { spec, size: 4 };
        let rng = RngFactory::new(20050410);
        // A single swarm that finishes during warmup: nothing of it may leak
        // into the steady-state figure.
        let gen = ArrivalGen::Trace(vec![SimTime::ZERO]);
        let cfg = ServiceConfig {
            horizon: SimTime::from_secs_f64(200.0),
            warmup: SimTime::from_secs_f64(100.0),
            tick: SimDuration::from_secs(5),
            segment_slots: 4,
            max_arrivals: 8,
            core: None,
        };
        let report = run_service(&mut runner, &cfg, &gen, &mut source, &rng);
        assert_eq!(report.completed, 1);
        assert!(
            report.cohorts[0].reaped_secs < 100.0,
            "premise: the swarm must finish inside warmup: {report:?}"
        );
        assert_eq!(report.steady_useful_bytes, 0);
        assert_eq!(report.sustained_goodput_bps, 0.0);
    }

    #[test]
    fn replayed_service_traces_reproduce_the_live_goodput_series() {
        // The offline path: `replay_goodput` over a service run's trace must
        // rebuild the live probe's series, including the cohort reset when a
        // retired slot is re-populated by a later swarm (node_join zeroes the
        // slot's cumulative count). Three sequential swarms over one segment
        // exercise exactly that re-population.
        use crate::trace::{replay_goodput, RingSink, TraceRecord, TraceSink};
        use std::cell::RefCell;
        use std::rc::Rc;

        struct SharedSink {
            ring: Rc<RefCell<RingSink>>,
        }
        impl TraceSink for SharedSink {
            fn record(&mut self, rec: &TraceRecord) {
                self.ring.borrow_mut().record(rec);
            }
            fn recorded(&self) -> u64 {
                self.ring.borrow().recorded()
            }
            fn dropped(&self) -> u64 {
                self.ring.borrow().dropped()
            }
        }

        let pool = 4;
        let mut runner = mini_runner(pool);
        let ring = Rc::new(RefCell::new(RingSink::new(1 << 16)));
        runner.set_trace_sink(Box::new(SharedSink {
            ring: Rc::clone(&ring),
        }));
        runner.record_timeseries(SimDuration::from_secs(5));
        let spec = FileSpec::new(64 * 1024, 16 * 1024);
        let mut source = MiniSource { spec, size: 4 };
        let rng = RngFactory::new(20050410);
        let gen = ArrivalGen::Trace(vec![
            SimTime::ZERO,
            SimTime::from_secs_f64(40.0),
            SimTime::from_secs_f64(80.0),
        ]);
        let report = run_service(&mut runner, &mini_cfg(120.0, 4), &gen, &mut source, &rng);
        assert_eq!(report.completed, 3, "premise: all three swarms finish");

        let ring = ring.borrow();
        assert_eq!(ring.dropped(), 0, "ring must hold the whole trace");
        let records: Vec<TraceRecord> = ring.records().cloned().collect();
        let replay =
            replay_goodput(&records, pool).expect("an untraced-prefix-free stream replays");

        let live = report.timeseries.as_ref().expect("timeseries recorded");
        assert_eq!(
            replay.len(),
            live.samples.len(),
            "replay must see one probe_tick per live sample"
        );
        for (r, l) in replay.iter().zip(&live.samples) {
            assert_eq!(r.time_secs, l.time_secs);
            assert_eq!(r.goodput_bps.len(), l.nodes.len());
            for (node, (got, want)) in r
                .goodput_bps
                .iter()
                .zip(l.nodes.iter().map(|n| n.goodput_bps))
                .enumerate()
            {
                let tol = 1e-6 * want.abs().max(1.0);
                assert!(
                    (got - want).abs() <= tol,
                    "t={}s node {node}: replay {got} vs live {want}",
                    r.time_secs
                );
            }
        }
        assert!(
            replay
                .iter()
                .any(|s| s.goodput_bps.iter().any(|&g| g > 0.0)),
            "premise: the series must contain non-zero goodput"
        );
    }
}
