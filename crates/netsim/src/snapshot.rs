//! Checkpoint/fork support: freeze a live [`Runner`] mid-run and resume any
//! number of independent continuations from the frozen instant.
//!
//! A sweep whose cells share a warm-up prefix — same topology, same join
//! phase, same seed, different dynamics — wastes most of its wall-clock
//! re-simulating that prefix per cell. [`Runner::checkpoint`] captures the
//! complete simulation state as a [`Snapshot`]; [`Runner::resume`] turns a
//! snapshot (or a clone of one) back into a live runner that continues
//! exactly where the original stood. The contract, pinned by
//! `tests/snapshot_fork.rs` for every shipped protocol:
//!
//! > `checkpoint-at-t → resume → run-to-end` yields a
//! > [`RunReport`](crate::RunReport) whose
//! > [`canonical()`](crate::RunReport::canonical) form is **byte-identical**
//! > to the uninterrupted run's.
//!
//! What a snapshot captures: the event queue (live keyed table and pending
//! triples, tombstones included, so future [`desim::EventKey`]s sequence
//! identically), per-node RNG stream positions, the fluid model's flow table
//! with per-link usage/ceiling sums, node activation/cohort/completion
//! state, per-protocol state via [`ForkState`], forked probes with their
//! accumulated series, and the metrics registry. What it deliberately does
//! not: trace sinks and profilers (pure observers — a resumed runner starts
//! untraced) and the dispatch scratch buffer (empty at any quiescent point).
//!
//! Checkpoint at a quiescent instant — between [`Runner::advance_until`]
//! stages — never from inside a protocol hook.
//!
//! New protocols opt in by being [`Clone`]: the blanket impl makes every
//! cloneable protocol [`ForkState`]. Implement `ForkState` by hand only for
//! a protocol whose state holds something `Clone` cannot copy correctly
//! (interior shared handles, caches keyed by identity, …).
//!
//! [`Runner`]: crate::Runner
//! [`Runner::checkpoint`]: crate::Runner::checkpoint
//! [`Runner::resume`]: crate::Runner::resume
//! [`Runner::advance_until`]: crate::Runner::advance_until

pub use crate::runner::Snapshot;

/// Deep-copy hook for per-protocol state inside a [`Snapshot`].
///
/// `fork_state` must return an instance that shares **no mutable state**
/// with `self` and behaves identically given identical inputs — the
/// fork-divergence test mutates one fork and asserts the other is
/// unaffected. Every `Clone` type gets this for free via the blanket impl,
/// which is the right implementation for value-semantics protocol state
/// (all four shipped systems qualify).
pub trait ForkState {
    /// Returns a deep, independent copy of the state.
    fn fork_state(&self) -> Self;
}

impl<T: Clone> ForkState for T {
    fn fork_state(&self) -> Self {
        self.clone()
    }
}
