//! Run-time observation: probes sampled on a virtual-time tick.
//!
//! End-of-run aggregates (completion times, traffic counters) cannot show
//! *how* a transfer evolved — the paper's bandwidth-over-time analysis needs
//! per-node instantaneous rates while the experiment executes. This module
//! adds that capability to the runner without touching protocol code:
//!
//! * [`ProbeStats`] — cumulative counters a protocol exposes through
//!   [`Protocol::probe_stats`] (useful bytes, duplicate blocks,
//!   sender/receiver-set sizes). The default implementation returns zeros,
//!   so probes work (vacuously) on any protocol.
//! * [`Probe`] — the observer hook. The runner calls
//!   [`Probe::sample`] on every node once per configured tick of virtual
//!   time; a probe that accumulates a [`TimeSeries`] hands it back through
//!   [`Probe::take_series`] when the run ends, and the runner carries it on
//!   [`RunReport::timeseries`](crate::RunReport::timeseries).
//! * [`StatsProbe`] — the built-in probe: instantaneous per-node goodput
//!   (derived by differencing cumulative useful bytes between ticks),
//!   cumulative duplicate-block ratio, and sender/receiver-set sizes.
//!
//! Probe ticks are ordinary simulator events, so sampling instants interleave
//! deterministically with protocol events; two runs of the same configuration
//! produce bit-identical series. A run whose queue holds nothing but the next
//! probe tick is considered drained — observation never keeps an experiment
//! alive.

use desim::SimTime;

use crate::network::Network;
use crate::protocol::Protocol;

/// Cumulative per-node counters exposed to run-time probes.
///
/// All fields are monotone totals since the start of the run; rate-style
/// quantities (goodput) are derived by the probe from successive samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Useful (non-duplicate) payload bytes received so far.
    pub useful_bytes: u64,
    /// Useful blocks received so far.
    pub useful_blocks: u64,
    /// Duplicate block receipts so far.
    pub duplicate_blocks: u64,
    /// Current sender-set size (peers this node downloads from).
    pub senders: usize,
    /// Current receiver-set size (peers this node uploads to).
    pub receivers: usize,
}

impl ProbeStats {
    /// Fraction of received blocks that were duplicates, in `[0, 1]`.
    pub fn duplicate_ratio(&self) -> f64 {
        let total = self.useful_blocks + self.duplicate_blocks;
        if total == 0 {
            return 0.0;
        }
        self.duplicate_blocks as f64 / total as f64
    }
}

/// One node's measurements at one sampling instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSample {
    /// Instantaneous goodput over the elapsed tick, in bits per second.
    pub goodput_bps: f64,
    /// Cumulative duplicate-block ratio in `[0, 1]`.
    pub duplicate_ratio: f64,
    /// Sender-set size at the instant.
    pub senders: usize,
    /// Receiver-set size at the instant.
    pub receivers: usize,
    /// Whether the node was participating at the instant.
    pub active: bool,
    /// Cohort tag of the slot's occupant (0 outside service runs), so a
    /// series spanning several cohorts on one slot can be split per swarm.
    pub cohort: u32,
}

/// All nodes' measurements at one sampling instant.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSample {
    /// Virtual time of the sample (seconds).
    pub time_secs: f64,
    /// One entry per node, indexed by node id.
    pub nodes: Vec<NodeSample>,
}

/// A probe-built series of per-node measurements over virtual time.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Sampling interval (seconds). Stamped by the runner from the tick it
    /// actually sampled on, so it cannot drift from a probe's own idea of
    /// the cadence.
    pub interval_secs: f64,
    /// Samples in time order. The first is taken at t = 0.
    pub samples: Vec<TimeSample>,
}

impl TimeSeries {
    /// `(time, mean f(node))` over the active nodes of each sample, skipping
    /// node indices below `skip` (typically 1 to exclude the source).
    pub fn mean_over_active(&self, skip: usize, f: impl Fn(&NodeSample) -> f64) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| {
                let mut sum = 0.0;
                let mut n = 0usize;
                for node in s.nodes.iter().skip(skip).filter(|n| n.active) {
                    sum += f(node);
                    n += 1;
                }
                (s.time_secs, if n == 0 { 0.0 } else { sum / n as f64 })
            })
            .collect()
    }

    /// `(time, q-quantile of f(node))` over the active nodes of each sample,
    /// skipping node indices below `skip`. Empty samples yield 0.
    pub fn quantile_over_active(
        &self,
        skip: usize,
        q: f64,
        f: impl Fn(&NodeSample) -> f64,
    ) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .map(|s| {
                let mut vals: Vec<f64> = s
                    .nodes
                    .iter()
                    .skip(skip)
                    .filter(|n| n.active)
                    .map(&f)
                    .collect();
                vals.sort_by(f64::total_cmp);
                let v = if vals.is_empty() {
                    0.0
                } else {
                    let idx = ((vals.len() as f64 * q).ceil() as usize).clamp(1, vals.len()) - 1;
                    vals[idx]
                };
                (s.time_secs, v)
            })
            .collect()
    }
}

/// An observer the runner invokes once per virtual-time tick.
///
/// `nodes` is every protocol instance (indexed by node id), `active` the
/// participation flags, `cohorts` the per-slot cohort tags (all zero outside
/// service runs); probes must not assume every node is participating, nor
/// that a slot hosts the same node for the whole run.
pub trait Probe<P: Protocol> {
    /// Takes one sample at virtual time `now`.
    fn sample(
        &mut self,
        now: SimTime,
        nodes: &[P],
        net: &Network,
        active: &[bool],
        cohorts: &[u32],
    );

    /// Called once when the run ends; a probe that built a [`TimeSeries`]
    /// surrenders it here so the runner can attach it to the report.
    fn take_series(&mut self) -> Option<TimeSeries> {
        None
    }

    /// Returns an independent deep copy of the probe — accumulated series
    /// included — for [`Runner::checkpoint`](crate::Runner::checkpoint).
    /// The default `None` marks the probe non-forkable: checkpointing a
    /// runner carrying one panics (silently dropping a probe would diverge
    /// the forked run's report from the uninterrupted one).
    fn fork(&self) -> Option<Box<dyn Probe<P> + Send + Sync>> {
        None
    }
}

/// The built-in probe: goodput / duplicate ratio / peer-set sizes per node.
/// It does not know its own cadence — it measures elapsed virtual time
/// between the samples it is handed, and the runner stamps the configured
/// interval onto the series it surrenders.
#[derive(Debug, Clone, Default)]
pub struct StatsProbe {
    prev_bytes: Vec<u64>,
    prev_cohort: Vec<u32>,
    prev_time: f64,
    samples: Vec<TimeSample>,
}

impl StatsProbe {
    /// Creates the probe.
    pub fn new() -> Self {
        StatsProbe::default()
    }
}

impl<P: Protocol> Probe<P> for StatsProbe {
    fn sample(
        &mut self,
        now: SimTime,
        nodes: &[P],
        _net: &Network,
        active: &[bool],
        cohorts: &[u32],
    ) {
        let t = now.as_secs_f64();
        if self.prev_bytes.is_empty() {
            self.prev_bytes = vec![0; nodes.len()];
            self.prev_cohort = vec![0; nodes.len()];
        }
        let dt = t - self.prev_time;
        let mut out = Vec::with_capacity(nodes.len());
        for (i, node) in nodes.iter().enumerate() {
            let stats = node.probe_stats();
            // A cohort change means the slot was re-populated with a fresh
            // node whose cumulative counter restarted from zero: everything
            // it has banked belongs to this interval. Differencing against
            // the previous occupant's count would go negative (and the
            // previous occupant's tail bytes already landed in the interval
            // it retired in).
            let delta = if cohorts[i] != self.prev_cohort[i] {
                self.prev_cohort[i] = cohorts[i];
                stats.useful_bytes
            } else {
                stats.useful_bytes.saturating_sub(self.prev_bytes[i])
            };
            let goodput_bps = if dt > 0.0 {
                delta as f64 * 8.0 / dt
            } else {
                0.0
            };
            self.prev_bytes[i] = stats.useful_bytes;
            out.push(NodeSample {
                goodput_bps,
                duplicate_ratio: stats.duplicate_ratio(),
                senders: stats.senders,
                receivers: stats.receivers,
                active: active[i],
                cohort: cohorts[i],
            });
        }
        self.prev_time = t;
        self.samples.push(TimeSample {
            time_secs: t,
            nodes: out,
        });
    }

    fn take_series(&mut self) -> Option<TimeSeries> {
        Some(TimeSeries {
            // Placeholder; the runner stamps the actual tick interval.
            interval_secs: 0.0,
            samples: std::mem::take(&mut self.samples),
        })
    }

    fn fork(&self) -> Option<Box<dyn Probe<P> + Send + Sync>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_ratio_handles_zero_totals() {
        assert_eq!(ProbeStats::default().duplicate_ratio(), 0.0);
        let s = ProbeStats {
            useful_blocks: 3,
            duplicate_blocks: 1,
            ..Default::default()
        };
        assert!((s.duplicate_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn series_aggregation_skips_source_and_inactive() {
        let series = TimeSeries {
            interval_secs: 1.0,
            samples: vec![TimeSample {
                time_secs: 1.0,
                nodes: vec![
                    // Source (skipped) with an absurd value that must not leak in.
                    NodeSample {
                        goodput_bps: 1e12,
                        duplicate_ratio: 0.0,
                        senders: 0,
                        receivers: 9,
                        active: true,
                        cohort: 0,
                    },
                    NodeSample {
                        goodput_bps: 100.0,
                        duplicate_ratio: 0.0,
                        senders: 1,
                        receivers: 1,
                        active: true,
                        cohort: 0,
                    },
                    NodeSample {
                        goodput_bps: 300.0,
                        duplicate_ratio: 0.0,
                        senders: 2,
                        receivers: 2,
                        active: true,
                        cohort: 0,
                    },
                    // Crashed node: excluded.
                    NodeSample {
                        goodput_bps: 777.0,
                        duplicate_ratio: 0.0,
                        senders: 0,
                        receivers: 0,
                        active: false,
                        cohort: 0,
                    },
                ],
            }],
        };
        let mean = series.mean_over_active(1, |n| n.goodput_bps);
        assert_eq!(mean, vec![(1.0, 200.0)]);
        let p100 = series.quantile_over_active(1, 1.0, |n| n.goodput_bps);
        assert_eq!(p100, vec![(1.0, 300.0)]);
    }
}
