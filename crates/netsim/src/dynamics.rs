//! Dynamic network scenarios (paper §4.1, §4.5) and node churn.
//!
//! Two scripted bandwidth-change scenarios drive the "dynamic" halves of the
//! evaluation:
//!
//! * [`correlated_decrease_schedule`] — the paper's main synthetic change
//!   model: every `period` (20 s), half of the participants are chosen at
//!   random, and for each of them the core links *from* a random half of the
//!   other participants are cut to 50% of their current value. Changes are
//!   cumulative and never reversed.
//! * [`cascading_degrade_schedule`] — the Fig 12 scenario: every 25 s another
//!   one of the victim node's dedicated sender links is reduced to 100 Kbps
//!   until every path to the victim has been degraded.
//!
//! Beyond link dynamics, this module also defines the **node-lifecycle**
//! vocabulary ([`NodeEvent`], [`NodeSchedule`]) and two churn scenario
//! builders for a peer-to-peer dissemination workload:
//!
//! * [`crash_wave_schedule`] — a fraction of the receivers crashes (no
//!   goodbye, connections reset) at instants spread over a window;
//! * [`flash_crowd_schedule`] — only a core group is present at t = 0 and
//!   the remaining receivers join in a wave over a window.

use std::collections::HashSet;

use desim::{RngFactory, SimDuration, SimTime};
use rand::seq::SliceRandom;

use crate::topology::{NodeId, Topology};
use crate::units::{kbps, BytesPerSec};

/// How a single directional core link changes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandwidthChange {
    /// Multiply the current core bandwidth by this factor.
    Scale(f64),
    /// Set the core bandwidth to this absolute value (bytes/second).
    Set(BytesPerSec),
}

/// A batch of directional link changes that take effect at one instant.
#[derive(Debug, Clone, Default)]
pub struct LinkChangeBatch {
    /// `(from, to, change)` triples applied to the core path `from → to`.
    pub changes: Vec<(NodeId, NodeId, BandwidthChange)>,
}

impl LinkChangeBatch {
    /// Applies the batch to `topo` and returns the affected ordered pairs so
    /// the caller can re-price live connections. Changes act on the **core
    /// link** carrying each pair: on the paper's dedicated-link meshes that
    /// is exactly the pair's private link; on a shared-core topology a change
    /// through any mapped pair re-sizes the shared link itself. A `Scale` is
    /// applied **at most once per underlying link per batch** — a batch that
    /// halves ten pairs riding one shared link halves that link once, it does
    /// not cut it to 1/1024th.
    pub fn apply(&self, topo: &mut Topology) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::with_capacity(self.changes.len());
        let mut scaled: std::collections::HashSet<crate::topology::LinkId> = HashSet::new();
        for &(from, to, change) in &self.changes {
            match change {
                BandwidthChange::Scale(f) => {
                    let link = topo.core_link(from, to);
                    if scaled.insert(link) {
                        topo.scale_core_bw(from, to, f);
                    }
                }
                BandwidthChange::Set(v) => {
                    topo.set_core_bw(from, to, v);
                }
            };
            pairs.push((from, to));
        }
        pairs
    }

    /// Number of directional links affected.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// True when the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }
}

/// A scheduled scenario: batches of link changes with their activation times.
pub type ChangeSchedule = Vec<(SimTime, LinkChangeBatch)>;

/// The paper's correlated, cumulative bandwidth-decrease scenario.
///
/// Every `period`, 50% of the `n` participants are selected uniformly at
/// random; for each selected participant, the core links from a randomly
/// chosen 50% of the *other* participants towards it are cut to half of
/// their current value (the reverse direction is unaffected). The schedule
/// covers `[period, horizon]`.
pub fn correlated_decrease_schedule(
    n: usize,
    period: SimDuration,
    horizon: SimDuration,
    rng: &RngFactory,
) -> ChangeSchedule {
    let mut rng = rng.stream("dynamics.correlated");
    let mut schedule = Vec::new();
    let mut t = SimTime::ZERO + period;
    let end = SimTime::ZERO + horizon;
    let all: Vec<u32> = (0..n as u32).collect();
    while t <= end {
        let mut batch = LinkChangeBatch::default();
        let mut victims = all.clone();
        victims.shuffle(&mut rng);
        let victims = &victims[..n / 2];
        for &v in victims {
            let mut others: Vec<u32> = all.iter().copied().filter(|&x| x != v).collect();
            others.shuffle(&mut rng);
            let senders = &others[..others.len() / 2];
            for &s in senders {
                batch
                    .changes
                    .push((NodeId(s), NodeId(v), BandwidthChange::Scale(0.5)));
            }
        }
        schedule.push((t, batch));
        t += period;
    }
    schedule
}

/// A scheduled change of the background (cross-traffic) load on a core link:
/// from the activation instant on, an unresponsive CBR-like stream occupies
/// `rate` bytes/second of the core link carrying `via.0 → via.1` (use
/// `rate = 0` to switch it off). The fluid model subtracts the occupancy from
/// the link's usable capacity, so overlay flows crossing the link are
/// squeezed — and win the capacity back the moment the wave ends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossTraffic {
    /// Names the core link by an ordered pair mapped onto it. On a
    /// shared-core topology any mapped pair names the same link.
    pub via: (NodeId, NodeId),
    /// Occupied bandwidth in bytes/second.
    pub rate: BytesPerSec,
}

/// A scheduled cross-traffic scenario: occupancy changes with their
/// activation times.
pub type CrossSchedule = Vec<(SimTime, CrossTraffic)>;

/// A square wave of cross traffic on the core link carrying `via`: starting
/// from an idle link, the background stream switches **on** (occupying
/// `rate`) at `period`, off at `2 × period`, on again at `3 × period`, …,
/// for every boundary within `horizon`. The fig19 scenario drives Bullet′
/// against exactly this pattern.
pub fn cross_traffic_square_wave(
    via: (NodeId, NodeId),
    rate: BytesPerSec,
    period: SimDuration,
    horizon: SimDuration,
) -> CrossSchedule {
    assert!(!period.is_zero(), "the square wave needs a positive period");
    let mut schedule = Vec::new();
    let mut t = SimTime::ZERO + period;
    let end = SimTime::ZERO + horizon;
    let mut on = true;
    while t <= end {
        schedule.push((
            t,
            CrossTraffic {
                via,
                rate: if on { rate } else { 0.0 },
            },
        ));
        on = !on;
        t += period;
    }
    schedule
}

/// A node-lifecycle transition scheduled against the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEvent {
    /// The node becomes a participant (it must have been marked inactive at
    /// start via `Runner::set_inactive_at_start`).
    Join(NodeId),
    /// The node leaves gracefully: it gets an `on_shutdown` callback, then
    /// its connections are torn down.
    Leave(NodeId),
    /// The node crashes: connections are reset with no goodbye.
    Crash(NodeId),
}

impl NodeEvent {
    /// The node this event concerns.
    pub fn node(self) -> NodeId {
        match self {
            NodeEvent::Join(n) | NodeEvent::Leave(n) | NodeEvent::Crash(n) => n,
        }
    }
}

/// A scheduled churn scenario: lifecycle events with their activation times.
pub type NodeSchedule = Vec<(SimTime, NodeEvent)>;

/// Builds a crash wave: `fraction` of the receivers (nodes `1..n`, never the
/// source) crash at instants spread evenly over `[start, end]`. The victims
/// are chosen uniformly at random; events are returned in activation order.
pub fn crash_wave_schedule(
    n: usize,
    fraction: f64,
    start: SimTime,
    end: SimTime,
    rng: &RngFactory,
) -> NodeSchedule {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "fraction must be in [0, 1]"
    );
    assert!(end >= start, "crash window must not be inverted");
    let mut rng = rng.stream("dynamics.crash_wave");
    let mut receivers: Vec<u32> = (1..n as u32).collect();
    receivers.shuffle(&mut rng);
    let victims = ((n.saturating_sub(1)) as f64 * fraction).round() as usize;
    let window = end - start;
    receivers
        .into_iter()
        .take(victims)
        .enumerate()
        .map(|(i, v)| {
            // Spread instants evenly; `victims == 1` crashes at the start.
            let t = start + window.mul_f64(i as f64 / victims.max(2).saturating_sub(1) as f64);
            (t, NodeEvent::Crash(NodeId(v)))
        })
        .collect()
}

/// Builds a flash-crowd join wave: nodes `initial..n` are absent at t = 0 and
/// join at instants spread evenly over `[start, end]`, in index order. The
/// caller must mark those nodes inactive at start on the runner.
pub fn flash_crowd_schedule(
    n: usize,
    initial: usize,
    start: SimTime,
    end: SimTime,
) -> NodeSchedule {
    assert!(initial >= 1, "the source must be present from the start");
    assert!(end >= start, "join window must not be inverted");
    let joiners = n.saturating_sub(initial);
    let window = end - start;
    (initial..n)
        .enumerate()
        .map(|(i, node)| {
            let t = start + window.mul_f64(i as f64 / joiners.max(2).saturating_sub(1) as f64);
            (t, NodeEvent::Join(NodeId(node as u32)))
        })
        .collect()
}

/// The Fig 12 cascading-slowdown scenario: the victim (last node) has
/// dedicated links from `senders` peers; every `period` (25 s in the paper)
/// one more of those links is degraded to 100 Kbps, in index order.
pub fn cascading_degrade_schedule(
    senders: &[NodeId],
    victim: NodeId,
    period: SimDuration,
) -> ChangeSchedule {
    let mut schedule = Vec::new();
    let mut t = SimTime::ZERO + period;
    for &s in senders {
        let batch = LinkChangeBatch {
            changes: vec![(s, victim, BandwidthChange::Set(kbps(100.0)))],
        };
        schedule.push((t, batch));
        t += period;
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::constrained_access;
    use crate::units::mbps;

    #[test]
    fn correlated_schedule_has_expected_shape() {
        let rng = RngFactory::new(5);
        let sched = correlated_decrease_schedule(
            20,
            SimDuration::from_secs(20),
            SimDuration::from_secs(100),
            &rng,
        );
        assert_eq!(sched.len(), 5, "one batch per period within the horizon");
        for (i, (t, batch)) in sched.iter().enumerate() {
            assert_eq!(t.as_secs_f64(), 20.0 * (i + 1) as f64);
            // 10 victims x 9 or 10 senders each (others.len()/2 = 9).
            assert_eq!(batch.len(), 10 * 9);
            for &(from, to, change) in &batch.changes {
                assert_ne!(from, to);
                assert_eq!(change, BandwidthChange::Scale(0.5));
            }
        }
    }

    #[test]
    fn correlated_schedule_is_deterministic() {
        let a = correlated_decrease_schedule(
            10,
            SimDuration::from_secs(20),
            SimDuration::from_secs(40),
            &RngFactory::new(9),
        );
        let b = correlated_decrease_schedule(
            10,
            SimDuration::from_secs(20),
            SimDuration::from_secs(40),
            &RngFactory::new(9),
        );
        assert_eq!(a.len(), b.len());
        for ((_, ba), (_, bb)) in a.iter().zip(b.iter()) {
            assert_eq!(ba.changes, bb.changes);
        }
    }

    #[test]
    fn apply_scales_and_sets_bandwidth() {
        let mut topo = constrained_access(4);
        let before = topo.path(NodeId(0), NodeId(1)).bw;
        let batch = LinkChangeBatch {
            changes: vec![
                (NodeId(0), NodeId(1), BandwidthChange::Scale(0.5)),
                (NodeId(2), NodeId(3), BandwidthChange::Set(kbps(100.0))),
            ],
        };
        let pairs = batch.apply(&mut topo);
        assert_eq!(pairs, vec![(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))]);
        assert_eq!(topo.path(NodeId(0), NodeId(1)).bw, before * 0.5);
        assert_eq!(topo.path(NodeId(2), NodeId(3)).bw, kbps(100.0));
        // Reverse directions untouched.
        assert_eq!(topo.path(NodeId(1), NodeId(0)).bw, mbps(10.0));
    }

    #[test]
    fn batch_scales_a_shared_link_once() {
        // Ten pairs of one batch riding one shared core link: the link is
        // halved once, not ten times (successive *batches* still compound).
        let mut topo = crate::topology::shared_core_mesh(6, mbps(2.0), 0.0, &RngFactory::new(1));
        let batch = LinkChangeBatch {
            changes: (1..6)
                .flat_map(|v| {
                    [
                        (NodeId(0), NodeId(v), BandwidthChange::Scale(0.5)),
                        (NodeId(v), NodeId(0), BandwidthChange::Scale(0.5)),
                    ]
                })
                .collect(),
        };
        batch.apply(&mut topo);
        assert_eq!(topo.path(NodeId(0), NodeId(1)).bw, mbps(1.0));
        batch.apply(&mut topo);
        assert_eq!(topo.path(NodeId(2), NodeId(0)).bw, mbps(0.5));
    }

    #[test]
    fn cumulative_scaling_compounds() {
        let mut topo = constrained_access(3);
        let batch = LinkChangeBatch {
            changes: vec![(NodeId(0), NodeId(1), BandwidthChange::Scale(0.5))],
        };
        batch.apply(&mut topo);
        batch.apply(&mut topo);
        assert_eq!(topo.path(NodeId(0), NodeId(1)).bw, mbps(10.0) * 0.25);
    }

    #[test]
    fn square_wave_alternates_on_and_off() {
        let via = (NodeId(0), NodeId(1));
        let wave = cross_traffic_square_wave(
            via,
            1000.0,
            SimDuration::from_secs(20),
            SimDuration::from_secs(100),
        );
        assert_eq!(wave.len(), 5, "boundaries at 20, 40, 60, 80, 100 s");
        for (i, (t, ct)) in wave.iter().enumerate() {
            assert_eq!(t.as_secs_f64(), 20.0 * (i + 1) as f64);
            assert_eq!(ct.via, via);
            let expected = if i % 2 == 0 { 1000.0 } else { 0.0 };
            assert_eq!(ct.rate, expected, "boundary {i} toggles the wave");
        }
        // A horizon shorter than one period produces no boundary at all.
        assert!(cross_traffic_square_wave(
            via,
            1000.0,
            SimDuration::from_secs(20),
            SimDuration::from_secs(19)
        )
        .is_empty());
    }

    #[test]
    fn crash_wave_picks_receivers_within_the_window() {
        let rng = RngFactory::new(12);
        let sched = crash_wave_schedule(
            20,
            0.25,
            SimTime::from_secs_f64(10.0),
            SimTime::from_secs_f64(30.0),
            &rng,
        );
        assert_eq!(sched.len(), 5, "25% of 19 receivers rounds to 5");
        let mut seen = std::collections::BTreeSet::new();
        for (t, ev) in &sched {
            assert!(matches!(ev, NodeEvent::Crash(_)));
            let node = ev.node();
            assert_ne!(node.0, 0, "the source never crashes");
            assert!(node.0 < 20);
            assert!(seen.insert(node.0), "each victim crashes once");
            assert!(*t >= SimTime::from_secs_f64(10.0));
            assert!(*t <= SimTime::from_secs_f64(30.0));
        }
        // Deterministic for a seed.
        let again = crash_wave_schedule(
            20,
            0.25,
            SimTime::from_secs_f64(10.0),
            SimTime::from_secs_f64(30.0),
            &RngFactory::new(12),
        );
        assert_eq!(sched, again);
        // Zero fraction crashes nobody.
        assert!(crash_wave_schedule(20, 0.0, SimTime::ZERO, SimTime::ZERO, &rng).is_empty());
    }

    #[test]
    fn crash_wave_edge_fractions_and_node_sets() {
        let rng = RngFactory::new(3);
        let start = SimTime::from_secs_f64(5.0);
        let end = SimTime::from_secs_f64(9.0);

        // 0%: nobody crashes, whatever the window.
        assert!(crash_wave_schedule(20, 0.0, start, end, &rng).is_empty());

        // 100%: every receiver crashes exactly once; the source survives;
        // the wave spans the whole window (first victim at start, last at
        // end).
        let all = crash_wave_schedule(20, 1.0, start, end, &rng);
        assert_eq!(all.len(), 19);
        let mut victims: Vec<u32> = all.iter().map(|(_, ev)| ev.node().0).collect();
        victims.sort_unstable();
        assert_eq!(victims, (1..20).collect::<Vec<u32>>());
        assert_eq!(all.first().unwrap().0, start);
        assert_eq!(all.last().unwrap().0, end);
        for w in all.windows(2) {
            assert!(w[0].0 <= w[1].0, "activation order");
        }

        // Empty / source-only node sets: nothing to crash, even at 100%.
        assert!(crash_wave_schedule(0, 1.0, start, end, &rng).is_empty());
        assert!(crash_wave_schedule(1, 1.0, start, end, &rng).is_empty());

        // A single victim crashes at the window start, not somewhere
        // undefined inside it.
        let one = crash_wave_schedule(9, 0.125, start, end, &rng);
        assert_eq!(one.len(), 1, "12.5% of 8 receivers is one victim");
        assert_eq!(one[0].0, start);
    }

    #[test]
    fn crash_wave_at_t_zero_is_valid() {
        // A zero-width window at t = 0: every victim crashes at the origin,
        // which the runner treats as "crashed before doing anything".
        let rng = RngFactory::new(8);
        let wave = crash_wave_schedule(10, 0.5, SimTime::ZERO, SimTime::ZERO, &rng);
        assert_eq!(wave.len(), 5, "50% of 9 receivers rounds to 5");
        assert!(wave.iter().all(|(t, _)| *t == SimTime::ZERO));
        assert!(wave
            .iter()
            .all(|(_, ev)| matches!(ev, NodeEvent::Crash(n) if n.0 != 0)));
    }

    #[test]
    fn flash_crowd_edge_groups() {
        let start = SimTime::from_secs_f64(2.0);
        let end = SimTime::from_secs_f64(6.0);

        // Everyone present from the start: nobody joins late.
        assert!(flash_crowd_schedule(10, 10, start, end).is_empty());
        // `initial > n` (a core group larger than the experiment): joiner
        // range is empty rather than inverted.
        assert!(flash_crowd_schedule(5, 8, start, end).is_empty());

        // A single late joiner arrives at the window start.
        let one = flash_crowd_schedule(10, 9, start, end);
        assert_eq!(one, vec![(start, NodeEvent::Join(NodeId(9)))]);

        // Zero-width window at t = 0: everyone "joins" at the origin.
        let at_zero = flash_crowd_schedule(6, 2, SimTime::ZERO, SimTime::ZERO);
        assert_eq!(at_zero.len(), 4);
        assert!(at_zero.iter().all(|(t, _)| *t == SimTime::ZERO));
    }

    #[test]
    #[should_panic(expected = "source must be present")]
    fn flash_crowd_requires_a_source() {
        flash_crowd_schedule(5, 0, SimTime::ZERO, SimTime::ZERO);
    }

    #[test]
    fn flash_crowd_joins_everyone_after_the_core_group() {
        let sched = flash_crowd_schedule(
            10,
            4,
            SimTime::from_secs_f64(5.0),
            SimTime::from_secs_f64(15.0),
        );
        assert_eq!(sched.len(), 6, "nodes 4..10 join");
        for (i, (t, ev)) in sched.iter().enumerate() {
            assert_eq!(*ev, NodeEvent::Join(NodeId(4 + i as u32)));
            assert!(*t >= SimTime::from_secs_f64(5.0) && *t <= SimTime::from_secs_f64(15.0));
        }
        assert_eq!(sched[0].0, SimTime::from_secs_f64(5.0));
        assert_eq!(sched[5].0, SimTime::from_secs_f64(15.0));
        // Times are non-decreasing (activation order).
        for w in sched.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn cascading_schedule_degrades_one_link_per_period() {
        let senders: Vec<NodeId> = (0..6).map(NodeId).collect();
        let sched = cascading_degrade_schedule(&senders, NodeId(7), SimDuration::from_secs(25));
        assert_eq!(sched.len(), 6);
        assert_eq!(sched[0].0.as_secs_f64(), 25.0);
        assert_eq!(sched[5].0.as_secs_f64(), 150.0);
        for (i, (_, batch)) in sched.iter().enumerate() {
            assert_eq!(batch.len(), 1);
            assert_eq!(batch.changes[0].0, NodeId(i as u32));
            assert_eq!(batch.changes[0].1, NodeId(7));
        }
    }
}
