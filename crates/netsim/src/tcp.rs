//! Steady-state TCP throughput model.
//!
//! The emulator is a fluid model: it does not simulate packets, but it must
//! reproduce the two TCP behaviours the paper's results hinge on:
//!
//! 1. **Loss caps per-connection throughput.** On a lossy path a single TCP
//!    connection cannot fill the link; this is why Bullet′ nodes benefit from
//!    *more* senders on lossy topologies (Fig 7) and why request strategies
//!    that operate on stale availability information degrade (Fig 6).
//!    We use the Mathis square-root formula
//!    `rate = MSS/RTT * C / sqrt(p)` with `C = sqrt(3/2)`.
//! 2. **Slow start.** A new or long-idle connection takes several RTTs to
//!    reach its steady rate, which is why having too few outstanding blocks
//!    cannot fill a high bandwidth-delay-product pipe (Fig 10). We model the
//!    congestion window as `init_cwnd + bytes_acked` (doubling per RTT)
//!    capped by the path's steady-state rate.

use desim::SimDuration;

use crate::units::BytesPerSec;

/// TCP maximum segment size used by the throughput model (bytes).
pub const MSS: f64 = 1460.0;

/// Initial congestion window (bytes): the classic 3 segments.
pub const INIT_CWND: f64 = 3.0 * MSS;

/// Mathis constant `sqrt(3/2)`.
const MATHIS_C: f64 = 1.224_744_871_391_589;

/// Parameters of a TCP path used to derive its instantaneous service rate.
#[derive(Debug, Clone, Copy)]
pub struct TcpPath {
    /// Bottleneck (core-link) capacity in bytes/second.
    pub bottleneck: BytesPerSec,
    /// Round-trip time.
    pub rtt: SimDuration,
    /// Packet loss probability on the path.
    pub loss: f64,
}

impl TcpPath {
    /// Loss-limited steady-state throughput (Mathis et al.), in bytes/second.
    /// Returns `f64::INFINITY` for a loss-free path.
    pub fn mathis_cap(&self) -> BytesPerSec {
        if self.loss <= 0.0 {
            return f64::INFINITY;
        }
        let rtt = self.rtt.as_secs_f64().max(1e-6);
        MATHIS_C * MSS / (rtt * self.loss.sqrt())
    }

    /// Window-limited throughput after `bytes_acked` bytes have been
    /// acknowledged on the connection, in bytes/second.
    ///
    /// The congestion window starts at [`INIT_CWND`] and grows by one MSS per
    /// ACK (slow start), which integrates to `INIT_CWND + bytes_acked`.
    pub fn slow_start_cap(&self, bytes_acked: u64) -> BytesPerSec {
        let rtt = self.rtt.as_secs_f64().max(1e-6);
        (INIT_CWND + bytes_acked as f64) / rtt
    }

    /// The connection's current ceiling: the minimum of the bottleneck
    /// capacity, the loss limit, and the slow-start limit.
    pub fn cap(&self, bytes_acked: u64) -> BytesPerSec {
        self.bottleneck
            .min(self.mathis_cap())
            .min(self.slow_start_cap(bytes_acked))
            .max(1.0) // Never fully stall: TCP retransmits eventually.
    }

    /// Expected one-shot delivery latency multiplier for small control
    /// messages: with loss `p` a message has probability `p` of needing at
    /// least one retransmission timeout. Used by the control-plane model.
    pub fn control_delay_penalty(&self) -> f64 {
        1.0 + 2.0 * self.loss
    }
}

/// Time for TCP to transfer `bytes` over a path starting from an idle
/// connection, ignoring competing traffic. Used for analytic lower bounds
/// (the "MACEDON TCP feasible" curve of Fig 4).
pub fn idle_transfer_time(path: &TcpPath, bytes: u64) -> SimDuration {
    let cap = path.bottleneck.min(path.mathis_cap()).max(1.0);
    let rtt = path.rtt.as_secs_f64().max(1e-6);
    // Bytes transferred during slow start until the window reaches cap*rtt.
    let target_window = cap * rtt;
    let ss_bytes = (target_window - INIT_CWND).max(0.0);
    let bytes_f = bytes as f64;
    if bytes_f <= ss_bytes {
        // Window grows exponentially: bytes(t) ~ INIT_CWND * (2^(t/rtt) - 1).
        let ratio = bytes_f / INIT_CWND + 1.0;
        return SimDuration::from_secs_f64(rtt * ratio.log2());
    }
    let ss_time = rtt * ((ss_bytes / INIT_CWND + 1.0).log2());
    let remaining = bytes_f - ss_bytes;
    SimDuration::from_secs_f64(ss_time + remaining / cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::mbps;

    fn path(bw_mbps: f64, rtt_ms: u64, loss: f64) -> TcpPath {
        TcpPath {
            bottleneck: mbps(bw_mbps),
            rtt: SimDuration::from_millis(rtt_ms),
            loss,
        }
    }

    #[test]
    fn lossless_path_is_link_limited() {
        let p = path(2.0, 100, 0.0);
        assert_eq!(p.mathis_cap(), f64::INFINITY);
        // With a large window the cap equals the bottleneck.
        assert_eq!(p.cap(10_000_000), mbps(2.0));
    }

    #[test]
    fn loss_reduces_throughput() {
        let clean = path(10.0, 100, 0.0);
        let lossy = path(10.0, 100, 0.01);
        assert!(lossy.cap(u64::MAX / 2) < clean.cap(u64::MAX / 2));
        // 1% loss at 100ms RTT: ~1.22*1460/(0.1*0.1) = ~178 KB/s.
        let expected = 1.224_744_871_391_589 * 1460.0 / (0.1 * 0.1);
        assert!((lossy.mathis_cap() - expected).abs() < 1.0);
    }

    #[test]
    fn more_loss_means_less_throughput_monotonically() {
        let mut last = f64::INFINITY;
        for loss in [0.001, 0.005, 0.01, 0.02, 0.03] {
            let cap = path(10.0, 50, loss).mathis_cap();
            assert!(cap < last);
            last = cap;
        }
    }

    #[test]
    fn slow_start_limits_young_connections() {
        let p = path(10.0, 100, 0.0);
        let young = p.cap(0);
        let mature = p.cap(2_000_000);
        assert!(young < mature);
        // Young connection: 3 segments per RTT.
        assert!((young - INIT_CWND / 0.1).abs() < 1.0);
    }

    #[test]
    fn cap_never_zero() {
        let p = path(0.000_001, 1000, 0.9);
        assert!(p.cap(0) >= 1.0);
    }

    #[test]
    fn idle_transfer_time_scales_with_size() {
        let p = path(2.0, 50, 0.0);
        let small = idle_transfer_time(&p, 16 * 1024);
        let large = idle_transfer_time(&p, 10 * 1024 * 1024);
        assert!(small < large);
        // A 10MB transfer over 2 Mbps takes at least 40 seconds.
        assert!(large.as_secs_f64() > 40.0);
        // A 16KB transfer finishes within a handful of RTTs.
        assert!(small.as_secs_f64() < 1.0);
    }

    #[test]
    fn control_penalty_grows_with_loss() {
        assert!(
            path(1.0, 10, 0.03).control_delay_penalty()
                > path(1.0, 10, 0.0).control_delay_penalty()
        );
    }
}
