use super::*;
use crate::topology::{constrained_access, shared_core_mesh, NodeSpec, PathSpec};
use crate::units::mbps;
use desim::RngFactory;

fn two_node_topo(core_mbps: f64, access_mbps: f64) -> Topology {
    let node = NodeSpec {
        up: mbps(access_mbps),
        down: mbps(access_mbps),
        access_delay: SimDuration::from_millis(1),
    };
    let path = PathSpec {
        bw: mbps(core_mbps),
        delay: SimDuration::from_millis(10),
        loss: 0.0,
    };
    Topology::new(vec![node; 2], vec![vec![path; 2]; 2])
}

/// Extracts the completion time of the `Schedule` update for `from → to`.
fn sched_at(updates: &[ConnUpdate], from: NodeId, to: NodeId) -> SimTime {
    updates
        .iter()
        .find_map(|u| match u {
            ConnUpdate::Schedule {
                from: f, to: t, at, ..
            } if (*f, *t) == (from, to) => Some(*at),
            _ => None,
        })
        .expect("a Schedule update for the pair")
}

#[test]
fn single_block_completes_at_expected_rate() {
    let mut net = Network::new(two_node_topo(2.0, 6.0));
    let now = SimTime::ZERO;
    let r = net.queue_block(now, NodeId(0), NodeId(1), BlockId(0), 250_000);
    assert_eq!(r.len(), 1);
    // Slow start dominates a fresh connection, so completion takes longer
    // than the raw 1-second serialisation at 2 Mbps (250 KB / 250 KB/s).
    let at = sched_at(&r, NodeId(0), NodeId(1));
    let finish = at.as_secs_f64();
    assert!(
        finish > 1.0,
        "finish {finish} should exceed the raw serialisation time"
    );
    assert!(finish < 10.0, "finish {finish} unreasonably late");
    let (done, _) = net
        .on_block_done(at, NodeId(0), NodeId(1))
        .expect("block in flight");
    assert_eq!(done.block, BlockId(0));
    assert_eq!(done.bytes, 250_000);
    assert_eq!(done.in_front, 0);
    assert!(
        done.wasted <= 0.0,
        "first block on an idle connection has idle-gap wasted time"
    );
}

#[test]
fn completion_without_inflight_is_rejected() {
    let mut net = Network::new(two_node_topo(2.0, 6.0));
    // No connection at all.
    assert!(net
        .on_block_done(SimTime::ZERO, NodeId(0), NodeId(1))
        .is_none());
    let r = net.queue_block(SimTime::ZERO, NodeId(0), NodeId(1), BlockId(0), 16_384);
    // Queueing a second block on an active connection produces no update:
    // the live completion event is untouched.
    let r2 = net.queue_block(SimTime::ZERO, NodeId(0), NodeId(1), BlockId(1), 16_384);
    assert!(r2.is_empty());
    // Draining both blocks empties the connection; a further completion
    // has nothing in flight and is rejected.
    let at = sched_at(&r, NodeId(0), NodeId(1));
    let (_, u1) = net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
    let at1 = sched_at(&u1, NodeId(0), NodeId(1));
    let (_, _) = net.on_block_done(at1, NodeId(0), NodeId(1)).unwrap();
    assert!(net.on_block_done(at1, NodeId(0), NodeId(1)).is_none());
}

#[test]
fn queued_blocks_report_in_front_and_wait() {
    let mut net = Network::new(two_node_topo(2.0, 6.0));
    let t0 = SimTime::ZERO;
    let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 16_384);
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(1), 16_384);
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(2), 16_384);
    assert_eq!(net.pending_blocks(NodeId(0), NodeId(1)), 3);

    // Complete the first block.
    let at0 = sched_at(&r, NodeId(0), NodeId(1));
    let (b0, r1) = net.on_block_done(at0, NodeId(0), NodeId(1)).unwrap();
    assert_eq!(b0.in_front, 0);
    // The second block starts immediately and reports one block in front.
    let at1 = sched_at(&r1, NodeId(0), NodeId(1));
    let (b1, r2) = net.on_block_done(at1, NodeId(0), NodeId(1)).unwrap();
    assert_eq!(b1.block, BlockId(1));
    assert_eq!(b1.in_front, 1);
    assert!(
        b1.wasted > 0.0,
        "queued block should report positive waiting time"
    );
    let at2 = sched_at(&r2, NodeId(0), NodeId(1));
    let (b2, _) = net.on_block_done(at2, NodeId(0), NodeId(1)).unwrap();
    assert_eq!(b2.in_front, 2);
}

#[test]
fn concurrent_connections_share_access_link() {
    // Constrained access topology: 800 Kbps uplink, 10 Mbps core.
    let mut net = Network::new(constrained_access(3));
    let t0 = SimTime::ZERO;
    let r1 = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 100_000);
    let single_rate = net.current_rate(NodeId(0), NodeId(1)).unwrap();
    let _r2 = net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 100_000);
    let shared_rate = net.current_rate(NodeId(0), NodeId(1)).unwrap();
    assert!(
        shared_rate < single_rate,
        "adding a second outgoing flow must reduce the first one's share"
    );
    assert!(sched_at(&r1, NodeId(0), NodeId(1)) > t0);
}

#[test]
fn flows_contend_on_a_shared_core_link() {
    // Two disjoint sender/receiver pairs whose only common constraint is
    // the shared 2 Mbps core: under the old per-path model they would
    // not contend at all.
    let rng = RngFactory::new(1);
    let mut net = Network::new(shared_core_mesh(4, mbps(2.0), 0.0, &rng));
    let t0 = SimTime::ZERO;
    let big = 5_000_000;
    // Mature flow 0 → 1 past slow start by completing one large block.
    let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), big);
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(1), big);
    let at = sched_at(&r, NodeId(0), NodeId(1));
    net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
    let alone = net.current_rate(NodeId(0), NodeId(1)).unwrap();
    assert!(
        (alone - mbps(2.0)).abs() < 1.0,
        "a lone mature flow fills the shared core ({alone})"
    );
    let updates = net.queue_block(at, NodeId(2), NodeId(3), BlockId(2), big);
    // The established flow is re-priced by the newcomer's arrival.
    let _ = sched_at(&updates, NodeId(2), NodeId(3));
    let shared = net.current_rate(NodeId(0), NodeId(1)).unwrap();
    assert!(
        shared < alone,
        "a disjoint pair crossing the same core link must steal share \
         (alone {alone}, shared {shared})"
    );
}

#[test]
fn capped_flows_release_share_to_their_competitors() {
    // Max-min, not equal split: a flow held below the fair share by its
    // own ceiling (here: slow start on a fresh connection over a long
    // path) leaves the rest of the link to its competitor.
    let node = NodeSpec {
        up: 100_000.0,
        down: 100_000.0,
        access_delay: SimDuration::from_millis(2),
    };
    let path = PathSpec {
        bw: mbps(10.0),
        delay: SimDuration::from_millis(100),
        loss: 0.0,
    };
    let mut net = Network::new(Topology::new(vec![node; 3], vec![vec![path; 3]; 3]));
    let t0 = SimTime::ZERO;
    // Flow A: matured by completing a 100 KB block.
    let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 100_000);
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(1), 400_000);
    let at = sched_at(&r, NodeId(0), NodeId(1));
    net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
    // Flow B: brand new at the same sender, window-limited over the
    // ~208 ms RTT (slow-start cap ≈ 21 KB/s, well below the 50 KB/s
    // fair share of the 100 KB/s uplink).
    net.queue_block(at, NodeId(0), NodeId(2), BlockId(2), 400_000);
    let a = net.current_rate(NodeId(0), NodeId(1)).unwrap();
    let b = net.current_rate(NodeId(0), NodeId(2)).unwrap();
    let uplink = 100_000.0;
    assert!(
        b < uplink / 2.0,
        "the slow-starting flow must sit below the fair share (b {b})"
    );
    assert!(
        a > uplink / 2.0 + 1.0,
        "the uncapped flow must claim the capped flow's leftover ({a})"
    );
    assert!(
        a + b <= uplink * (1.0 + 1e-6),
        "conservation on the uplink ({a} + {b})"
    );
}

#[test]
fn cross_traffic_takes_core_capacity_and_returns_it() {
    let rng = RngFactory::new(2);
    let mut net = Network::new(shared_core_mesh(3, mbps(2.0), 0.0, &rng));
    let t0 = SimTime::ZERO;
    // Mature the flow past slow start by completing one large block.
    let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 5_000_000);
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(1), 50_000_000);
    let t1 = sched_at(&r, NodeId(0), NodeId(1));
    net.on_block_done(t1, NodeId(0), NodeId(1)).unwrap();
    let clean = net.current_rate(NodeId(0), NodeId(1)).unwrap();

    // A CBR stream occupying half the core.
    let updates = net.set_cross_traffic(t1, (NodeId(0), NodeId(1)), mbps(1.0));
    assert_eq!(updates.len(), 1, "the flow is re-priced: {updates:?}");
    let squeezed = net.current_rate(NodeId(0), NodeId(1)).unwrap();
    assert!(
        squeezed < clean * 0.6,
        "cross traffic must take its share (clean {clean}, squeezed {squeezed})"
    );
    let link = net.topology().core_link(NodeId(0), NodeId(1));
    assert_eq!(net.cross_traffic(link), mbps(1.0));

    // Switching it off restores the rate.
    net.set_cross_traffic(t1, (NodeId(0), NodeId(1)), 0.0);
    let restored = net.current_rate(NodeId(0), NodeId(1)).unwrap();
    assert!((restored - clean).abs() < clean * 1e-6);
}

#[test]
fn share_core_mid_run_with_active_flows_is_safe() {
    // Regression: remapping pairs onto a shared link while a flow is in
    // flight must not desynchronise the per-link registration (debug
    // builds used to hit the mark_idle debug_assert; release builds left
    // a stale entry distorting every later solve). The in-flight flow
    // keeps its registered (old, dedicated) link until it goes idle;
    // new activations ride the shared link.
    let mut net = Network::new(constrained_access(4));
    let t0 = SimTime::ZERO;
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 200_000);
    // Remap both pairs onto one shared 2 Mbps link mid-flight.
    net.topology_mut().share_core(
        &[(NodeId(0), NodeId(1)), (NodeId(2), NodeId(3))],
        mbps(2.0),
        0.0,
    );
    // Completing the in-flight block (connection goes idle) must not
    // panic or corrupt state.
    let t1 = SimTime::from_secs_f64(10.0);
    net.on_block_done(t1, NodeId(0), NodeId(1))
        .expect("in flight");
    // Fresh activations are registered consistently on the new link and
    // a from-scratch solve agrees with the incremental state.
    net.queue_block(t1, NodeId(0), NodeId(1), BlockId(1), 200_000);
    net.queue_block(t1, NodeId(2), NodeId(3), BlockId(2), 200_000);
    let before: Vec<f64> = [(0u32, 1u32), (2, 3)]
        .iter()
        .map(|&(a, b)| net.current_rate(NodeId(a), NodeId(b)).unwrap())
        .collect();
    net.reprice_all(t1);
    let after: Vec<f64> = [(0u32, 1u32), (2, 3)]
        .iter()
        .map(|&(a, b)| net.current_rate(NodeId(a), NodeId(b)).unwrap())
        .collect();
    for (b, a) in before.iter().zip(after.iter()) {
        assert!((a - b).abs() <= b * 1e-6, "incremental drift: {b} vs {a}");
    }
}

#[test]
fn repricing_is_scoped_to_the_connected_component() {
    // Flows 0→1 and 2→3 share no link (dedicated cores, distinct access
    // links): starting/stopping one must not emit updates for the other.
    let mut net = Network::new(constrained_access(4));
    let t0 = SimTime::ZERO;
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 1_000_000);
    let updates = net.queue_block(t0, NodeId(2), NodeId(3), BlockId(1), 1_000_000);
    assert_eq!(
        updates.len(),
        1,
        "only the new flow's component is touched: {updates:?}"
    );
    let _ = sched_at(&updates, NodeId(2), NodeId(3));
    let updates = net.close_connection(SimTime::from_secs_f64(1.0), NodeId(2), NodeId(3));
    assert!(
        !updates
            .iter()
            .any(|u| matches!(u, ConnUpdate::Schedule { from, .. } if *from == NodeId(0))),
        "the disconnected flow must not be re-priced: {updates:?}"
    );
}

#[test]
fn unsaturable_links_do_not_couple_components() {
    // Dirty-link pruning: two fresh (slow-start-capped) flows share the
    // sender's 10 Mbps uplink, but their combined ceilings cannot come
    // close to filling it — the uplink can never saturate, so a change on
    // one flow's core must not drag the other flow into the solve.
    let node = NodeSpec {
        up: mbps(10.0),
        down: mbps(10.0),
        access_delay: SimDuration::from_millis(1),
    };
    let path = PathSpec {
        bw: mbps(10.0),
        delay: SimDuration::from_millis(10),
        loss: 0.0,
    };
    let mut paths = vec![vec![path; 3]; 3];
    // A narrow dedicated core for 0 → 1, so cross traffic can squeeze it.
    paths[0][1].bw = 80_000.0;
    let mut net = Network::new(Topology::new(vec![node; 3], paths));
    let t0 = SimTime::ZERO;
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 4_000_000);
    net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 4_000_000);
    let witness = net.current_rate(NodeId(0), NodeId(2)).unwrap();

    // Cross traffic eats most of the narrow core: flow 0→1 must be
    // re-priced, and *only* it — the shared uplink is unsaturable (the
    // ceiling sum of both fresh flows is far below 10 Mbps), so the
    // component stops there instead of crossing to flow 0→2.
    let updates = net.set_cross_traffic(t0, (NodeId(0), NodeId(1)), 50_000.0);
    assert_eq!(
        updates.len(),
        1,
        "only the squeezed flow is re-priced: {updates:?}"
    );
    let _ = sched_at(&updates, NodeId(0), NodeId(1));
    assert!(
        net.current_rate(NodeId(0), NodeId(1)).unwrap() < 40_000.0,
        "the squeezed flow dropped to the residual core capacity"
    );
    assert_eq!(
        net.current_rate(NodeId(0), NodeId(2)).unwrap().to_bits(),
        witness.to_bits(),
        "the flow behind the pruned uplink keeps its exact rate"
    );

    // The pruned incremental state still matches a from-scratch solve
    // (reprice_all seeds every flow-bearing link, so nothing is pruned).
    assert!(
        net.reprice_all(t0).is_empty(),
        "pruning must not leave a stale allocation behind"
    );
}

#[test]
fn closing_a_connection_cancels_and_restores_shares() {
    let mut net = Network::new(constrained_access(3));
    let t0 = SimTime::ZERO;
    net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 1_000_000);
    net.queue_block(t0, NodeId(0), NodeId(2), BlockId(1), 1_000_000);
    let shared = net.current_rate(NodeId(0), NodeId(1)).unwrap();
    let later = SimTime::from_secs_f64(1.0);
    let rs = net.close_connection(later, NodeId(0), NodeId(2));
    assert!(
        rs.iter().any(|u| matches!(
            u,
            ConnUpdate::Cancel {
                from: NodeId(0),
                to: NodeId(2),
                ..
            }
        )),
        "closing an active connection cancels its completion event: {rs:?}"
    );
    // ... and re-prices the survivor.
    let _ = sched_at(&rs, NodeId(0), NodeId(1));
    let alone = net.current_rate(NodeId(0), NodeId(1)).unwrap();
    assert!(alone > shared);
    assert_eq!(net.pending_blocks(NodeId(0), NodeId(2)), 0);
    // Closing an idle connection produces nothing.
    assert!(net.close_connection(later, NodeId(0), NodeId(2)).is_empty());
}

#[test]
fn close_all_for_tears_down_both_directions() {
    let mut net = Network::new(constrained_access(4));
    let t0 = SimTime::ZERO;
    net.queue_block(t0, NodeId(1), NodeId(0), BlockId(0), 500_000);
    net.queue_block(t0, NodeId(1), NodeId(2), BlockId(1), 500_000);
    net.queue_block(t0, NodeId(3), NodeId(1), BlockId(2), 500_000);
    net.queue_block(t0, NodeId(0), NodeId(2), BlockId(3), 500_000);
    let updates = net.close_all_for(SimTime::from_secs_f64(0.5), NodeId(1));
    let cancels: Vec<_> = updates
        .iter()
        .filter(|u| matches!(u, ConnUpdate::Cancel { .. }))
        .collect();
    assert_eq!(
        cancels.len(),
        3,
        "all three connections touching node 1: {updates:?}"
    );
    assert_eq!(net.pending_blocks(NodeId(1), NodeId(0)), 0);
    assert_eq!(net.pending_blocks(NodeId(1), NodeId(2)), 0);
    assert_eq!(net.pending_blocks(NodeId(3), NodeId(1)), 0);
    // Unrelated connections keep flowing.
    assert_eq!(net.pending_blocks(NodeId(0), NodeId(2)), 1);
}

#[test]
fn reprice_paths_after_bandwidth_change() {
    let mut net = Network::new(two_node_topo(2.0, 6.0));
    let t0 = SimTime::ZERO;
    let r = net.queue_block(t0, NodeId(0), NodeId(1), BlockId(0), 2_000_000);
    let original_finish = sched_at(&r, NodeId(0), NodeId(1));
    // Halve the core bandwidth at t = 1s.
    let t1 = SimTime::from_secs_f64(1.0);
    net.topology_mut()
        .set_core_bw(NodeId(0), NodeId(1), mbps(1.0));
    let rs = net.reprice_paths(t1, &[(NodeId(0), NodeId(1))]);
    assert_eq!(rs.len(), 1);
    assert!(
        sched_at(&rs, NodeId(0), NodeId(1)) > original_finish,
        "less bandwidth must push completion later"
    );
}

#[test]
fn traffic_counters_accumulate() {
    let mut net = Network::new(two_node_topo(2.0, 6.0));
    let mut rng = RngFactory::new(1).stream("ctl");
    let d = net.control_delay(&mut rng, NodeId(0), NodeId(1), 100);
    assert!(d > SimDuration::ZERO);
    assert_eq!(net.traffic(NodeId(0)).control_bytes_out, 100);
    assert_eq!(net.traffic(NodeId(1)).control_bytes_in, 100);

    let r = net.queue_block(SimTime::ZERO, NodeId(0), NodeId(1), BlockId(0), 500);
    let at = sched_at(&r, NodeId(0), NodeId(1));
    net.on_block_done(at, NodeId(0), NodeId(1)).unwrap();
    net.on_block_delivered(NodeId(1), 500);
    assert_eq!(net.traffic(NodeId(0)).data_bytes_out, 500);
    assert_eq!(net.traffic(NodeId(1)).data_bytes_in, 500);
    assert_eq!(net.traffic(NodeId(1)).blocks_in, 1);
}

#[test]
#[should_panic(expected = "cannot stream blocks to itself")]
fn self_connection_rejected() {
    let mut net = Network::new(two_node_topo(2.0, 6.0));
    net.queue_block(SimTime::ZERO, NodeId(0), NodeId(0), BlockId(0), 10);
}

/// Builds the per-link member lists for a direct solver call.
fn members_of(flow_links: &[[u32; 3]], num_links: usize) -> Vec<Vec<u32>> {
    (0..num_links)
        .map(|li| {
            (0..flow_links.len())
                .filter(|&i| flow_links[i].contains(&(li as u32)))
                .map(|i| i as u32)
                .collect()
        })
        .collect()
}

#[test]
fn progressive_filling_matches_hand_solved_example() {
    // The worked 3-flow example of docs/NETWORK_MODEL.md: links L1 (cap
    // 10, flows A+B), L2 (cap 6, flows B+C); C capped at 2.
    // Level 2: C freezes at its cap. Level 4: L2 saturates (2 + 4 = 6),
    // B freezes at 4. Level 6: L1 saturates (4 + 6 = 10), A freezes at 6.
    let caps = [f64::INFINITY, f64::INFINITY, 2.0];
    // Give every flow three link slots (the solver's path shape) by
    // padding with per-flow private links of ample capacity.
    let flow_links = [[0u32, 2, 3], [0, 1, 4], [1, 2, 5]];
    let mut links = vec![
        LinkState {
            capacity: 10.0,
            unfrozen: 2,
            frozen_usage: 0.0,
        },
        LinkState {
            capacity: 6.0,
            unfrozen: 2,
            frozen_usage: 0.0,
        },
        LinkState {
            capacity: 100.0,
            unfrozen: 2,
            frozen_usage: 0.0,
        },
        LinkState {
            capacity: 100.0,
            unfrozen: 1,
            frozen_usage: 0.0,
        },
        LinkState {
            capacity: 100.0,
            unfrozen: 1,
            frozen_usage: 0.0,
        },
        LinkState {
            capacity: 100.0,
            unfrozen: 1,
            frozen_usage: 0.0,
        },
    ];
    let link_members = members_of(&flow_links, links.len());
    let mut heaps = SolverHeaps::default();
    let mut rates = Vec::new();
    let mut frozen = Vec::new();
    max_min_rates(
        &caps,
        &flow_links,
        &mut links,
        &link_members,
        &mut heaps,
        &mut rates,
        &mut frozen,
    );
    assert!((rates[0] - 6.0).abs() < 1e-9, "A: {rates:?}");
    assert!((rates[1] - 4.0).abs() < 1e-9, "B: {rates:?}");
    assert!((rates[2] - 2.0).abs() < 1e-9, "C: {rates:?}");
}

#[test]
fn fully_occupied_link_freezes_its_flows_at_level_zero() {
    // Regression for the saturation tolerance: a link whose usable
    // capacity is a hair above zero (cross traffic ate everything) has a
    // saturation level of ~5e-16 — *above* zero. A purely relative
    // tolerance (`level * (1 + 1e-12)`) degenerates to exact equality at
    // level 0 and misses it, burning an extra round to hand out
    // denormal-sized rates; the combined absolute+relative tolerance
    // freezes everything at exactly 0.0 in the first round.
    let caps = [0.0, 5.0, 5.0];
    let flow_links = [
        [0u32, NO_LINK, NO_LINK],
        [1, NO_LINK, NO_LINK],
        [1, NO_LINK, NO_LINK],
    ];
    let mut links = vec![
        LinkState {
            capacity: 100.0,
            unfrozen: 1,
            frozen_usage: 0.0,
        },
        LinkState {
            capacity: 1e-15,
            unfrozen: 2,
            frozen_usage: 0.0,
        },
    ];
    let link_members = vec![vec![0u32], vec![1, 2]];
    let mut heaps = SolverHeaps::default();
    let mut rates = Vec::new();
    let mut frozen = Vec::new();
    max_min_rates(
        &caps,
        &flow_links,
        &mut links,
        &link_members,
        &mut heaps,
        &mut rates,
        &mut frozen,
    );
    assert_eq!(rates[0], 0.0, "cap-frozen at its zero ceiling: {rates:?}");
    assert_eq!(rates[1], 0.0, "fully occupied link: {rates:?}");
    assert_eq!(rates[2], 0.0, "fully occupied link: {rates:?}");
}
